//! Crash-recovery integration tests for the durable storage engine:
//! kill/reopen durability, checkpoint compaction, and the torn-write
//! regression (a WAL truncated mid-record must recover exactly the
//! committed prefix).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use maybms_core::exec::WorkerPool;
use maybms_sql::{QueryResult, Session};
use maybms_storage::{delta_path_for, wal_path_for, WAL_HEADER_LEN};

fn db_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir()
        .join(format!("maybms-persist-{}-{name}.maybms", std::process::id()));
    rm_db(&p);
    p
}

fn rm_db(p: &Path) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(wal_path_for(p));
    let _ = std::fs::remove_file(delta_path_for(p));
}

/// Canonical string form of a query result, for exact comparisons.
fn rows_of(s: &mut Session, sql: &str) -> Vec<Vec<String>> {
    let t = match s.execute(sql).unwrap() {
        QueryResult::Table(t) => t,
        other => panic!("expected a table from {sql}, got {other:?}"),
    };
    t.rows()
        .iter()
        .map(|r| r.values().iter().map(|v| format!("{v:?}")).collect())
        .collect()
}

const SETUP: &str = "CREATE TABLE person (ssn INT, name TEXT); \
     INSERT INTO person VALUES ({1: 0.5, 2: 0.5}, 'ann'), (2, 'bob'), ({3, 4}, 'cal'); \
     CREATE TABLE cost (tname TEXT, usd INT); \
     INSERT INTO cost VALUES ('x', {10: 0.25, 20: 0.75}), ('y', 40); \
     REPAIR KEY person(ssn); \
     ALTER TABLE cost RENAME TO costs; \
     REPAIR CHECK costs: usd > 15; \
     UPDATE person SET name = 'anne' WHERE ssn = 1; \
     BEGIN; \
     DELETE FROM costs WHERE usd > 30; \
     INSERT INTO costs VALUES ('z', {17: 0.5, 18: 0.5}); \
     UPDATE costs SET tname = 'zz' WHERE usd = 17; \
     COMMIT";

const PROBES: &[&str] = &[
    "SELECT POSSIBLE ssn, name, PROB() FROM person ORDER BY name, ssn",
    "SELECT CERTAIN ssn, name FROM person ORDER BY ssn",
    "SELECT POSSIBLE tname, usd, PROB() FROM costs ORDER BY tname, usd",
    "SELECT EXPECTED SUM(usd) FROM costs",
    "SELECT PROB() FROM person WHERE ssn = 1",
];

/// Kill/reopen after committed statements (no checkpoint) loses nothing:
/// snapshot + WAL replay reproduce bit-identical query results at every
/// worker count.
#[test]
fn kill_and_reopen_loses_nothing() {
    let path = db_path("kill-reopen");
    let expected: Vec<Vec<Vec<String>>> = {
        let mut mem = Session::new();
        mem.execute_script(SETUP).unwrap();
        PROBES.iter().map(|q| rows_of(&mut mem, q)).collect()
    };

    {
        let mut s = Session::open(&path).unwrap();
        s.execute_script(SETUP).unwrap();
        // dropped without CHECKPOINT: this is the "kill" — everything
        // must come back from the WAL alone
    }
    assert!(!path.exists(), "no snapshot was ever checkpointed");

    for workers in [1usize, 2, 4] {
        let mut s =
            Session::open(&path).unwrap().with_worker_pool(Arc::new(WorkerPool::new(workers)));
        for (q, exp) in PROBES.iter().zip(&expected) {
            let got = rows_of(&mut s, q);
            assert_eq!(&got, exp, "query {q} diverged after recovery at {workers} workers");
        }
    }
    rm_db(&path);
}

/// The same holds across a checkpoint: snapshot load + WAL tail replay.
#[test]
fn checkpoint_then_more_statements_then_reopen() {
    let path = db_path("ckpt-tail");
    let tail = "INSERT INTO person VALUES ({5: 0.1, 6: 0.9}, 'dee'); REPAIR KEY person(ssn)";
    let expected: Vec<Vec<Vec<String>>> = {
        let mut mem = Session::new();
        mem.execute_script(SETUP).unwrap();
        mem.execute_script(tail).unwrap();
        PROBES.iter().map(|q| rows_of(&mut mem, q)).collect()
    };

    {
        let mut s = Session::open(&path).unwrap();
        s.execute_script(SETUP).unwrap();
        s.execute("CHECKPOINT").unwrap();
        assert_eq!(s.wal_len(), Some(WAL_HEADER_LEN), "checkpoint must empty the WAL");
        s.execute_script(tail).unwrap();
        assert!(s.wal_len().unwrap() > WAL_HEADER_LEN);
    }
    assert!(path.exists(), "checkpoint produced a snapshot");

    let mut s = Session::open(&path).unwrap();
    for (q, exp) in PROBES.iter().zip(&expected) {
        assert_eq!(&rows_of(&mut s, q), exp, "query {q} diverged after snapshot+tail recovery");
    }
    rm_db(&path);
}

/// Regression: a WAL truncated mid-record (torn write) recovers exactly
/// the committed prefix — the partial record is dropped, nothing before
/// it is lost, and the log accepts appends again afterwards.
#[test]
fn torn_wal_tail_keeps_exactly_the_committed_prefix() {
    let path = db_path("torn");
    let wal = wal_path_for(&path);

    // Statements whose effects are all distinguishable from each other.
    let stmts: Vec<String> = std::iter::once("CREATE TABLE t (x INT)".to_string())
        .chain((0..8).map(|i| format!("INSERT INTO t VALUES ({{{}: 0.5, {}: 0.5}})", i * 10, i * 10 + 1)))
        .collect();

    // Record the WAL length after each committed statement.
    let mut ends = Vec::new();
    {
        let mut s = Session::open(&path).unwrap();
        for stmt in &stmts {
            s.execute(stmt).unwrap();
            ends.push(s.wal_len().unwrap());
        }
    }

    // Tear the log in the middle of the last record (5 bytes short of its
    // end — past the record header, inside the payload).
    let full = *ends.last().unwrap();
    assert!(full - ends[ends.len() - 2] > 5, "last record long enough to tear");
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(full - 5).unwrap();
    drop(f);

    // Recovery: exactly the first n-1 statements survive.
    let expected: Vec<Vec<String>> = {
        let mut mem = Session::new();
        for stmt in &stmts[..stmts.len() - 1] {
            mem.execute(stmt).unwrap();
        }
        rows_of(&mut mem, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x")
    };
    let mut s = Session::open(&path).unwrap();
    let got = rows_of(&mut s, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x");
    assert_eq!(got, expected, "recovery must keep the committed prefix and drop the torn record");
    assert_eq!(
        s.wal_len(),
        Some(ends[ends.len() - 2]),
        "the torn tail must be truncated off the file"
    );

    // The log is healthy again: append, kill, reopen.
    s.execute("INSERT INTO t VALUES (999)").unwrap();
    drop(s);
    let mut s2 = Session::open(&path).unwrap();
    let after = rows_of(&mut s2, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x");
    assert_eq!(after.len(), expected.len() + 1);
    assert!(after.iter().any(|r| r[0].contains("999")));
    rm_db(&path);
}

/// Tearing at *every* byte offset inside the final record always recovers
/// the committed prefix (sweep version of the regression above).
#[test]
fn torn_tail_sweep() {
    let path = db_path("torn-sweep");
    let wal = wal_path_for(&path);
    let before_last;
    let full;
    {
        let mut s = Session::open(&path).unwrap();
        s.execute("CREATE TABLE t (x INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        before_last = s.wal_len().unwrap();
        s.execute("INSERT INTO t VALUES ({2: 0.5, 3: 0.5})").unwrap();
        full = s.wal_len().unwrap();
    }
    let torn_record = std::fs::read(&wal).unwrap();
    for cut in before_last + 1..full {
        std::fs::write(&wal, &torn_record[..cut as usize]).unwrap();
        let mut s = Session::open(&path).unwrap();
        let rows = rows_of(&mut s, "SELECT POSSIBLE x FROM t ORDER BY x");
        assert_eq!(rows.len(), 1, "cut at {cut}: committed prefix only");
        assert_eq!(s.wal_len(), Some(before_last), "cut at {cut}: tail truncated");
    }
    rm_db(&path);
}

/// Acceptance: a WAL ending mid-commit-group recovers to the
/// **pre-transaction** state at every truncation offset. The whole
/// transaction is one CRC-framed record, so no cut can ever replay a
/// partial transaction — it is all (intact record) or nothing (torn).
#[test]
fn torn_commit_group_sweep_recovers_pre_transaction_state() {
    let path = db_path("torn-txn");
    let wal = wal_path_for(&path);
    let before_txn;
    let full;
    {
        let mut s = Session::open(&path).unwrap();
        s.execute_script(
            "CREATE TABLE t (x INT); \
             INSERT INTO t VALUES (1), ({2: 0.5, 3: 0.5})",
        )
        .unwrap();
        before_txn = s.wal_len().unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (10), (11)").unwrap();
        s.execute("UPDATE t SET x = 99 WHERE x = 1").unwrap();
        s.execute("DELETE FROM t WHERE x = 10").unwrap();
        s.execute("COMMIT").unwrap();
        full = s.wal_len().unwrap();
        assert!(s.wal_sync_count().unwrap() >= 1);
    }
    // the committed transaction is exactly one WAL record
    let raw = std::fs::read(&wal).unwrap();
    assert_eq!(full, raw.len() as u64);
    assert!(full > before_txn);

    // what recovery must produce for every torn cut: the pre-transaction
    // state, byte-identical under the codec
    let expected_rows: Vec<Vec<String>> = {
        let mut mem = Session::new();
        mem.execute_script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1), ({2: 0.5, 3: 0.5})")
            .unwrap();
        rows_of(&mut mem, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x")
    };
    for cut in before_txn + 1..full {
        std::fs::write(&wal, &raw[..cut as usize]).unwrap();
        let mut s = Session::open(&path)
            .unwrap_or_else(|e| panic!("cut {cut}: recovery failed: {e}"));
        let got = rows_of(&mut s, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x");
        assert_eq!(
            got, expected_rows,
            "cut {cut}: a torn commit group must roll the whole transaction back"
        );
        assert_eq!(s.wal_len(), Some(before_txn), "cut {cut}: torn group truncated");
    }

    // and the intact record replays the whole transaction
    std::fs::write(&wal, &raw).unwrap();
    let mut s = Session::open(&path).unwrap();
    let got = rows_of(&mut s, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x");
    // worlds: x=99 (was 1), {2,3} or-set, 11; 10 deleted
    assert_eq!(got.len(), 4);
    assert!(got.iter().any(|r| r[0].contains("99")));
    assert!(got.iter().any(|r| r[0].contains("11")));
    assert!(!got.iter().any(|r| r[0].contains("10")));
    rm_db(&path);
}

/// A process killed mid-transaction (no COMMIT) leaves nothing of the
/// transaction in the log: recovery lands exactly on the last committed
/// statement, at every worker count.
#[test]
fn kill_mid_transaction_recovers_pre_transaction_state() {
    let path = db_path("kill-txn");
    {
        let mut s = Session::open(&path).unwrap();
        s.execute_script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (2)").unwrap();
        s.execute("DELETE FROM t WHERE x = 1").unwrap();
        assert_eq!(
            rows_of(&mut s, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x").len(),
            1,
            "inside the transaction the session sees its own writes"
        );
        // killed here: the buffered records never reach the WAL
    }
    for workers in [1usize, 2, 4] {
        let mut s =
            Session::open(&path).unwrap().with_worker_pool(Arc::new(WorkerPool::new(workers)));
        let got = rows_of(&mut s, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x");
        assert_eq!(got.len(), 1, "workers = {workers}");
        assert!(got[0][0].contains('1'), "workers = {workers}: pre-transaction state");
    }
    rm_db(&path);
}

/// The group-commit acceptance: a transaction of N INSERTs performs
/// exactly one WAL fsync and lands as one record.
#[test]
fn transaction_of_n_inserts_is_one_fsync() {
    let path = db_path("one-fsync");
    let mut s = Session::open(&path).unwrap();
    s.execute("CREATE TABLE t (x INT)").unwrap();
    let syncs = s.wal_sync_count().unwrap();
    let len = s.wal_len().unwrap();
    s.execute("BEGIN").unwrap();
    for i in 0..50 {
        s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    assert_eq!(s.wal_sync_count().unwrap(), syncs, "nothing synced before COMMIT");
    assert_eq!(s.wal_len().unwrap(), len, "nothing appended before COMMIT");
    s.execute("COMMIT").unwrap();
    assert_eq!(s.wal_sync_count().unwrap(), syncs + 1, "50 inserts, one fsync");
    drop(s);
    let mut back = Session::open(&path).unwrap();
    assert_eq!(
        rows_of(&mut back, "SELECT POSSIBLE x, PROB() FROM t ORDER BY x").len(),
        50
    );
    rm_db(&path);
}

/// The snapshot file is verified on load: flipping any payload byte makes
/// recovery fail loudly instead of loading a silently wrong database.
#[test]
fn corrupt_snapshot_is_rejected() {
    let path = db_path("corrupt-snap");
    {
        let mut s = Session::open(&path).unwrap();
        s.execute_script("CREATE TABLE t (x INT); INSERT INTO t VALUES ({1: 0.5, 2: 0.5})")
            .unwrap();
        s.execute("CHECKPOINT").unwrap();
    }
    let mut raw = std::fs::read(&path).unwrap();
    // flip a byte inside the first page's payload (the page is mostly
    // zero padding for a snapshot this small, and padding is unchecked)
    let payload_at = maybms_storage::snapshot::PREAMBLE_LEN + maybms_storage::PAGE_HEADER_LEN + 10;
    raw[payload_at] ^= 0x20;
    std::fs::write(&path, &raw).unwrap();
    let err = Session::open(&path).unwrap_err();
    assert!(err.to_string().contains("storage error"), "{err}");
    rm_db(&path);
}

/// Fills a durable session with enough data that the snapshot spans many
/// pages, with the small mutable tables (SETUP) encoded *after* the bulk
/// so point mutations only dirty trailing pages. (The page diff runs over
/// the serialized stream, so a byte shift early in the stream cascades —
/// mutations near the end are the incremental sweet spot.)
fn bulk_then_setup(s: &mut Session) {
    s.execute("CREATE TABLE bulk (id INT, tag TEXT)").unwrap();
    let ins = s.prepare("INSERT INTO bulk VALUES (?, ?)").unwrap();
    let mut txn = s.transaction().unwrap();
    for i in 0..2000i64 {
        txn.execute_prepared(
            &ins,
            &[maybms_relational::Value::Int(i), maybms_relational::Value::str(format!("tag-{i}"))],
        )
        .unwrap();
    }
    txn.commit().unwrap();
    s.execute_script(SETUP).unwrap();
}

/// An incremental checkpoint (page-diff overlay) recovers byte-identical
/// state, leaves the base snapshot file untouched, and compacts the WAL
/// exactly like a full one.
#[test]
fn incremental_checkpoint_recovers_byte_identical_state() {
    let path = db_path("inc-ckpt");
    let mut s = Session::open(&path).unwrap();
    bulk_then_setup(&mut s);
    let r = s.execute("CHECKPOINT").unwrap();
    assert!(r.ack().contains("full"), "first checkpoint is full: {}", r.ack());
    let base_bytes = std::fs::read(&path).unwrap();

    // a point mutation, then an incremental checkpoint
    s.execute("UPDATE person SET name = 'anna' WHERE ssn = 1").unwrap();
    let r = s.execute("CHECKPOINT").unwrap();
    assert!(r.ack().contains("incremental"), "{}", r.ack());
    assert_eq!(s.wal_len(), Some(WAL_HEADER_LEN), "incremental checkpoint compacts the WAL");
    assert_eq!(s.storage_generation(), Some(2));
    assert_eq!(
        std::fs::read(&path).unwrap(),
        base_bytes,
        "an incremental checkpoint must not rewrite the base snapshot"
    );
    assert!(delta_path_for(&path).exists(), "the overlay file holds the diff");

    // recovery: base + overlay is byte-identical to the live state
    let expected = maybms_core::codec::encode_wsd(s.wsd());
    let expected_rows: Vec<_> = PROBES.iter().map(|q| rows_of(&mut s, q)).collect();
    drop(s);
    let mut back = Session::open(&path).unwrap();
    assert_eq!(maybms_core::codec::encode_wsd(back.wsd()), expected);
    for (q, exp) in PROBES.iter().zip(&expected_rows) {
        assert_eq!(&rows_of(&mut back, q), exp, "query {q} diverged after overlay recovery");
    }

    // CHECKPOINT FULL collapses the overlay into a fresh base
    back.execute("INSERT INTO person VALUES (9, 'gus')").unwrap();
    let r = back.execute("CHECKPOINT FULL").unwrap();
    assert!(r.ack().contains("full"), "{}", r.ack());
    assert!(!delta_path_for(&path).exists(), "FULL must remove the overlay");
    assert_ne!(std::fs::read(&path).unwrap(), base_bytes, "FULL rewrites the base");
    rm_db(&path);
}

/// Acceptance (satellite): a checkpoint with zero mutations since the
/// last one is a pure no-op — no page rewrites, no generation bump, no
/// file touched.
#[test]
fn checkpoint_after_zero_mutations_is_a_noop() {
    let path = db_path("noop-ckpt");
    let mut s = Session::open(&path).unwrap();
    s.execute_script(SETUP).unwrap();
    s.execute("CHECKPOINT").unwrap();
    let generation = s.storage_generation();
    let base_bytes = std::fs::read(&path).unwrap();
    let had_overlay = delta_path_for(&path).exists();

    let r = s.execute("CHECKPOINT").unwrap();
    assert!(r.ack().contains("skipped"), "{}", r.ack());
    assert_eq!(s.storage_generation(), generation, "generation must not advance");
    assert_eq!(std::fs::read(&path).unwrap(), base_bytes, "no page was rewritten");
    assert_eq!(delta_path_for(&path).exists(), had_overlay, "no overlay appeared");
    assert_eq!(s.wal_len(), Some(WAL_HEADER_LEN));

    // …and the database still recovers normally afterwards
    s.execute("INSERT INTO person VALUES (9, 'gus')").unwrap();
    drop(s);
    let mut back = Session::open(&path).unwrap();
    assert!(rows_of(&mut back, "SELECT POSSIBLE ssn, name, PROB() FROM person ORDER BY name, ssn")
        .iter()
        .any(|r| r[1].contains("gus")));
    rm_db(&path);
}

/// Acceptance (satellite): a corrupt overlay page map fails recovery
/// loudly instead of assembling a frankenstein snapshot.
#[test]
fn corrupt_overlay_page_map_fails_loudly() {
    let path = db_path("bad-page-map");
    {
        let mut s = Session::open(&path).unwrap();
        bulk_then_setup(&mut s);
        s.execute("CHECKPOINT").unwrap();
        s.execute("UPDATE person SET name = 'anna' WHERE ssn = 1").unwrap();
        let r = s.execute("CHECKPOINT").unwrap();
        assert!(r.ack().contains("incremental"), "{}", r.ack());
    }
    let inc = delta_path_for(&path);
    let pristine = std::fs::read(&inc).unwrap();

    // flip a byte inside the page map (just past the fixed preamble)
    let mut bad = pristine.clone();
    bad[maybms_storage::delta::DELTA_PREAMBLE_LEN] ^= 0x01;
    std::fs::write(&inc, &bad).unwrap();
    let err = Session::open(&path).unwrap_err();
    assert!(
        err.to_string().contains("checksum") || err.to_string().contains("page"),
        "expected a loud page-map failure, got: {err}"
    );

    // flip a byte inside a stored page's payload: also loud
    let mut bad_page = pristine.clone();
    let npages = u32::from_le_bytes(pristine[52..56].try_into().unwrap()) as usize;
    assert!(npages >= 1);
    let first_page_payload = maybms_storage::delta::DELTA_PREAMBLE_LEN
        + npages * 4
        + 4
        + maybms_storage::PAGE_HEADER_LEN;
    bad_page[first_page_payload + 4] ^= 0x10;
    std::fs::write(&inc, &bad_page).unwrap();
    assert!(Session::open(&path).is_err());

    // the pristine overlay still recovers
    std::fs::write(&inc, &pristine).unwrap();
    let mut s = Session::open(&path).unwrap();
    assert!(rows_of(&mut s, "SELECT POSSIBLE ssn, name, PROB() FROM person ORDER BY name, ssn")
        .iter()
        .any(|r| r[1].contains("anna")));
    rm_db(&path);
}
