//! Crash-consistency torture tests: random statement scripts crossed
//! with random fault schedules on the [`FaultVfs`], plus deterministic
//! sweeps that place a single fault at *every* sync point / write of a
//! fixed workload.
//!
//! The oracle, for every run: after injecting faults, "crashing" the VFS
//! (dropping everything not yet fsynced) and reopening, the recovered
//! decomposition must be **byte-identical under the codec to the state
//! at some committed-group boundary** of the script — never a torn or
//! corrupt hybrid. And unless the schedule contained a *lying* fsync
//! (reports success, persists nothing — the one fault no storage engine
//! can see through), no group whose commit was acknowledged may be lost:
//! the boundary is at or after the last acked group.
//!
//! A failing run writes its full schedule + fault log to
//! `target/fault-artifacts/` before panicking, so the exact schedule can
//! be replayed (`MAYBMS_FAULT_SEEDS=<seed>`).

use std::path::Path;
use std::sync::Arc;

use maybms_core::codec::encode_wsd;
use maybms_sql::{Session, SessionError};
use maybms_storage::{Database, Fault, FaultOp, FaultSpec, FaultVfs, Vfs};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Every database in this file lives *inside* a [`FaultVfs`] — the path
/// is a pure key, nothing touches the real filesystem.
const DB: &str = "/fault/db.maybms";

fn seeds() -> Vec<u64> {
    match std::env::var("MAYBMS_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse().expect("MAYBMS_FAULT_SEEDS: comma-separated u64s"))
            .collect(),
        Err(_) => (0..25).collect(),
    }
}

/// One committed unit of the script: a single autocommitted statement, a
/// `BEGIN`..`COMMIT` block, or a checkpoint (which commits nothing but
/// exercises the snapshot/rename path under faults).
#[derive(Debug, Clone)]
enum Group {
    Auto(String),
    Txn(Vec<String>),
    Checkpoint { full: bool },
}

fn gen_script(rng: &mut StdRng) -> Vec<Group> {
    let mut groups = vec![Group::Auto("CREATE TABLE t (x INT, tag TEXT)".into())];
    let mut next_val = 0i64;
    let n = rng.gen_range(6usize..=14);
    for i in 0..n {
        if rng.gen_bool(0.15) {
            groups.push(Group::Checkpoint { full: rng.gen_bool(0.5) });
            continue;
        }
        let mut stmt = |rng: &mut StdRng| {
            let kind = rng.gen_range(0u32..4);
            match kind {
                0 => {
                    let a = next_val;
                    next_val += 2;
                    format!("INSERT INTO t VALUES ({{{a}: 0.5, {}: 0.5}}, 'g{i}')", a + 1)
                }
                1 => {
                    let a = next_val;
                    next_val += 1;
                    format!("INSERT INTO t VALUES ({a}, 'c{i}')")
                }
                2 => format!("DELETE FROM t WHERE x > {}", rng.gen_range(0i64..next_val.max(1))),
                _ => format!(
                    "UPDATE t SET tag = 'u{i}' WHERE x < {}",
                    rng.gen_range(0i64..next_val.max(1))
                ),
            }
        };
        if rng.gen_bool(0.4) {
            let k = rng.gen_range(1usize..=3);
            groups.push(Group::Txn((0..k).map(|_| stmt(rng)).collect()));
        } else {
            groups.push(Group::Auto(stmt(rng)));
        }
    }
    groups
}

fn gen_schedule(rng: &mut StdRng) -> Vec<FaultSpec> {
    let n = rng.gen_range(1usize..=4);
    (0..n)
        .map(|_| {
            let nth = rng.gen_range(0u64..30);
            match rng.gen_range(0u32..10) {
                // 40% sync faults (half failing, half lying)
                0..=3 => {
                    if rng.gen_bool(0.5) {
                        FaultSpec::fail_sync(nth)
                    } else {
                        FaultSpec::lie_sync(nth)
                    }
                }
                // 40% write faults
                4..=7 => match rng.gen_range(0u32..3) {
                    0 => FaultSpec::fail_write(nth),
                    1 => FaultSpec::enospc_write(nth),
                    _ => FaultSpec::short_write(nth, rng.gen_range(0usize..40)),
                },
                // 20% rename faults (rarer ops, keep nth small)
                _ => FaultSpec::fail_rename(rng.gen_range(0u64..6)),
            }
        })
        .collect()
}

fn run_group(s: &mut Session, g: &Group) -> Result<(), SessionError> {
    match g {
        Group::Auto(sql) => s.execute(sql).map(|_| ()),
        Group::Txn(stmts) => {
            s.execute("BEGIN")?;
            for sql in stmts {
                if let Err(e) = s.execute(sql) {
                    let _ = s.execute("ROLLBACK");
                    return Err(e);
                }
            }
            s.execute("COMMIT").map(|_| ())
        }
        Group::Checkpoint { full } => s
            .execute(if *full { "CHECKPOINT FULL" } else { "CHECKPOINT" })
            .map(|_| ()),
    }
}

/// The codec bytes of the state after each script prefix:
/// `candidates[k]` is the state once groups `0..k` have committed
/// (computed on a plain in-memory session — the engine is
/// deterministic, so these are the only legal recovery outcomes).
fn prefix_states(groups: &[Group]) -> Vec<Vec<u8>> {
    let mut mem = Session::new();
    let mut states = vec![encode_wsd(mem.wsd())];
    for g in groups {
        match g {
            Group::Checkpoint { .. } => {} // no state change
            other => run_group(&mut mem, other).expect("script must be valid in memory"),
        }
        states.push(encode_wsd(mem.wsd()));
    }
    states
}

struct RunOutcome {
    /// Groups whose commit was acknowledged (`Ok` returned).
    acked: usize,
    /// `acked`, plus the failed group if one was attempted.
    attempted: usize,
    /// The error that stopped the script, if any.
    error: Option<String>,
}

/// Runs `groups` against a fresh durable session on `vfs` until the
/// first failure.
fn run_script(vfs: &FaultVfs, groups: &[Group]) -> RunOutcome {
    let session = Session::open_with_vfs(DB, Arc::new(vfs.clone()) as Arc<dyn Vfs>);
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            return RunOutcome { acked: 0, attempted: 0, error: Some(format!("open: {e}")) }
        }
    };
    let mut acked = 0;
    for g in groups {
        match run_group(&mut session, g) {
            Ok(()) => acked += 1,
            Err(e) => {
                return RunOutcome { acked, attempted: acked + 1, error: Some(e.to_string()) }
            }
        }
    }
    RunOutcome { acked, attempted: acked, error: None }
}

/// Dumps everything needed to replay a failing schedule, then panics.
fn fail_with_artifact(name: &str, details: &str) -> ! {
    let dir = Path::new("target/fault-artifacts");
    let _ = std::fs::create_dir_all(dir);
    let file = dir.join(format!("{name}.txt"));
    let _ = std::fs::write(&file, details);
    panic!("{name}: torture property violated (schedule written to {}):\n{details}", file.display());
}

/// The crash-consistency oracle (see the module docs).
fn assert_crash_consistent(
    name: &str,
    vfs: &FaultVfs,
    schedule: &[FaultSpec],
    outcome: &RunOutcome,
    candidates: &[Vec<u8>],
) {
    let had_lie = schedule.iter().any(|s| matches!(s.fault, Fault::SyncLie));
    vfs.crash();
    vfs.clear_schedule();
    let details = || {
        format!(
            "schedule: {schedule:?}\nacked: {} attempted: {} error: {:?}\nfault log:\n  {}\n",
            outcome.acked,
            outcome.attempted,
            outcome.error,
            vfs.fault_log().join("\n  ")
        )
    };
    let reopened = match Session::open_with_vfs(DB, Arc::new(vfs.clone()) as Arc<dyn Vfs>) {
        Ok(s) => s,
        Err(e) => fail_with_artifact(name, &format!("{}reopen failed: {e}", details())),
    };
    let recovered = encode_wsd(reopened.wsd());
    let hi = outcome.attempted.min(candidates.len() - 1);
    if !candidates[..=hi].contains(&recovered) {
        fail_with_artifact(
            name,
            &format!("{}recovered state matches NO committed-group prefix", details()),
        );
    }
    if !had_lie && !candidates[outcome.acked..=hi].contains(&recovered) {
        fail_with_artifact(
            name,
            &format!(
                "{}durability lost without a lying fsync: recovered state predates \
                 the last acknowledged group",
                details()
            ),
        );
    }
}

/// The tentpole property: random scripts × random fault schedules,
/// recovery always lands on a committed-group boundary.
#[test]
fn torture_random_scripts_random_faults() {
    for seed in seeds() {
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = gen_script(&mut rng);
        let candidates = prefix_states(&groups);
        let schedule = gen_schedule(&mut rng);
        let vfs = FaultVfs::with_schedule(schedule.clone());
        let outcome = run_script(&vfs, &groups);
        assert_crash_consistent(
            &format!("torture-seed-{seed}"),
            &vfs,
            &schedule,
            &outcome,
            &candidates,
        );
    }
}

/// A fixed workload covering autocommit, group commit and checkpoints —
/// the sweeps below place one fault at every one of its sync points /
/// writes.
fn sweep_script() -> Vec<Group> {
    vec![
        Group::Auto("CREATE TABLE t (x INT, tag TEXT)".into()),
        Group::Auto("INSERT INTO t VALUES ({1: 0.5, 2: 0.5}, 'a')".into()),
        Group::Txn(vec![
            "INSERT INTO t VALUES (3, 'b')".into(),
            "UPDATE t SET tag = 'bb' WHERE x = 3".into(),
        ]),
        Group::Checkpoint { full: false },
        Group::Auto("INSERT INTO t VALUES (4, 'c')".into()),
        Group::Txn(vec![
            "DELETE FROM t WHERE x > 3".into(),
            "INSERT INTO t VALUES ({5, 6}, 'd')".into(),
        ]),
        Group::Checkpoint { full: true },
        Group::Auto("INSERT INTO t VALUES (7, 'e')".into()),
    ]
}

/// Counts how many operations of class `op` the clean workload issues.
fn count_ops(groups: &[Group], op: FaultOp) -> u64 {
    let vfs = FaultVfs::new();
    let outcome = run_script(&vfs, groups);
    assert_eq!(outcome.error, None, "sweep script must run clean without faults");
    vfs.op_count(op)
}

/// An fsync that *fails* at every single sync point of the workload:
/// recovery must land on a boundary at or after the last acked group
/// (fsyncgate semantics — a failed fsync is never retried-and-trusted).
#[test]
fn fsync_failure_at_every_sync_point() {
    let groups = sweep_script();
    let candidates = prefix_states(&groups);
    let syncs = count_ops(&groups, FaultOp::Sync);
    assert!(syncs >= 8, "expected a sync-heavy workload, saw {syncs}");
    for n in 0..syncs {
        let schedule = vec![FaultSpec::fail_sync(n)];
        let vfs = FaultVfs::with_schedule(schedule.clone());
        let outcome = run_script(&vfs, &groups);
        assert_crash_consistent(
            &format!("fsync-fail-{n}"),
            &vfs,
            &schedule,
            &outcome,
            &candidates,
        );
    }
}

/// An fsync that *lies* (reports success, persists nothing) at every
/// sync point: acked data may be lost — that is physics — but recovery
/// must still land on a committed-group boundary, never corruption.
#[test]
fn lying_fsync_at_every_sync_point() {
    let groups = sweep_script();
    let candidates = prefix_states(&groups);
    let syncs = count_ops(&groups, FaultOp::Sync);
    for n in 0..syncs {
        let schedule = vec![FaultSpec::lie_sync(n)];
        let vfs = FaultVfs::with_schedule(schedule.clone());
        let outcome = run_script(&vfs, &groups);
        assert_crash_consistent(
            &format!("fsync-lie-{n}"),
            &vfs,
            &schedule,
            &outcome,
            &candidates,
        );
    }
}

/// `ENOSPC` at every write a `CHECKPOINT` / `CHECKPOINT FULL` issues, at
/// the session level. Before the publish rename the session must
/// *degrade* (read-only, structured error, recoverable by a retried
/// checkpoint once space is back); after it, the handle poisons itself.
/// Either way the pre-checkpoint state survives a crash.
#[test]
fn enospc_at_every_checkpoint_write_degrades_session() {
    for full in [false, true] {
        let setup = vec![
            Group::Auto("CREATE TABLE t (x INT, tag TEXT)".into()),
            Group::Auto("INSERT INTO t VALUES ({1: 0.5, 2: 0.5}, 'a')".into()),
            Group::Auto("INSERT INTO t VALUES (3, 'b')".into()),
        ];
        let candidates = prefix_states(&setup);
        let pre_checkpoint = candidates.last().unwrap().clone();

        // writes issued by setup alone, then by setup + checkpoint
        let vfs = FaultVfs::new();
        let outcome = run_script(&vfs, &setup);
        assert_eq!(outcome.error, None);
        let before = vfs.op_count(FaultOp::Write);
        let mut groups = setup.clone();
        groups.push(Group::Checkpoint { full });
        let total = count_ops(&groups, FaultOp::Write);
        assert!(total > before, "a checkpoint must write");

        for n in before..total {
            let vfs = FaultVfs::with_schedule(vec![FaultSpec::enospc_write(n)]);
            let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
            let mut s = Session::open_with_vfs(DB, Arc::clone(&arc)).unwrap();
            for g in &setup {
                run_group(&mut s, g).unwrap();
            }
            let sql = if full { "CHECKPOINT FULL" } else { "CHECKPOINT" };
            let err = s.execute(sql).expect_err("checkpoint must fail under ENOSPC");
            assert!(
                err.to_string().contains("No space left"),
                "error must surface ENOSPC: {err}"
            );
            if s.is_poisoned() {
                // post-publish window (WAL swap): fail-stop is correct
                let refused = s.execute("INSERT INTO t VALUES (9, 'x')").unwrap_err();
                assert!(refused.to_string().contains("poisoned"), "{refused}");
            } else {
                // pre-publish: graceful degradation to read-only
                assert!(s.is_degraded(), "ENOSPC before publish must degrade: {err}");
                assert!(matches!(err, SessionError::Degraded { .. }), "{err}");
                let refused = s.execute("INSERT INTO t VALUES (9, 'x')").unwrap_err();
                assert!(matches!(refused, SessionError::Degraded { .. }), "{refused}");
                // queries still answer
                assert_eq!(
                    s.execute("SELECT POSSIBLE x FROM t WHERE x = 3").unwrap().rows().len(),
                    1
                );
                // space comes back: a retried checkpoint clears the
                // degradation and writes flow again
                vfs.clear_schedule();
                s.execute(sql).unwrap();
                assert!(!s.is_degraded());
                s.execute("INSERT INTO t VALUES (10, 'y')").unwrap();
            }
            // crash + reopen: the pre-checkpoint state (or better, if the
            // retry above committed more) — never less, never torn
            drop(s);
            vfs.clear_schedule();
            vfs.crash();
            let reopened = Session::open_with_vfs(DB, arc).unwrap();
            let recovered = encode_wsd(reopened.wsd());
            let candidates_now = [pre_checkpoint.clone(), {
                let mut mem = Session::new();
                for g in &setup {
                    run_group(&mut mem, g).unwrap();
                }
                let _ = mem.execute("INSERT INTO t VALUES (10, 'y')");
                encode_wsd(mem.wsd())
            }];
            assert!(
                candidates_now.contains(&recovered),
                "ENOSPC sweep (full={full}, write {n}): recovered state is neither the \
                 pre-checkpoint state nor the post-retry state"
            );
        }
    }
}

/// `ENOSPC` at every write of an *incremental* (page-diff overlay)
/// checkpoint, at the `Database` level with tiny pages: recovery must
/// yield the base snapshot + WAL records or the published overlay —
/// never a half-written overlay assembled into a wrong payload.
#[test]
fn enospc_at_every_write_of_incremental_checkpoint() {
    // A payload two pages wide (page_size 64) where the second version
    // changes only one page → the incremental path triggers.
    let v1: Vec<u8> = (0..400u32).map(|i| (i % 251) as u8).collect();
    let mut v2 = v1.clone();
    v2[3] ^= 0xff; // one early page changes, the rest stay

    let run = |schedule: Vec<FaultSpec>| -> (FaultVfs, Result<(), String>) {
        let vfs = FaultVfs::with_schedule(schedule);
        let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
        let r = (|| {
            let mut db = Database::open_with_vfs(DB, 64, Arc::clone(&arc))
                .map_err(|e| e.to_string())?
                .db;
            db.append(b"r1").map_err(|e| e.to_string())?;
            db.checkpoint(&v1).map_err(|e| e.to_string())?;
            db.append(b"r2").map_err(|e| e.to_string())?;
            db.checkpoint(&v2).map_err(|e| e.to_string())?;
            Ok(())
        })();
        (vfs, r)
    };

    // clean run: count writes, prove the second checkpoint is incremental
    let (clean, ok) = run(Vec::new());
    assert_eq!(ok, Ok(()));
    let total = clean.op_count(FaultOp::Write);

    for n in 0..total {
        let (vfs, result) = run(vec![FaultSpec::enospc_write(n)]);
        vfs.crash();
        vfs.clear_schedule();
        let recovered = Database::open_with_vfs(DB, 64, Arc::new(vfs.clone()) as Arc<dyn Vfs>)
            .unwrap_or_else(|e| {
                fail_with_artifact(
                    &format!("enospc-incremental-{n}"),
                    &format!("reopen failed: {e}\nfault log:\n  {}", vfs.fault_log().join("\n  ")),
                )
            });
        // the effective durable state must be a committed boundary:
        // nothing yet, v1 (+ any replayable records), or v2
        let snap = recovered.snapshot.clone();
        let legal = snap.is_none() || snap.as_deref() == Some(&v1[..]) || snap.as_deref() == Some(&v2[..]);
        if !legal {
            fail_with_artifact(
                &format!("enospc-incremental-{n}"),
                &format!(
                    "run result: {result:?}\nrecovered snapshot is a hybrid \
                     ({} bytes)\nfault log:\n  {}",
                    snap.map(|s| s.len()).unwrap_or(0),
                    vfs.fault_log().join("\n  ")
                ),
            );
        }
    }
}

/// A torn (short) write on the commit group's WAL append: `COMMIT` must
/// fail, the transaction must roll back cleanly in memory, the handle
/// must poison, and recovery must truncate the torn tail back to the
/// last committed statement.
#[test]
fn short_write_tears_commit_group() {
    let vfs = FaultVfs::new();
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let mut s = Session::open_with_vfs(DB, Arc::clone(&arc)).unwrap();
    s.execute("CREATE TABLE t (x INT, tag TEXT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 'keep')").unwrap();

    // tear the very next WAL write (the commit group) after 5 bytes
    vfs.push_fault(FaultSpec::short_write(vfs.op_count(FaultOp::Write), 5));
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t VALUES (2, 'lost')").unwrap();
    s.execute("INSERT INTO t VALUES (3, 'lost')").unwrap();
    let err = s.execute("COMMIT").unwrap_err();
    assert!(err.to_string().contains("rolled back"), "{err}");

    // the rollback was clean: memory shows exactly the pre-BEGIN state
    assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
    // and the handle is poisoned — no write may follow an unknown-durability append
    assert!(s.is_poisoned());
    assert!(s.execute("INSERT INTO t VALUES (4, 'no')").unwrap_err().to_string().contains("poisoned"));

    drop(s);
    vfs.crash();
    vfs.clear_schedule();
    let mut reopened = Session::open_with_vfs(DB, arc).unwrap();
    assert_eq!(reopened.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
    assert!(!reopened.is_poisoned());
}

/// A failed fsync on an autocommit append poisons the session: the
/// statement is reported NOT durable, later writes are refused, queries
/// still answer, and reopening recovers the durable prefix.
#[test]
fn failed_fsync_poisons_until_reopen() {
    let vfs = FaultVfs::new();
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let mut s = Session::open_with_vfs(DB, Arc::clone(&arc)).unwrap();
    s.execute("CREATE TABLE t (x INT, tag TEXT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 'durable')").unwrap();

    vfs.push_fault(FaultSpec::fail_sync(vfs.op_count(FaultOp::Sync)));
    let err = s.execute("INSERT INTO t VALUES (2, 'vanishes')").unwrap_err();
    assert!(err.to_string().contains("NOT durable"), "{err}");
    assert!(s.is_poisoned());
    assert!(s.poison_reason().unwrap().contains("durability is unknown"));

    // fsyncgate: the next write must NOT silently retry the sync — it is refused
    let refused = s.execute("INSERT INTO t VALUES (3, 'no')").unwrap_err();
    assert!(refused.to_string().contains("poisoned"), "{refused}");
    // reads still work (memory holds row 2; divergence is documented)
    assert_eq!(s.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 2);

    drop(s);
    vfs.crash();
    vfs.clear_schedule();
    let mut reopened = Session::open_with_vfs(DB, arc).unwrap();
    assert_eq!(reopened.execute("SELECT POSSIBLE x FROM t").unwrap().rows().len(), 1);
}

/// Bit flips on every read of recovery: opening either fails loudly
/// (checksums catch the flip) or — when the flip lands in padding or
/// another unchecked region — yields the exactly correct state. Never a
/// silently wrong database.
#[test]
fn bit_flip_on_every_recovery_read() {
    // build a database with a snapshot, an overlay-able history and a
    // live WAL tail, entirely inside a clean FaultVfs
    let groups = sweep_script();
    let vfs = FaultVfs::new();
    let outcome = run_script(&vfs, &groups);
    assert_eq!(outcome.error, None);
    vfs.crash(); // keep only the durable images
    let files = vfs.durable_files();
    let expected = prefix_states(&groups).last().unwrap().clone();

    // count the reads a clean reopen performs
    let clean = FaultVfs::new();
    for (p, bytes) in &files {
        clean.install(p, bytes.clone());
    }
    let reopened = Session::open_with_vfs(DB, Arc::new(clean.clone()) as Arc<dyn Vfs>).unwrap();
    assert_eq!(encode_wsd(reopened.wsd()), expected, "clean reopen must recover the final state");
    let reads = clean.op_count(FaultOp::Read);
    assert!(reads >= 2, "recovery must read");

    for n in 0..reads {
        let vfs = FaultVfs::new();
        for (p, bytes) in &files {
            vfs.install(p, bytes.clone());
        }
        // vary the flipped bit with n so different bytes get hit
        vfs.push_fault(FaultSpec::flip_read_bit(n, (n as usize) * 13 + 1));
        match Session::open_with_vfs(DB, Arc::new(vfs.clone()) as Arc<dyn Vfs>) {
            Err(_) => {} // loud rejection: exactly right
            Ok(s) => {
                if encode_wsd(s.wsd()) != expected {
                    fail_with_artifact(
                        &format!("bit-flip-read-{n}"),
                        &format!(
                            "a bit flip on read {n} produced a silently WRONG database\n\
                             fault log:\n  {}",
                            vfs.fault_log().join("\n  ")
                        ),
                    );
                }
            }
        }
    }
}

/// A failed publish rename during checkpoint degrades (nothing was
/// published — the old snapshot pair is intact), and the retry path
/// works once renames succeed again.
#[test]
fn rename_failure_during_checkpoint_degrades_and_recovers() {
    let vfs = FaultVfs::new();
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let mut s = Session::open_with_vfs(DB, Arc::clone(&arc)).unwrap();
    s.execute("CREATE TABLE t (x INT, tag TEXT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 'a')").unwrap();

    vfs.push_fault(FaultSpec::fail_rename(vfs.op_count(FaultOp::Rename)));
    let err = s.execute("CHECKPOINT FULL").unwrap_err();
    assert!(matches!(err, SessionError::Degraded { .. }), "{err}");
    assert!(s.is_degraded());

    vfs.clear_schedule();
    s.execute("CHECKPOINT FULL").unwrap();
    assert!(!s.is_degraded());
    s.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
    assert_eq!(s.storage_generation(), Some(1));
}
