//! Snapshot-isolation anomaly tests for the server: readers pinned to
//! published LSN boundaries must never observe a commit group's effects
//! partially applied (no dirty reads, no partial reads), and a
//! long-running reader holding an old snapshot stays byte-stable while
//! writers advance the database underneath it.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use maybms_core::codec::encode_wsd;
use maybms_server::{Client, Server, ServerConfig};
use maybms_sql::{GroupCommitConfig, Session};

fn serve_temp(name: &str) -> (Server, std::net::SocketAddr, std::path::PathBuf) {
    let path = std::env::temp_dir()
        .join(format!("maybms-{name}-{}.maybms", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(maybms_storage::wal_path_for(&path));
    let _ = std::fs::remove_file(maybms_storage::delta_path_for(&path));
    let session = Session::open(&path).expect("open");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let cfg = ServerConfig {
        group: GroupCommitConfig {
            group_window: Duration::from_millis(1),
            ..GroupCommitConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::serve_with(session, listener, cfg).expect("serve");
    let addr = server.addr();
    (server, addr, path)
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(maybms_storage::wal_path_for(path));
    let _ = std::fs::remove_file(maybms_storage::delta_path_for(path));
}

/// Rows in a rendered table, read off the `(N rows)` footer.
fn count_rows(rendered: &str) -> usize {
    rendered
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix('(')?.split_whitespace().next()?.parse().ok())
        .expect("rendered table has an (N rows) footer")
}

/// Every commit group inserts rows in **pairs**, so "the CERTAIN row
/// count is even" holds at every LSN boundary. Concurrent readers
/// hammer SELECTs while writers commit; an odd count would mean a
/// reader saw a group half-applied (a partial read), and a count not
/// matching the reader's reply LSN would mean a torn snapshot.
#[test]
fn no_partial_reads_at_lsn_boundaries() {
    let (server, addr, path) = serve_temp("iso-pairs");
    let mut admin = Client::connect(addr).expect("connect");
    admin.query_ok("CREATE TABLE pairs (x INT)").expect("create");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut conn = Client::connect(addr).expect("connect reader");
                let mut last_lsn = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let reply = conn.query_ok("SELECT CERTAIN x FROM pairs").expect("read");
                    let rows = count_rows(&reply.text);
                    assert_eq!(rows % 2, 0, "odd row count {rows}: a commit group was half-visible");
                    assert!(
                        reply.lsn >= last_lsn,
                        "snapshot LSN went backwards ({last_lsn} -> {})",
                        reply.lsn
                    );
                    last_lsn = reply.lsn;
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    // 3 writers × 10 transactions × 2 inserts, all concurrent
    let writers: Vec<_> = (0..3)
        .map(|w| {
            thread::spawn(move || {
                let mut conn = Client::connect(addr).expect("connect writer");
                for i in 0..10 {
                    conn.query_ok("BEGIN").expect("begin");
                    conn.query_ok(&format!("INSERT INTO pairs VALUES ({})", w * 100 + i))
                        .expect("insert");
                    conn.query_ok(&format!("INSERT INTO pairs VALUES ({})", w * 100 + i + 50))
                        .expect("insert");
                    conn.query_ok("COMMIT").expect("commit");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::SeqCst);
    let total_obs: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total_obs > 0, "readers never got a look in");

    let final_read = admin.query_ok("SELECT CERTAIN x FROM pairs").expect("final");
    assert_eq!(count_rows(&final_read.text), 60, "every committed pair is visible");
    let session = server.shutdown().expect("shutdown");
    drop(session);
    cleanup(&path);
}

/// A long-running reader that pins an old snapshot (in-process view,
/// the same mechanism a connection's read view uses) must stay
/// byte-stable — same answer, same codec bytes — while writers commit
/// dozens of groups after it.
#[test]
fn long_running_reader_holds_its_snapshot() {
    let (server, addr, path) = serve_temp("iso-pin");
    let mut admin = Client::connect(addr).expect("connect");
    admin.query_ok("CREATE TABLE log (x INT)").expect("create");
    admin.query_ok("INSERT INTO log VALUES (1)").expect("seed row");

    // pin: an O(1) view of the snapshot published at this instant
    let handle = server.commit_handle();
    let pinned_at = handle.snapshot();
    let mut pinned = Session::view_at(&pinned_at);
    let before_rows = pinned.execute("SELECT CERTAIN x FROM log").expect("read").rows().len();
    let before_bytes = encode_wsd(pinned.wsd());
    assert_eq!(before_rows, 1);

    // writers advance the database far past the pin
    for i in 0..40 {
        admin.query_ok(&format!("INSERT INTO log VALUES ({})", i + 100)).expect("insert");
    }
    let fresh = admin.query_ok("SELECT CERTAIN x FROM log").expect("fresh read");
    assert_eq!(count_rows(&fresh.text), 41, "new connections see the new commits");
    assert!(fresh.lsn > pinned_at.lsn(), "the published LSN advanced past the pin");

    // the pinned reader is unmoved: same rows, same bytes, same LSN
    let after_rows = pinned.execute("SELECT CERTAIN x FROM log").expect("read").rows().len();
    assert_eq!(after_rows, before_rows, "the pinned snapshot grew new rows");
    assert_eq!(
        encode_wsd(pinned.wsd()),
        before_bytes,
        "the pinned snapshot's decomposition changed under the reader"
    );
    assert!(handle.snapshot().lsn() > pinned_at.lsn());

    // a view refreshed to the *current* snapshot catches up
    pinned.install_snapshot(&handle.snapshot()).expect("refresh");
    let caught_up = pinned.execute("SELECT CERTAIN x FROM log").expect("read").rows().len();
    assert_eq!(caught_up, 41);

    let session = server.shutdown().expect("shutdown");
    drop(session);
    cleanup(&path);
}

/// Uncommitted transaction writes are dirty state: no other connection
/// may see them at any point, even though the writing connection reads
/// them in its own preview.
#[test]
fn no_dirty_reads_from_open_transactions() {
    let (server, addr, path) = serve_temp("iso-dirty");
    let mut writer = Client::connect(addr).expect("connect writer");
    let mut reader = Client::connect(addr).expect("connect reader");
    writer.query_ok("CREATE TABLE d (x INT)").expect("create");

    writer.query_ok("BEGIN").expect("begin");
    writer.query_ok("INSERT INTO d VALUES (1)").expect("dirty insert");
    let own = writer.query_ok("SELECT CERTAIN x FROM d").expect("own read");
    assert_eq!(count_rows(&own.text), 1, "the transaction reads its own write");

    let observed = reader.query_ok("SELECT CERTAIN x FROM d").expect("outside read");
    assert_eq!(count_rows(&observed.text), 0, "dirty read: uncommitted row visible outside");

    writer.query_ok("ROLLBACK").expect("rollback");
    let after = reader.query_ok("SELECT CERTAIN x FROM d").expect("after rollback");
    assert_eq!(count_rows(&after.text), 0, "rolled-back write leaked");

    let session = server.shutdown().expect("shutdown");
    drop(session);
    cleanup(&path);
}
