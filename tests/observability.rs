//! Observability is inert: tracing, metrics and the slow-query log may
//! watch the engine but never steer it. These tests pin that down from
//! the outside — the same workload run with observability enabled,
//! disabled, and at different worker-pool sizes must produce
//! byte-identical decompositions and byte-identical write-ahead logs —
//! and exercise the SQL surface (`SHOW METRICS`, `SHOW SLOW QUERIES`,
//! `SHOW REPLICATION STATUS`, `EXPLAIN ANALYZE`) end to end.
//!
//! Every test that reads or toggles the process-global registry takes
//! `obs_lock()` first: the flag and the counters are shared across the
//! whole test binary, so these tests serialize among themselves.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use maybms_core::codec::encode_wsd;
use maybms_core::exec::WorkerPool;
use maybms_obs::MetricValue;
use maybms_sql::Session;
use maybms_storage::{delta_path_for, wal_path_for};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("maybms-obs-test-{tag}-{}.maybms", std::process::id()))
}

fn wipe(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path_for(path));
    let _ = std::fs::remove_file(delta_path_for(path));
}

/// A workload touching every instrumented layer: DDL and or-set DML
/// (WAL appends), a repair (normalization), world-set and confidence
/// queries (vectorized executor, probability), a transaction, and an
/// EXPLAIN ANALYZE (per-node tracing).
const WORKLOAD: &str = "CREATE TABLE patients (pid INT, name TEXT, diagnosis TEXT); \
     CREATE TABLE treats (diagnosis TEXT, drug TEXT, cost INT); \
     INSERT INTO patients VALUES \
       (1, 'ann', {'flu': 0.3, 'cold': 0.7}), \
       (2, 'bob', 'flu'), \
       (3, 'cyd', {'flu', 'angina'}); \
     INSERT INTO treats VALUES \
       ('flu', 'oseltamivir', 30), ('cold', 'rest', 0), ('angina', 'nitro', 55); \
     REPAIR KEY patients(pid); \
     BEGIN; \
     UPDATE patients SET name = 'anne' WHERE pid = 1; \
     INSERT INTO treats VALUES ('cold', 'tea', 2); \
     COMMIT";

const QUERIES: &[&str] = &[
    "SELECT POSSIBLE name FROM patients WHERE diagnosis = 'flu'",
    "SELECT CERTAIN name FROM patients WHERE diagnosis = 'flu'",
    "SELECT p.name, t.drug, PROB() FROM patients p, treats t \
     WHERE p.diagnosis = t.diagnosis ORDER BY p.name, t.drug",
];

/// Runs the workload in a fresh durable database and returns every
/// artifact observability could conceivably perturb: the rendered query
/// answers, the encoded decomposition, and the raw WAL bytes.
fn run_workload(tag: &str, workers: usize) -> (String, Vec<u8>, Vec<u8>) {
    let path = scratch(tag);
    wipe(&path);
    let mut s = Session::open(&path)
        .expect("open database")
        .with_worker_pool(Arc::new(WorkerPool::new(workers)));
    // log every query so the slow-log machinery itself runs
    s.set_slow_query_threshold(Some(Duration::ZERO));
    s.execute_script(WORKLOAD).expect("workload");
    let mut answers = String::new();
    for q in QUERIES {
        let r = s.execute(q).expect("query");
        let t = r.table().expect("table result");
        for row in t.rows() {
            answers.push_str(&format!("{row:?}\n"));
        }
    }
    // timings in the output differ run to run; executing it must not
    s.execute(&format!("EXPLAIN ANALYZE {}", QUERIES[2])).expect("explain analyze");
    let state = encode_wsd(s.wsd());
    drop(s);
    let wal = std::fs::read(wal_path_for(&path)).expect("read WAL");
    wipe(&path);
    (answers, state, wal)
}

#[test]
fn observability_never_changes_results_or_wal_bytes() {
    let _guard = obs_lock();
    let (answers, state, wal) = run_workload("ref", 1);
    assert!(!answers.is_empty() && !wal.is_empty());
    for enabled in [true, false] {
        maybms_obs::set_enabled(enabled);
        for workers in [1usize, 2, 4] {
            let (a, s, w) = run_workload("probe", workers);
            assert_eq!(a, answers, "answers diverged (obs={enabled}, workers={workers})");
            assert_eq!(s, state, "decomposition diverged (obs={enabled}, workers={workers})");
            assert_eq!(w, wal, "WAL bytes diverged (obs={enabled}, workers={workers})");
        }
    }
    maybms_obs::set_enabled(true);
}

/// Counters for the deterministic families — per-operator row counts
/// and normalization work — keyed by metric name.
fn deterministic_totals() -> BTreeMap<String, u64> {
    maybms_obs::global()
        .snapshot()
        .into_iter()
        .filter_map(|(name, v)| {
            let deterministic = name.starts_with("exec.rows.") || name.starts_with("normalize.");
            match v {
                MetricValue::Counter(n) if deterministic => Some((name, n)),
                _ => None,
            }
        })
        .collect()
}

#[test]
fn deterministic_counters_agree_across_worker_counts() {
    let _guard = obs_lock();
    maybms_obs::set_enabled(true);
    let mut reference: Option<BTreeMap<String, u64>> = None;
    for workers in [1usize, 2, 4] {
        let before = deterministic_totals();
        let (_, _, _) = run_workload("counters", workers);
        let after = deterministic_totals();
        let delta: BTreeMap<String, u64> = after
            .into_iter()
            .map(|(k, v)| {
                let base = before.get(&k).copied().unwrap_or(0);
                (k, v - base)
            })
            .collect();
        assert!(
            delta.values().any(|&v| v > 0),
            "workload must move the exec.rows.*/normalize.* counters"
        );
        match &reference {
            None => reference = Some(delta),
            Some(exp) => {
                assert_eq!(&delta, exp, "counter totals diverged at {workers} workers")
            }
        }
    }
}

#[test]
fn show_statements_report_live_observability_data() {
    let _guard = obs_lock();
    maybms_obs::set_enabled(true);
    let mut s = Session::new();
    s.set_slow_query_threshold(Some(Duration::ZERO));
    s.execute_script(WORKLOAD).expect("workload");
    for q in QUERIES {
        s.execute(q).expect("query");
    }

    // SHOW METRICS: live counters as ordinary rows, LIKE narrows them.
    let all = s.execute("SHOW METRICS").expect("show metrics");
    let all = all.table().expect("table");
    assert!(all.len() > 10, "registry should hold many metrics by now");
    let execs = s.execute("SHOW METRICS LIKE 'exec.rows.%'").expect("show metrics like");
    let execs = execs.table().expect("table");
    assert!(!execs.is_empty() && execs.len() < all.len());
    for row in execs.rows() {
        assert!(format!("{:?}", row[0]).contains("exec.rows."));
    }

    // SHOW SLOW QUERIES: threshold zero logs everything, newest last.
    let slow = s.execute("SHOW SLOW QUERIES").expect("show slow queries");
    let slow = slow.table().expect("table");
    assert!(!slow.is_empty());
    let phases = format!("{:?}", slow.rows().last().unwrap());
    for phase in ["parse", "total"] {
        assert!(phases.contains(phase), "slow-log phases missing {phase}: {phases}");
    }

    // SHOW REPLICATION STATUS: an in-memory session is a standalone.
    let status = s.execute("SHOW REPLICATION STATUS").expect("replication status");
    let status = status.table().expect("table");
    assert_eq!(status.len(), 1);
    assert!(format!("{:?}", status.rows()[0]).contains("standalone"));
}

#[test]
fn explain_analyze_reports_per_node_timings() {
    let _guard = obs_lock();
    maybms_obs::set_enabled(true);
    let mut s = Session::new();
    s.execute_script(WORKLOAD).expect("workload");
    let r = s.execute(&format!("EXPLAIN ANALYZE {}", QUERIES[2])).expect("explain analyze");
    let text = r.ack();
    assert!(text.contains("actual rows="), "missing actuals:\n{text}");
    assert!(text.contains("time="), "missing per-node timings:\n{text}");
    assert!(text.contains("-- timing"), "missing phase footer:\n{text}");
    // plain EXPLAIN stays estimate-only
    let r = s.execute(&format!("EXPLAIN {}", QUERIES[2])).expect("explain");
    let text = r.ack();
    assert!(!text.is_empty(), "EXPLAIN must produce a plan");
    assert!(!text.contains("actual rows="), "plain EXPLAIN must not execute:\n{text}");
}
