//! The group-commit contract, measured from outside:
//!
//! * fsyncs grow **strictly slower** than committed groups — concurrent
//!   commits share one WAL batch append and one `sync_data`;
//! * a scripted fsync failure mid-batch poisons the database and NACKs
//!   **every** waiter in the batch (the shared fsync vouched for
//!   nobody), and later commits are refused at the gate;
//! * the in-process commit-notify path: a WAL-shipping primary serving
//!   the same database never rides the fallback poll — commits reach a
//!   replica through `wal::commit_notify` wake-ups, and the
//!   `wal.notify_fallback_polls` counter stays at zero even when the
//!   serve loop's poll interval is far beyond the test deadline.

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use maybms_core::codec::encode_wsd;
use maybms_obs::MetricValue;
use maybms_sql::replication::{follow, Primary, Replica};
use maybms_sql::{parse, GroupCommitConfig, GroupCommitter, Session};
use maybms_storage::{FaultSpec, FaultVfs, Vfs};

fn stmts(sql: &str) -> Vec<maybms_sql::Statement> {
    sql.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).expect("parse"))
        .collect()
}

fn counter(name: &str) -> u64 {
    maybms_obs::global()
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(c),
            _ => None,
        })
        .unwrap_or(0)
}

fn temp_db(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir()
        .join(format!("maybms-{name}-{}.maybms", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(maybms_storage::wal_path_for(&path));
    let _ = std::fs::remove_file(maybms_storage::delta_path_for(&path));
    path
}

fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(maybms_storage::wal_path_for(path));
    let _ = std::fs::remove_file(maybms_storage::delta_path_for(path));
}

/// 8 barrier-aligned writers per round: the first submission opens the
/// group window and the other 7 ride its fsync. Strictly fewer fsyncs
/// than committed groups, and every ack carries a distinct LSN.
#[test]
fn fsyncs_grow_strictly_slower_than_commits() {
    let path = temp_db("gc-amortize");
    let mut session = Session::open(&path).expect("open");
    session.execute("CREATE TABLE t (w INT, r INT)").expect("create");
    let syncs_before = session.wal_sync_count().expect("durable");

    let committer = Arc::new(GroupCommitter::spawn_with(
        session,
        GroupCommitConfig {
            group_window: Duration::from_millis(100),
            ..GroupCommitConfig::default()
        },
    ));
    let writers = 8usize;
    let rounds = 5usize;
    let mut lsns: Vec<u64> = Vec::new();
    for round in 0..rounds {
        let barrier = Arc::new(Barrier::new(writers));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let committer = Arc::clone(&committer);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    committer
                        .commit(stmts(&format!("INSERT INTO t VALUES ({w}, {round})")))
                        .expect("commit")
                        .lsn
                })
            })
            .collect();
        lsns.extend(handles.into_iter().map(|h| h.join().expect("writer")));
    }

    let commits = (writers * rounds) as u64;
    lsns.sort_unstable();
    let mut dedup = lsns.clone();
    dedup.dedup();
    assert_eq!(lsns.len() as u64, commits);
    assert_eq!(lsns, dedup, "two commit groups were acked with the same LSN");

    let committer = Arc::into_inner(committer).expect("all writers joined");
    let session = committer.shutdown();
    let fsyncs = session.wal_sync_count().expect("durable") - syncs_before;
    assert!(
        fsyncs < commits,
        "no amortization: {commits} commits needed {fsyncs} fsyncs"
    );
    // the headline number: under ≥4 concurrent writers, well below 1
    let per_commit = fsyncs as f64 / commits as f64;
    assert!(
        per_commit < 1.0,
        "fsyncs per commit is {per_commit:.2}, expected < 1 under {writers} writers"
    );
    let rows = {
        let mut s = session;
        s.execute("SELECT CERTAIN w, r FROM t").expect("read").rows().len()
    };
    assert_eq!(rows as u64, commits, "every acked commit is in the final state");
    cleanup(&path);
}

/// Scripted fsync failure on the batch append: the database is
/// poisoned, **all** waiters in the batch are NACKed (none of their
/// groups got a durable fsync), the published snapshot rolls back to
/// the pre-batch state, and later commits are refused at the gate.
#[test]
fn fsync_failure_mid_batch_poisons_and_nacks_every_waiter() {
    const DB: &str = "/gc/db.maybms";
    let writers = 6usize;
    for nth in 1..=30u64 {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::fail_sync(nth)]);
        let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
        let Ok(mut session) = Session::open_with_vfs(DB, Arc::clone(&arc)) else {
            continue; // the fault hit open/recovery — not the case under test
        };
        if session.execute("CREATE TABLE t (x INT)").is_err() {
            continue; // the fault hit the setup append
        }
        let committer = Arc::new(GroupCommitter::spawn_with(
            session,
            GroupCommitConfig {
                group_window: Duration::from_millis(200),
                ..GroupCommitConfig::default()
            },
        ));
        let before = committer.snapshot();
        let barrier = Arc::new(Barrier::new(writers));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let committer = Arc::clone(&committer);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    committer.commit(stmts(&format!("INSERT INTO t VALUES ({w})")))
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("writer")).collect();
        let failed = results.iter().filter(|r| r.is_err()).count();
        if failed == 0 {
            drop(results);
            let committer = Arc::into_inner(committer).expect("writers joined");
            drop(committer.shutdown());
            continue; // the fault never reached the batch append
        }

        // the fault hit the shared fsync: the ack discipline inverts —
        // nobody in the batch may be acked
        assert_eq!(
            failed, writers,
            "nth={nth}: only {failed}/{writers} waiters NACKed; the shared fsync \
             vouched for nobody, so all must fail"
        );
        for r in &results {
            let msg = r.as_ref().expect_err("checked above").to_string();
            assert!(
                msg.contains("poisoned"),
                "nth={nth}: NACK message does not name the poison: {msg}"
            );
        }
        // the published snapshot rolled back to the pre-batch state
        assert_eq!(
            encode_wsd(committer.snapshot().wsd()),
            encode_wsd(before.wsd()),
            "nth={nth}: a NACKed batch leaked into the published snapshot"
        );
        // later commits are refused at the gate, before executing
        let late = committer.commit(stmts("INSERT INTO t VALUES (99)"));
        let late_msg = late.expect_err("poisoned database accepted a commit").to_string();
        assert!(late_msg.contains("poisoned"), "gate refusal does not name the poison: {late_msg}");

        let committer = Arc::into_inner(committer).expect("writers joined");
        let session = committer.shutdown();
        assert!(session.is_poisoned(), "nth={nth}: session not poisoned after failed batch");
        return;
    }
    panic!("no fault schedule hit the batch append in 30 probes");
}

/// Regression for the cross-process notify gap: an in-process primary
/// serving the same database a [`GroupCommitter`] writes must be woken
/// by `wal::commit_notify` — never by its fallback poll. The serve
/// loop's poll intervals are set far beyond the test deadline, so a
/// replica only catches up in time if the notify path works; and the
/// `wal.notify_fallback_polls` counter must not move.
#[test]
fn in_process_commit_notify_never_rides_the_fallback_poll() {
    let path = temp_db("gc-notify");
    let mut session = Session::open(&path).expect("open");
    session.execute("CREATE TABLE n (x INT)").expect("create");
    let polls_before = counter("wal.notify_fallback_polls");

    let committer = GroupCommitter::spawn(session);
    // poll intervals far beyond the per-commit deadline: if a commit
    // reaches the replica, it got there via a notify wake-up
    let primary = Primary::new(&path)
        .with_poll_interval(Duration::from_secs(300))
        .with_max_poll_interval(Duration::from_secs(300))
        .with_heartbeat_interval(Duration::from_secs(300));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accept = primary.listen(listener).expect("listen");

    let replica = Arc::new(Mutex::new(Replica::new()));
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let follower = {
        let replica = Arc::clone(&replica);
        std::thread::spawn(move || {
            let _ = follow(&replica, stream);
        })
    };

    for i in 0..5 {
        let ack = committer
            .commit(stmts(&format!("INSERT INTO n VALUES ({i})")))
            .expect("commit");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let applied = replica.lock().expect("replica lock").applied_lsn();
            if applied >= ack.lsn {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "commit {i} (lsn {}) not applied in 10s with a 300s poll interval: \
                 the in-process notify wake-up is broken",
                ack.lsn
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    assert_eq!(
        counter("wal.notify_fallback_polls") - polls_before,
        0,
        "an in-process primary fell back to polling despite commit_notify"
    );

    primary.stop();
    let _ = accept.join();
    let _ = follower.join();
    drop(committer.shutdown());
    cleanup(&path);
}
