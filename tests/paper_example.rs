//! E5: integration test pinning every number printed in the paper's §2
//! walkthrough, end to end across the crates.

use maybms::prelude::*;
use maybms_core::algebra::Query;
use maybms_core::examples::medical_wsd;
use maybms_core::prob;

#[test]
fn the_wsd_represents_four_worlds_as_a_product_of_five_components() {
    let wsd = medical_wsd();
    wsd.validate().unwrap();
    assert_eq!(wsd.num_components(), 5);
    assert_eq!(wsd.world_count().to_u64(), Some(4));
}

#[test]
fn world_probability_is_the_product_of_component_rows() {
    // "The patient record described above represents a world with
    // probability 0.6 · 0.7 · 1 · 1 · 1 = 0.42."
    let worlds = medical_wsd().to_worldset(10).unwrap();
    worlds.validate().unwrap();
    let w = worlds
        .worlds()
        .iter()
        .find(|(w, _)| {
            w.get("R").unwrap().iter().any(|t| {
                t[0] == Value::str("hypothyroidism")
                    && t[1] == Value::str("TSH")
                    && t[2] == Value::str("weight gain")
            })
        })
        .expect("the paper's record must be a world");
    assert!((w.1 - 0.42).abs() < 1e-12);
}

#[test]
fn the_papers_selection_produces_three_worlds_before_projection() {
    // "This answer represents three worlds" — two pregnancy worlds
    // (differing in symptom) and the empty world.
    let wsd = medical_wsd();
    let q = Query::table("R").select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")));
    let ans = q.eval(&wsd).unwrap();
    let merged = ans.to_worldset(1000).unwrap().merged();
    assert_eq!(merged.len(), 3);
}

#[test]
fn after_projection_two_worlds_remain_with_the_papers_wsd_shape() {
    // "After the projection, we obtain the WSD with two worlds":
    //   r1.Test | p      = (ultrasound, 0.4), (⊥, 0.6)
    let wsd = medical_wsd();
    let q = Query::table("R")
        .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
        .project(["test"]);
    let ans = q.eval(&wsd).unwrap();
    let stats = ans.stats();
    assert_eq!(stats.components, 1, "a single 2-row component as printed");
    assert_eq!(stats.max_component_rows, 2);
    let merged = ans.to_worldset(1000).unwrap().merged();
    assert_eq!(merged.len(), 2, "the ultrasound world and the empty world");
}

#[test]
fn prob_construct_returns_the_papers_number() {
    // "the ultrasound test is recommended in pregnancy diagnosis with
    // probability 0.4"
    let wsd = medical_wsd();
    let q = Query::table("R")
        .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
        .project(["test"]);
    let ans = q.eval(&wsd).unwrap();
    let conf = prob::tuple_confidence(&ans, "result").unwrap();
    assert_eq!(conf.len(), 1);
    assert_eq!(conf[0].0[0], Value::str("ultrasound"));
    assert!((conf[0].1 - 0.4).abs() < 1e-12);
}

#[test]
fn the_same_numbers_come_out_of_sql() {
    let mut s = maybms_sql::Session::with_wsd(medical_wsd());
    let r = s
        .execute("SELECT test, PROB() FROM R WHERE Diagnosis = 'pregnancy'")
        .unwrap_or_else(|_| {
            // column names are case-sensitive in our dialect; the paper
            // spells it capitalized in prose, lowercase in the schema
            let mut s2 = maybms_sql::Session::with_wsd(medical_wsd());
            s2.execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'")
                .expect("sql query")
        });
    let t = r.table().expect("prob table");
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows()[0][0], Value::str("ultrasound"));
    assert!((t.rows()[0][1].as_f64().unwrap() - 0.4).abs() < 1e-9);
}

#[test]
fn query_on_wsd_equals_query_in_every_world() {
    // The semantics sentence of the paper, verified literally.
    let wsd = medical_wsd();
    let q = Query::table("R")
        .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
        .project(["test"]);
    let on_wsd = q.eval(&wsd).unwrap().to_worldset(1000).unwrap();
    let per_world = maybms_worldset::eval::eval_in_all_worlds(
        &wsd.to_worldset(1000).unwrap(),
        &q.to_world_query(),
    )
    .unwrap();
    assert!(on_wsd.equivalent(&per_world, 1e-9));
}
