//! End-to-end SQL scenarios across the full stack: DDL, or-set DML,
//! world-set queries, probability constructs, repairs and EXPLAIN.

use maybms_relational::Value;
use maybms_sql::{QueryResult, Session};

fn table_len(r: &QueryResult) -> usize {
    r.table().expect("table result").len()
}

#[test]
fn hospital_scenario() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE patients (pid INT, name TEXT, diagnosis TEXT); \
         CREATE TABLE treats (diagnosis TEXT, drug TEXT, cost INT); \
         INSERT INTO patients VALUES \
           (1, 'ann', {'flu': 0.3, 'cold': 0.7}), \
           (2, 'bob', 'flu'), \
           (3, 'cyd', {'flu', 'angina'}); \
         INSERT INTO treats VALUES \
           ('flu', 'oseltamivir', 30), ('cold', 'rest', 0), ('angina', 'nitro', 55)",
    )
    .unwrap();

    // 4 worlds: ann × cyd choices
    assert_eq!(s.wsd().world_count().to_u64(), Some(4));

    // possible flu patients: everyone
    let r = s
        .execute("SELECT POSSIBLE name FROM patients WHERE diagnosis = 'flu'")
        .unwrap();
    assert_eq!(table_len(&r), 3);

    // certain flu patients: only bob
    let r = s
        .execute("SELECT CERTAIN name FROM patients WHERE diagnosis = 'flu'")
        .unwrap();
    assert_eq!(table_len(&r), 1);
    assert_eq!(r.table().unwrap().rows()[0][0], Value::str("bob"));

    // P(ann has flu) = 0.3
    let r = s
        .execute("SELECT name, PROB() FROM patients WHERE diagnosis = 'flu' AND name = 'ann'")
        .unwrap();
    let t = r.table().unwrap();
    assert_eq!(t.len(), 1);
    assert!((t.rows()[0][1].as_f64().unwrap() - 0.3).abs() < 1e-9);

    // join with the treatments: P(cyd, nitro) = 0.5 (uniform or-set)
    let r = s
        .execute(
            "SELECT p.name, t.drug, PROB() FROM patients p, treats t \
             WHERE p.diagnosis = t.diagnosis AND p.name = 'cyd'",
        )
        .unwrap();
    let t = r.table().unwrap();
    assert_eq!(t.len(), 2);
    let nitro = t
        .rows()
        .iter()
        .find(|row| row[1] == Value::str("nitro"))
        .unwrap();
    assert!((nitro[2].as_f64().unwrap() - 0.5).abs() < 1e-9);

    // repair: cyd cannot have angina → her diagnosis becomes certain flu
    s.execute("REPAIR CHECK patients: name <> 'cyd' OR diagnosis <> 'angina'")
        .unwrap();
    let r = s
        .execute("SELECT CERTAIN name FROM patients WHERE diagnosis = 'flu'")
        .unwrap();
    assert_eq!(table_len(&r), 2);
    assert_eq!(s.wsd().world_count().to_u64(), Some(2));
}

/// DELETE/UPDATE and transactions end to end: the hospital scenario
/// continued through the new DML surface with world-set semantics.
#[test]
fn dml_and_transactions_scenario() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE patients (pid INT, name TEXT, diagnosis TEXT); \
         INSERT INTO patients VALUES \
           (1, 'ann', {'flu': 0.3, 'cold': 0.7}), \
           (2, 'bob', 'flu'), \
           (3, 'cyd', {'flu', 'angina'})",
    )
    .unwrap();

    // conditional UPDATE: only the flu-worlds of ann change
    s.execute("UPDATE patients SET diagnosis = 'recovered' WHERE name = 'ann' AND diagnosis = 'flu'")
        .unwrap();
    let r = s
        .execute("SELECT name, PROB() FROM patients WHERE diagnosis = 'recovered'")
        .unwrap();
    assert!((r.rows()[0][1].as_f64().unwrap() - 0.3).abs() < 1e-9);

    // a transaction that is rolled back leaves no trace
    s.execute_script("BEGIN; DELETE FROM patients; ROLLBACK").unwrap();
    assert_eq!(table_len(&s.execute("SELECT POSSIBLE name FROM patients").unwrap()), 3);

    // a committed transaction applies atomically; prepared statements
    // bind inside it
    let del = s.prepare("DELETE FROM patients WHERE pid = ?").unwrap();
    {
        let mut txn = s.transaction().unwrap();
        txn.execute_prepared(&del, &[Value::Int(2)]).unwrap();
        txn.execute("UPDATE patients SET name = 'cydney' WHERE pid = 3").unwrap();
        txn.commit().unwrap();
    }
    let r = s.execute("SELECT POSSIBLE name FROM patients").unwrap();
    assert_eq!(table_len(&r), 2);
    assert!(r.rows().iter().all(|t| t[0] != Value::str("bob")));

    // conditional DELETE keeps world probabilities: cyd exists only in
    // her non-angina worlds afterwards, at confidence 0.5
    s.execute("DELETE FROM patients WHERE diagnosis = 'angina'").unwrap();
    let r = s
        .execute("SELECT name, PROB() FROM patients WHERE name = 'cydney'")
        .unwrap();
    assert!((r.rows()[0][1].as_f64().unwrap() - 0.5).abs() < 1e-9);
}

#[test]
fn union_except_and_worldset_results() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE r (a INT); \
         INSERT INTO r VALUES ({1: 0.5, 2: 0.5}), (3)",
    )
    .unwrap();

    // plain select returns a world-set
    let r = s.execute("SELECT a FROM r WHERE a >= 2").unwrap();
    let wsd = r.world_set().expect("world-set result");
    let ws = wsd.to_worldset(100).unwrap();
    assert_eq!(ws.merged().len(), 2); // {3} and {2,3}

    // union / except
    let r = s
        .execute("SELECT POSSIBLE a FROM r WHERE a = 1 UNION SELECT a FROM r WHERE a = 3")
        .unwrap();
    assert_eq!(table_len(&r), 2);
    let r = s
        .execute("SELECT CERTAIN a FROM r EXCEPT SELECT a FROM r WHERE a < 3")
        .unwrap();
    assert_eq!(table_len(&r), 1);
}

#[test]
fn explain_and_optimizer_equivalence_over_sql() {
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE l (k INT, v TEXT); CREATE TABLE m (k INT, w TEXT); \
         INSERT INTO l VALUES (1, 'a'), ({1: 0.5, 2: 0.5}, 'b'); \
         INSERT INTO m VALUES (1, 'x'), (2, 'y')",
    )
    .unwrap();
    let sql =
        "SELECT POSSIBLE l.v, m.w, PROB() FROM l AS l, m AS m WHERE l.k = m.k AND m.w = 'x'";
    let optimized = s.execute(sql).unwrap();
    let QueryResult::Text(plan) = s.execute(&format!("EXPLAIN {sql}")).unwrap() else {
        panic!()
    };
    assert!(plan.contains("Join on"), "{plan}");
    s.optimize_plans = false;
    let unoptimized = s.execute(sql).unwrap();
    assert_eq!(
        optimized.table().unwrap().canonical(),
        unoptimized.table().unwrap().canonical()
    );
}

#[test]
fn probabilities_sum_to_one_per_possible_key() {
    // For a single tuple with a weighted or-set, the confidences over its
    // alternatives must sum to 1.
    let mut s = Session::new();
    s.execute_script(
        "CREATE TABLE t (x TEXT); INSERT INTO t VALUES ({'p': 0.2, 'q': 0.3, 'r': 0.5})",
    )
    .unwrap();
    let r = s.execute("SELECT POSSIBLE x, PROB() FROM t").unwrap();
    let total: f64 = r
        .table()
        .unwrap()
        .iter()
        .map(|row| row[1].as_f64().unwrap())
        .sum();
    assert!((total - 1.0).abs() < 1e-9);
}
