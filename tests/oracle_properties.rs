//! Property tests: the WSD layer must commute with world enumeration on
//! randomized inputs. These are the core soundness guarantees of the
//! reproduction (DESIGN.md §7).

use proptest::prelude::*;

use maybms_core::algebra::{extract, join_op, join_op_nested, Query};
use maybms_core::chase::{clean, Constraint};
use maybms_core::codec::{decode_wsd, encode_wsd};
use maybms_core::convert::from_worldset;
use maybms_core::exec::{compile, Executor, WorkerPool};
use maybms_core::normalize::{normalize, normalize_from_scratch, normalize_full};
use maybms_core::prob;
use maybms_core::wsd::Wsd;
use maybms_relational::{ColumnType, Expr, Schema, Value};
use maybms_worldset::eval::eval_in_all_worlds;
use maybms_worldset::OrSetCell;

/// A strategy for small random or-set WSDs over schema r(a int, b int).
fn arb_wsd() -> impl Strategy<Value = Wsd> {
    // per tuple: (a-alternatives, b-alternatives); alternative values 0..4
    let cell = prop::collection::btree_set(0i64..4, 1..3);
    let tuple = (cell.clone(), cell);
    prop::collection::vec(tuple, 1..4).prop_map(|tuples| {
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .expect("fresh");
        for (a, b) in tuples {
            let mk = |s: std::collections::BTreeSet<i64>| {
                OrSetCell::uniform(s.into_iter().map(Value::Int).collect()).expect("non-empty")
            };
            w.push_orset("r", vec![mk(a), mk(b)]).expect("typed");
        }
        w
    })
}

/// A strategy for random SQL mutation statements over tables r/s with
/// schema (a INT, b INT). Sequences start from `CREATE TABLE r`;
/// statements that happen to be invalid at their position (insert after
/// drop, rename onto an existing name, unsatisfiable repair) are filtered
/// by a dry run at use site.
fn arb_mutation() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..5, 0i64..5)
            .prop_map(|(a, b)| format!("INSERT INTO r VALUES ({a}, {b})")),
        (0i64..5, 0i64..5)
            .prop_map(|(a, b)| format!("INSERT INTO r VALUES ({{{a}, {}}}, {b})", a + 1)),
        (0i64..5, 0i64..5).prop_map(|(a, b)| {
            format!(
                "INSERT INTO r VALUES ({a}, {{{b}: 0.25, {}: 0.75}}), ({}, {b})",
                b + 1,
                a + 2
            )
        }),
        Just("REPAIR KEY r(a)".to_string()),
        (0i64..6).prop_map(|k| format!("REPAIR CHECK r: a <= {k}")),
        Just("REPAIR FD r: a -> b".to_string()),
        (0i64..5).prop_map(|k| format!("DELETE FROM r WHERE a = {k}")),
        (0i64..5).prop_map(|k| format!("DELETE FROM r WHERE b > {k}")),
        (0i64..5, 0i64..5).prop_map(|(k, v)| format!("UPDATE r SET b = {v} WHERE a = {k}")),
        (0i64..5, 0i64..5)
            .prop_map(|(k, v)| format!("UPDATE r SET a = {v}, b = {v} WHERE b < {k}")),
        Just("ALTER TABLE r RENAME TO s".to_string()),
        Just("ALTER TABLE s RENAME TO r".to_string()),
        Just("DROP TABLE r".to_string()),
        Just("CREATE TABLE r (a INT, b INT)".to_string()),
    ]
}

/// One step of a random transactional script: a mutation statement or a
/// transaction-control statement.
#[derive(Debug, Clone)]
enum TxnOp {
    Stmt(String),
    Begin,
    Commit,
    Rollback,
}

/// Mutations dominate; control ops appear often enough to nest scripts
/// inside transactions (invalid control at a position is skipped at use
/// site, mirroring on both sessions).
fn arb_txn_op() -> impl Strategy<Value = TxnOp> {
    prop_oneof![
        arb_mutation().prop_map(TxnOp::Stmt),
        arb_mutation().prop_map(TxnOp::Stmt),
        arb_mutation().prop_map(TxnOp::Stmt),
        Just(TxnOp::Begin),
        Just(TxnOp::Commit),
        Just(TxnOp::Rollback),
    ]
}

/// A strategy for random algebra queries over r.
fn arb_query() -> impl Strategy<Value = Query> {
    let leaf = Just(Query::table("r"));
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), 0i64..4).prop_map(|(q, v)| q.select(Expr::col("a").eq(Expr::lit(v)))),
            (inner.clone(), 0i64..4).prop_map(|(q, v)| q.select(Expr::col("b").gt(Expr::lit(v)))),
            (inner.clone(), 0i64..4).prop_map(|(q, v)| q.select(
                Expr::col("a").eq(Expr::lit(v)).and(Expr::col("b").ne(Expr::lit(v)))
            )),
            inner.clone().prop_map(|q| q.project(["a"])),
            inner.clone().prop_map(|q| q.project(["b", "a"])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                a.qualify("x")
                    .join(b.qualify("y"), Expr::col("x.a").eq(Expr::col("y.b")))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// worlds(Q(wsd)) == { Q(w) | w ∈ worlds(wsd) }, with probabilities.
    /// The random query generator can produce ill-typed queries (e.g. a
    /// selection on a projected-away column); both engines must then agree
    /// on rejecting them.
    #[test]
    fn queries_commute_with_world_enumeration(wsd in arb_wsd(), q in arb_query()) {
        let worlds = wsd.to_worldset(1 << 16).expect("enumerate input");
        let rhs = eval_in_all_worlds(&worlds, &q.to_world_query());
        match q.eval(&wsd) {
            Ok(on_wsd) => {
                on_wsd.validate().expect("valid result");
                let lhs = on_wsd.to_worldset(1 << 16).expect("enumerate result");
                let rhs = rhs.expect("oracle must accept what the WSD engine accepts");
                prop_assert!(lhs.equivalent(&rhs, 1e-9));
            }
            Err(_) => prop_assert!(rhs.is_err(), "WSD engine rejected a query the oracle accepts"),
        }
    }

    /// Normalization (with factorization) never changes the world-set.
    #[test]
    fn normalization_preserves_semantics(wsd in arb_wsd()) {
        let before = wsd.to_worldset(1 << 16).expect("enumerate");
        let mut n = wsd.clone();
        normalize(&mut n);
        n.validate().expect("valid");
        prop_assert!(before.equivalent(&n.to_worldset(1 << 16).expect("enumerate"), 1e-9));
        let mut f = wsd.clone();
        normalize_full(&mut f);
        f.validate().expect("valid");
        prop_assert!(before.equivalent(&f.to_worldset(1 << 16).expect("enumerate"), 1e-9));
    }

    /// Exact decomposition round-trips: worlds(from_worldset(W)) == W.
    #[test]
    fn decomposition_round_trip(wsd in arb_wsd()) {
        let ws = wsd.to_worldset(1 << 16).expect("enumerate");
        let rebuilt = from_worldset(&ws).expect("decompose");
        rebuilt.validate().expect("valid");
        let back = rebuilt.to_worldset(1 << 16).expect("enumerate rebuilt");
        prop_assert!(ws.equivalent(&back, 1e-9));
    }

    /// Confidence computed on the decomposition equals brute force.
    #[test]
    fn confidence_matches_brute_force(wsd in arb_wsd()) {
        let fast = prob::tuple_confidence(&wsd, "r").expect("confidence");
        let slow = wsd.to_worldset(1 << 16).expect("enumerate").tuple_confidence("r");
        prop_assert_eq!(fast.len(), slow.len());
        for ((t1, p1), (t2, p2)) in fast.iter().zip(&slow) {
            prop_assert_eq!(t1, t2);
            prop_assert!((p1 - p2).abs() < 1e-9);
        }
    }

    /// Chase-based cleaning equals world-level filtering + renormalization.
    #[test]
    fn cleaning_matches_world_filtering(wsd in arb_wsd(), key_b in any::<bool>()) {
        let constraints = if key_b {
            vec![Constraint::fd("r", &["a"], &["b"])]
        } else {
            vec![Constraint::tuple_check(
                "r",
                Expr::col("a").le(Expr::lit(2i64)),
            )]
        };
        let before = wsd.to_worldset(1 << 16).expect("enumerate");
        let consistent = before.filter(|w| {
            for c in &constraints {
                if !c.holds_in(w)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }).expect("filter");

        let mut cleaned = wsd.clone();
        match clean(&mut cleaned, &constraints) {
            Ok(_) => {
                cleaned.validate().expect("valid");
                let lhs = cleaned.to_worldset(1 << 16).expect("enumerate cleaned");
                prop_assert!(lhs.equivalent(&consistent, 1e-9));
            }
            Err(_) => {
                // cleaning may only fail when no world is consistent
                prop_assert!(consistent.is_empty());
            }
        }
    }

    /// Expected aggregates on the decomposition equal brute force.
    #[test]
    fn expected_aggregates_match_brute_force(wsd in arb_wsd()) {
        let ws = wsd.to_worldset(1 << 16).expect("enumerate");
        let ec = prob::expected_count(&wsd, "r").expect("ecount");
        prop_assert!((ec - ws.expected_count("r")).abs() < 1e-9);
        let es = prob::expected_sum(&wsd, "r", "a").expect("esum");
        prop_assert!((es - ws.expected_sum("r", 0)).abs() < 1e-9);
    }

    /// World counts: the decomposition's combinatorial count matches the
    /// number of enumerated worlds.
    #[test]
    fn world_count_matches_enumeration(wsd in arb_wsd()) {
        let count = wsd.world_count().to_u64().expect("small");
        let ws = wsd.to_worldset(1 << 16).expect("enumerate");
        prop_assert_eq!(count as usize, ws.len());
    }

    /// The hash-partitioned equi-join is world-equivalent to the
    /// nested-loop reference on randomized inputs, for pure equality and
    /// for mixed equality+residual predicates (including self-joins, where
    /// correlations must be preserved identically by both paths).
    #[test]
    fn hash_join_equals_nested_loop(wsd in arb_wsd(), residual in any::<bool>(), v in 0i64..4) {
        // self-join r ⋈ r on x.a = y.b (optionally plus a residual conjunct)
        let mut base = wsd.clone();
        let lhs_name = "xq";
        let rhs_name = "yq";
        maybms_core::algebra::qualify_op(&mut base, "r", "x", lhs_name).expect("qualify x");
        maybms_core::algebra::qualify_op(&mut base, "r", "y", rhs_name).expect("qualify y");
        let pred = if residual {
            Expr::col("x.a").eq(Expr::col("y.b")).and(Expr::col("x.b").ne(Expr::lit(v)))
        } else {
            Expr::col("x.a").eq(Expr::col("y.b"))
        };

        let mut hashed = base.clone();
        join_op(&mut hashed, lhs_name, rhs_name, &pred, "out").expect("hash join");
        let hashed = extract(hashed, "out", "result").expect("extract");
        hashed.validate().expect("valid hash result");

        let mut nested = base.clone();
        join_op_nested(&mut nested, lhs_name, rhs_name, &pred, "out").expect("nested join");
        let nested = extract(nested, "out", "result").expect("extract");
        nested.validate().expect("valid nested result");

        let a = hashed.to_worldset(1 << 16).expect("enumerate hash");
        let b = nested.to_worldset(1 << 16).expect("enumerate nested");
        prop_assert!(a.equivalent(&b, 1e-9), "hash join diverged from nested loop");
    }

    /// The physical executor is world-equivalent to the logical
    /// interpreter on random WSDs and queries, for every worker count
    /// (1 = inline, 2 and 4 = threaded): compile the raw logical tree to
    /// a physical plan, run it on a pool of each size, and compare the
    /// answer world-sets. Queries the interpreter rejects must also be
    /// rejected by the physical path (at plan or execution time).
    #[test]
    fn physical_executor_matches_logical_interpreter(wsd in arb_wsd(), q in arb_query()) {
        let logical = q.eval(&wsd);
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let physical = compile(&q, &wsd)
                .and_then(|plan| Executor::new(&pool).run(&plan, &wsd));
            match (&logical, physical) {
                (Ok(l), Ok(p)) => {
                    p.validate().expect("valid physical result");
                    let lw = l.to_worldset(1 << 16).expect("enumerate logical");
                    let pw = p.to_worldset(1 << 16).expect("enumerate physical");
                    prop_assert!(
                        lw.equivalent(&pw, 1e-9),
                        "physical diverged from logical at {workers} workers"
                    );
                }
                (Err(_), Err(_)) => {} // both reject: agreement
                (Ok(_), Err(e)) => {
                    return Err(TestCaseError(format!(
                        "physical path rejected a query the interpreter accepts: {e}"
                    )))
                }
                (Err(e), Ok(_)) => {
                    return Err(TestCaseError(format!(
                        "physical path accepted a query the interpreter rejects: {e}"
                    )))
                }
            }
        }
    }

    /// The cost-based optimizer (join reorder + predicate sinking, fed by
    /// a [`maybms_core::stats::WsdStats`] collector) composed with the
    /// vectorized physical executor is world-equivalent to the logical
    /// interpreter running the *raw* query, at worker counts 1/2/4: plan
    /// choice and batch execution may change the evaluation order but
    /// never the answer world-set. Queries the interpreter rejects must
    /// be rejected by the optimized path too.
    #[test]
    fn optimized_physical_matches_logical_interpreter(wsd in arb_wsd(), q in arb_query()) {
        use maybms_sql::optimizer::optimize_with_stats;
        let logical = q.eval(&wsd);
        let mut stats = maybms_core::stats::WsdStats::new();
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers);
            let physical = optimize_with_stats(&q, &wsd, &mut stats)
                .and_then(|opt| compile(&opt, &wsd))
                .and_then(|plan| Executor::new(&pool).run(&plan, &wsd));
            match (&logical, physical) {
                (Ok(l), Ok(p)) => {
                    p.validate().expect("valid optimized result");
                    let lw = l.to_worldset(1 << 16).expect("enumerate logical");
                    let pw = p.to_worldset(1 << 16).expect("enumerate optimized");
                    prop_assert!(
                        lw.equivalent(&pw, 1e-9),
                        "optimized plan diverged from logical at {workers} workers"
                    );
                }
                (Err(_), Err(_)) => {} // both reject: agreement
                (Ok(_), Err(e)) => {
                    return Err(TestCaseError(format!(
                        "optimized path rejected a query the interpreter accepts: {e}"
                    )))
                }
                (Err(e), Ok(_)) => {
                    return Err(TestCaseError(format!(
                        "optimized path accepted a query the interpreter rejects: {e}"
                    )))
                }
            }
        }
    }

    /// Incremental (dirty-set) normalization is world-equivalent to the
    /// full-pass reference after arbitrary queries: `Query::eval` runs the
    /// incremental path internally; re-normalizing its result from scratch
    /// must change nothing.
    #[test]
    fn incremental_normalize_equals_full_pass(wsd in arb_wsd(), q in arb_query()) {
        if let Ok(result) = q.eval(&wsd) {
            // eval's output was incrementally normalized; a full pass on a
            // copy must be a no-op up to world-set equivalence
            let mut full = result.clone();
            normalize_from_scratch(&mut full);
            full.validate().expect("valid after full pass");
            let a = result.to_worldset(1 << 16).expect("enumerate incremental");
            let b = full.to_worldset(1 << 16).expect("enumerate full");
            prop_assert!(a.equivalent(&b, 1e-9), "incremental normalize left semantic residue");
            // and the full pass finds nothing left to shrink
            prop_assert_eq!(result.stats(), full.stats());
        }
    }

    /// Snapshot codec round trip: save → load yields a decomposition that
    /// passes validation, answers queries **bit-identically** (same
    /// tuples, same confidence bits), and re-encodes to the same bytes.
    #[test]
    fn snapshot_round_trip_is_lossless(wsd in arb_wsd(), q in arb_query()) {
        let bytes = encode_wsd(&wsd);
        let back = decode_wsd(&bytes).expect("snapshot payload must decode");
        back.validate().expect("decoded WSD must validate");
        prop_assert_eq!(
            bytes,
            encode_wsd(&back),
            "re-encoding a decoded WSD must reproduce the same bytes"
        );
        match (q.eval(&wsd), q.eval(&back)) {
            (Ok(a), Ok(b)) => {
                let ca = prob::tuple_confidence(&a, "result").expect("confidence original");
                let cb = prob::tuple_confidence(&b, "result").expect("confidence decoded");
                prop_assert_eq!(ca.len(), cb.len());
                for ((t1, p1), (t2, p2)) in ca.iter().zip(&cb) {
                    prop_assert_eq!(t1, t2, "answer tuples diverged after round trip");
                    prop_assert_eq!(
                        p1.to_bits(), p2.to_bits(),
                        "confidence bits diverged after round trip: {} vs {}", p1, p2
                    );
                }
            }
            (Err(_), Err(_)) => {} // both reject the (possibly ill-typed) query
            (a, b) => {
                return Err(TestCaseError(format!(
                    "round trip changed query acceptance: original ok={}, decoded ok={}",
                    a.is_ok(), b.is_ok()
                )))
            }
        }
    }

    /// WAL replay equals the in-memory session: apply a random mutation
    /// sequence to a plain session and to a durable one (checkpointing at
    /// a random position), kill the durable session without a final
    /// checkpoint, reopen, and require the recovered decomposition to be
    /// byte-identical to the in-memory one under the snapshot codec.
    #[test]
    fn wal_replay_matches_in_memory_session(
        stmts in prop::collection::vec(arb_mutation(), 1..10),
        ckpt_at in 0usize..10,
    ) {
        use maybms_sql::Session;
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "maybms-oracle-wal-{}-{}.maybms",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let wal = maybms_storage::wal_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);

        let mut mem = Session::new();
        let mut durable = Session::open(&path).expect("open durable session");
        mem.execute("CREATE TABLE r (a INT, b INT)").expect("create");
        durable.execute("CREATE TABLE r (a INT, b INT)").expect("create durable");
        for (i, stmt) in stmts.iter().enumerate() {
            // dry-run on a clone: a statement that is invalid at this
            // position (or an unsatisfiable repair) is skipped on both
            // sides, without assuming failures leave no partial state
            if mem.clone().execute(stmt).is_err() {
                continue;
            }
            mem.execute(stmt).expect("in-memory apply");
            durable.execute(stmt).expect("durable apply");
            if i == ckpt_at {
                durable.execute("CHECKPOINT").expect("checkpoint");
            }
        }
        drop(durable); // the kill: no final checkpoint
        let recovered = Session::open(&path).expect("recovery");
        let lhs = encode_wsd(mem.wsd());
        let rhs = encode_wsd(recovered.wsd());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
        prop_assert!(
            lhs == rhs,
            "recovered decomposition differs from the in-memory session \
             ({} vs {} encoded bytes)", lhs.len(), rhs.len()
        );
    }

    /// Transactional WAL replay equals the in-memory session: run a random
    /// script with interleaved BEGIN/COMMIT/ROLLBACK on a plain and a
    /// durable session, kill the durable one at a random point (possibly
    /// mid-transaction), reopen, and require the recovered decomposition
    /// to be byte-identical to the in-memory session — where "in-memory"
    /// rolls back its open transaction too, because recovery replays only
    /// complete commit groups, never a partial transaction.
    #[test]
    fn transactional_wal_replay_matches_in_memory_session(
        ops in prop::collection::vec(arb_txn_op(), 1..12),
        kill_at in 0usize..12,
        ckpt_at in 0usize..12,
    ) {
        use maybms_sql::Session;
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "maybms-oracle-txn-{}-{}.maybms",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let wal = maybms_storage::wal_path_for(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);

        let mut mem = Session::new();
        let mut durable = Session::open(&path).expect("open durable session");
        mem.execute("CREATE TABLE r (a INT, b INT)").expect("create");
        durable.execute("CREATE TABLE r (a INT, b INT)").expect("create durable");
        for (i, op) in ops.iter().enumerate() {
            if i == kill_at {
                break; // the random kill point — possibly mid-transaction
            }
            match op {
                TxnOp::Begin if !mem.in_transaction() => {
                    mem.execute("BEGIN").expect("begin");
                    durable.execute("BEGIN").expect("begin durable");
                }
                TxnOp::Commit if mem.in_transaction() => {
                    mem.execute("COMMIT").expect("commit");
                    durable.execute("COMMIT").expect("commit durable");
                }
                TxnOp::Rollback if mem.in_transaction() => {
                    mem.execute("ROLLBACK").expect("rollback");
                    durable.execute("ROLLBACK").expect("rollback durable");
                }
                TxnOp::Begin | TxnOp::Commit | TxnOp::Rollback => {} // invalid here: skip
                TxnOp::Stmt(stmt) => {
                    // dry-run on a clone (which carries any open
                    // transaction): statements invalid at this position are
                    // skipped on both sides
                    if mem.clone().execute(stmt).is_err() {
                        continue;
                    }
                    mem.execute(stmt).expect("in-memory apply");
                    durable.execute(stmt).expect("durable apply");
                }
            }
            if i == ckpt_at && !mem.in_transaction() {
                durable.execute("CHECKPOINT").expect("checkpoint");
            }
        }
        // the kill: anything uncommitted must not survive recovery, so the
        // in-memory reference rolls its open transaction back too
        if mem.in_transaction() {
            mem.execute("ROLLBACK").expect("reference rollback");
        }
        drop(durable);
        let recovered = Session::open(&path).expect("recovery");
        let lhs = encode_wsd(mem.wsd());
        let rhs = encode_wsd(recovered.wsd());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
        prop_assert!(
            lhs == rhs,
            "recovered decomposition differs from the rolled-back in-memory session \
             ({} vs {} encoded bytes)", lhs.len(), rhs.len()
        );
    }

    /// DELETE/UPDATE world semantics: the decomposition operators must
    /// equal the enumerate-all-worlds reference (apply the statement
    /// per world, keep each world's probability untouched), at worker
    /// counts 1/2/4.
    #[test]
    fn delete_update_world_semantics(
        wsd in arb_wsd(),
        is_delete in any::<bool>(),
        on_a in any::<bool>(),
        eq_pred in any::<bool>(),
        k in 0i64..4,
        v in 0i64..4,
    ) {
        use maybms_sql::Session;
        use maybms_worldset::WorldSet;

        let col = if on_a { "a" } else { "b" };
        let op = if eq_pred { "=" } else { ">" };
        let sql = if is_delete {
            format!("DELETE FROM r WHERE {col} {op} {k}")
        } else {
            format!("UPDATE r SET a = {v} WHERE {col} {op} {k}")
        };

        // the reference: apply the statement in every enumerated world
        let before = wsd.to_worldset(1 << 16).expect("enumerate input");
        let mut reference = WorldSet::default();
        for (w, p) in before.worlds() {
            let mut w = w.clone();
            let r = w.get("r").expect("relation r").clone();
            let ci = r.schema().index_of(col).expect("column");
            let matches = |t: &maybms_relational::Tuple| {
                let x = t[ci].as_i64().expect("int column");
                if eq_pred { x == k } else { x > k }
            };
            let rows: Vec<maybms_relational::Tuple> = if is_delete {
                r.rows().iter().filter(|t| !matches(t)).cloned().collect()
            } else {
                r.rows()
                    .iter()
                    .map(|t| {
                        if !matches(t) {
                            return t.clone();
                        }
                        let mut vals = t.values().to_vec();
                        vals[0] = Value::Int(v);
                        maybms_relational::Tuple::new(vals)
                    })
                    .collect()
            };
            w.put(
                "r".to_string(),
                maybms_relational::Relation::from_rows_unchecked(r.schema().clone(), rows),
            );
            reference.push(w, *p);
        }

        for workers in [1usize, 2, 4] {
            let mut s = Session::with_wsd(wsd.clone())
                .with_worker_pool(std::sync::Arc::new(WorkerPool::new(workers)));
            s.execute(&sql).expect("dml");
            s.wsd().validate().expect("valid after dml");
            let got = s.wsd().to_worldset(1 << 16).expect("enumerate result");
            prop_assert!(
                got.equivalent(&reference, 1e-9),
                "{sql} diverged from the all-worlds reference at {workers} workers"
            );
        }
    }
}
