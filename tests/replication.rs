//! Replication integration tests: a replica that has applied the
//! primary's shipped log prefix up to LSN *x* must hold **byte-identical
//! state** (under `maybms_core::codec`) to the primary's committed state
//! at *x* — at every shipped-prefix boundary, across disconnects and
//! reconnects at every LSN, across torn streams cut at every byte
//! offset, and across checkpoint-forced snapshot transfers.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

use maybms_core::codec::encode_wsd;
use maybms_sql::replication::{Primary, Replica};
use maybms_sql::{Session, SessionError};
use maybms_storage::wal::{Polled, WalCursor};
use maybms_storage::ship::{send_msg, Msg};
use maybms_storage::{delta_path_for, wal_path_for};

fn db_path(name: &str) -> PathBuf {
    let p = std::env::temp_dir()
        .join(format!("maybms-repl-{}-{name}.maybms", std::process::id()));
    rm_db(&p);
    p
}

fn rm_db(p: &Path) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(wal_path_for(p));
    let _ = std::fs::remove_file(delta_path_for(p));
}

/// A transactional workload touching every statement kind the WAL ships:
/// DDL, or-set inserts, repairs, DML, committed and rolled-back
/// transactions.
const SCRIPT: &[&str] = &[
    "CREATE TABLE person (ssn INT, name TEXT)",
    "INSERT INTO person VALUES ({1: 0.5, 2: 0.5}, 'ann'), (2, 'bob'), ({3, 4}, 'cal')",
    "CREATE TABLE cost (tname TEXT, usd INT)",
    "INSERT INTO cost VALUES ('x', {10: 0.25, 20: 0.75}), ('y', 40)",
    "REPAIR KEY person(ssn)",
    "ALTER TABLE cost RENAME TO costs",
    "BEGIN",
    "DELETE FROM costs WHERE usd > 30",
    "INSERT INTO costs VALUES ('z', {17: 0.5, 18: 0.5})",
    "UPDATE costs SET tname = 'zz' WHERE usd = 17",
    "COMMIT",
    "UPDATE person SET name = 'anne' WHERE ssn = 1",
    "BEGIN",
    "DELETE FROM person",
    "ROLLBACK",
    "REPAIR CHECK costs: usd > 15",
    "INSERT INTO person VALUES ({5: 0.1, 6: 0.9}, 'dee')",
];

/// Runs the script on a fresh durable primary, recording `(lsn, bytes)`
/// at every shipped-prefix boundary (after each statement outside a
/// transaction — exactly the states a replica can legally observe).
fn run_script(path: &Path) -> (Session, Vec<(u64, Vec<u8>)>) {
    let mut s = Session::open(path).unwrap();
    let mut boundaries = vec![(0u64, encode_wsd(s.wsd()))];
    for sql in SCRIPT {
        s.execute(sql).unwrap();
        if !s.in_transaction() {
            let lsn = s.last_lsn().unwrap();
            if boundaries.last().map(|(l, _)| *l) != Some(lsn) {
                boundaries.push((lsn, encode_wsd(s.wsd())));
            }
        }
    }
    (s, boundaries)
}

/// Spawns a serve thread for one follower connection, returning the
/// follower's end of the stream.
fn serve_pair(primary: &Primary) -> UnixStream {
    let (ours, theirs) = UnixStream::pair().unwrap();
    let _handle = primary.spawn_serve(theirs);
    ours
}

#[test]
fn replica_is_byte_identical_at_every_boundary_with_reconnects() {
    let path = db_path("boundaries");
    let (primary_session, boundaries) = run_script(&path);
    let final_lsn = primary_session.last_lsn().unwrap();
    let final_bytes = encode_wsd(primary_session.wsd());
    assert!(boundaries.len() > 10, "the script must produce many boundaries");
    assert_eq!(boundaries.last().unwrap().0, final_lsn);
    let primary = Primary::new(&path);

    for (lsn, expected) in &boundaries {
        // a fresh replica synced exactly to this boundary…
        let mut replica = Replica::new();
        let mut conn = replica.connect(serve_pair(&primary)).unwrap();
        replica.sync_to(&mut conn, *lsn).unwrap();
        assert_eq!(replica.applied_lsn(), *lsn, "sync_to must stop on a record boundary");
        assert_eq!(
            &encode_wsd(replica.session().wsd()),
            expected,
            "replica state at LSN {lsn} must be byte-identical to the primary's"
        );
        // …then the connection dies (kill at this LSN) and a reconnect
        // resumes from applied_lsn without a snapshot transfer
        drop(conn);
        let mut conn2 = replica.connect(serve_pair(&primary)).unwrap();
        replica.sync_to(&mut conn2, final_lsn).unwrap();
        assert_eq!(
            encode_wsd(replica.session().wsd()),
            final_bytes,
            "reconnect from LSN {lsn} must converge to the primary's final state"
        );
    }
    primary.stop();
    rm_db(&path);
}

/// The replica answers the same queries as the primary once synced.
#[test]
fn replica_answers_queries_like_the_primary() {
    let path = db_path("queries");
    let (mut primary_session, _) = run_script(&path);
    let primary = Primary::new(&path);
    let mut replica = Replica::new();
    let mut conn = replica.connect(serve_pair(&primary)).unwrap();
    replica.sync_to(&mut conn, primary_session.last_lsn().unwrap()).unwrap();

    for sql in [
        "SELECT POSSIBLE ssn, name, PROB() FROM person ORDER BY name, ssn",
        "SELECT POSSIBLE tname, usd, PROB() FROM costs ORDER BY tname, usd",
        "SELECT EXPECTED SUM(usd) FROM costs",
        "SELECT PROB() FROM person WHERE ssn = 1",
    ] {
        let want: Vec<String> = primary_session
            .execute(sql)
            .unwrap()
            .rows()
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        let got: Vec<String> =
            replica.query(sql).unwrap().rows().iter().map(|r| format!("{r:?}")).collect();
        assert_eq!(got, want, "query {sql} diverged on the replica");
    }
    primary.stop();
    rm_db(&path);
}

/// A stream of frames cut at *every* byte offset: the replica applies
/// exactly the complete prefix, refuses the torn frame loudly, and a
/// reconnect to the live primary converges to the final state.
#[test]
fn torn_stream_sweep_recovers_at_every_offset() {
    let path = db_path("torn-stream");
    let (primary_session, boundaries) = run_script(&path);
    let final_lsn = primary_session.last_lsn().unwrap();
    let final_bytes = encode_wsd(primary_session.wsd());

    // Render the full catch-up stream (every WAL record as one framed
    // Record message), remembering each frame's end offset and LSN.
    let mut cursor = WalCursor::open(&wal_path_for(&path), 0).unwrap();
    let Polled::Records(records) = cursor.poll().unwrap() else { panic!("fresh log") };
    assert_eq!(records.last().unwrap().0, final_lsn);
    let mut stream = Vec::new();
    let mut frame_ends = vec![(0usize, 0u64)]; // (offset, lsn applied through)
    for (lsn, payload) in &records {
        send_msg(&mut stream, &Msg::Record { lsn: *lsn, payload: payload.clone() }).unwrap();
        frame_ends.push((stream.len(), *lsn));
    }
    let lsn_at = |cut: usize| frame_ends.iter().rev().find(|(o, _)| *o <= cut).unwrap().1;
    let state_at = |lsn: u64| {
        boundaries
            .iter()
            .rev()
            .find(|(l, _)| *l <= lsn)
            .map(|(_, b)| b.clone())
            .unwrap()
    };

    let primary = Primary::new(&path);
    for cut in 0..stream.len() {
        let mut replica = Replica::new();
        {
            let mut conn = replica
                .connect(TornStream { input: stream[..cut].to_vec(), pos: 0 })
                .unwrap();
            // apply until the torn tail surfaces as an error
            let err = loop {
                match conn.recv() {
                    Ok(msg) => {
                        replica.apply_msg(msg).unwrap();
                    }
                    Err(e) => break e,
                }
            };
            assert!(
                err.to_string().contains("receive message")
                    || err.to_string().contains("checksum"),
                "cut {cut}: unexpected error {err}"
            );
        }
        let applied = replica.applied_lsn();
        assert_eq!(applied, lsn_at(cut), "cut {cut}: exactly the complete frames apply");
        assert_eq!(
            encode_wsd(replica.session().wsd()),
            state_at(applied),
            "cut {cut}: the applied prefix must be a legal boundary state"
        );
        // reconnect to the live primary: converges to the final state
        let mut conn = replica.connect(serve_pair(&primary)).unwrap();
        replica.sync_to(&mut conn, final_lsn).unwrap();
        assert_eq!(
            encode_wsd(replica.session().wsd()),
            final_bytes,
            "cut {cut}: reconnect must converge"
        );
    }
    primary.stop();
    rm_db(&path);
}

/// A follower positioned before the last checkpoint cannot be served from
/// the log (those records were compacted away): it must receive a full
/// snapshot transfer, and still end byte-identical.
#[test]
fn follower_behind_checkpoint_gets_snapshot_transfer() {
    let path = db_path("snap-transfer");
    let (mut primary_session, _) = run_script(&path);

    // a replica synced to the pre-checkpoint state…
    let primary = Primary::new(&path);
    let mut early = Replica::new();
    let mut early_conn = early.connect(serve_pair(&primary)).unwrap();
    early.sync_to(&mut early_conn, primary_session.last_lsn().unwrap()).unwrap();
    drop(early_conn);
    let early_lsn = early.applied_lsn();

    // …misses a few commits and a checkpoint (which compacts the log)
    primary_session.execute("INSERT INTO person VALUES (7, 'eve')").unwrap();
    primary_session.execute("DELETE FROM costs WHERE usd = 40").unwrap();
    let r = primary_session.execute("CHECKPOINT").unwrap();
    assert!(r.ack().contains("checkpointed"), "{}", r.ack());
    primary_session.execute("INSERT INTO person VALUES (8, 'fay')").unwrap();
    let final_lsn = primary_session.last_lsn().unwrap();
    let final_bytes = encode_wsd(primary_session.wsd());

    // a fresh follower (LSN 0) is *behind the checkpoint*: snapshot path
    let mut fresh = Replica::new();
    let mut conn = fresh.connect(serve_pair(&primary)).unwrap();
    fresh.sync_to(&mut conn, final_lsn).unwrap();
    assert!(
        fresh.generation() >= 1,
        "a fresh follower must have received a snapshot transfer (generation {})",
        fresh.generation()
    );
    assert_eq!(encode_wsd(fresh.session().wsd()), final_bytes);

    // the early replica reconnects: its LSN predates the log too
    assert!(early_lsn < final_lsn);
    let mut conn = early.connect(serve_pair(&primary)).unwrap();
    early.sync_to(&mut conn, final_lsn).unwrap();
    assert_eq!(encode_wsd(early.session().wsd()), final_bytes);
    primary.stop();
    rm_db(&path);
}

/// Replicas are read-only: every mutation, transaction-control statement
/// and CHECKPOINT is refused with the structured error.
#[test]
fn replica_refuses_mutations() {
    let path = db_path("readonly");
    let (primary_session, _) = run_script(&path);
    let primary = Primary::new(&path);
    let mut replica = Replica::new();
    let mut conn = replica.connect(serve_pair(&primary)).unwrap();
    replica.sync_to(&mut conn, primary_session.last_lsn().unwrap()).unwrap();

    for sql in [
        "INSERT INTO person VALUES (9, 'mal')",
        "DELETE FROM person",
        "UPDATE person SET name = 'x'",
        "CREATE TABLE t (x INT)",
        "DROP TABLE person",
        "REPAIR KEY person(ssn)",
        "BEGIN",
        "COMMIT",
        "CHECKPOINT",
    ] {
        let err = replica.query(sql).unwrap_err();
        assert!(
            matches!(err, SessionError::ReadOnlyReplica { .. }),
            "{sql}: expected ReadOnlyReplica, got {err:?}"
        );
        assert!(err.to_string().contains("read-only replica"), "{err}");
    }
    // the refusals changed nothing: queries still answer
    assert!(!replica.query("SELECT POSSIBLE ssn FROM person").unwrap().rows().is_empty());
    primary.stop();
    rm_db(&path);
}

/// End to end over TCP: N followers stream from one primary, and keep
/// answering queries after the primary goes away (failover reads).
#[test]
fn tcp_replication_with_failover_reads() {
    let path = db_path("tcp");
    let (mut primary_session, _) = run_script(&path);
    let primary = Primary::new(&path);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accept_loop = primary.listen(listener).unwrap();

    let mut replicas = Vec::new();
    for _ in 0..3 {
        let stream = std::net::TcpStream::connect(addr).unwrap();
        let replica = Replica::new();
        let conn = replica.connect(stream).unwrap();
        replicas.push((replica, conn));
    }
    primary_session.execute("INSERT INTO person VALUES (7, 'eve')").unwrap();
    let final_lsn = primary_session.last_lsn().unwrap();
    let final_bytes = encode_wsd(primary_session.wsd());
    for (replica, conn) in &mut replicas {
        replica.sync_to(conn, final_lsn).unwrap();
        assert_eq!(encode_wsd(replica.session().wsd()), final_bytes);
    }

    // the primary dies; every follower still serves reads
    primary.stop();
    accept_loop.join().unwrap();
    drop(primary_session);
    for (replica, _) in &mut replicas {
        let r = replica.query("SELECT POSSIBLE ssn, name FROM person ORDER BY ssn").unwrap();
        assert!(!r.rows().is_empty(), "failover read must answer");
    }
    rm_db(&path);
}

/// A follower driven by `follow_with_retry` survives a *flapping*
/// primary: the serving process dies mid-stream, a new one comes up
/// later (same database files), and the follower reconnects with capped
/// exponential backoff, resumes by LSN, and converges — then exits
/// cleanly when told to stop.
#[test]
fn follow_with_retry_survives_flapping_primary() {
    use maybms_sql::replication::{follow_with_retry, Backoff};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    let path = db_path("flapping");
    let (mut primary_session, _) = run_script(&path);

    // primary A
    let primary_a = Primary::new(&path).with_heartbeat_interval(Duration::from_millis(5));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = Arc::new(Mutex::new(listener.local_addr().unwrap()));
    let accept_a = primary_a.listen(listener).unwrap();

    let replica = Arc::new(Mutex::new(Replica::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let follower = {
        let (replica, stop, addr) = (replica.clone(), stop.clone(), addr.clone());
        std::thread::spawn(move || {
            let mut backoff =
                Backoff::with_seed(Duration::from_millis(1), Duration::from_millis(20), 7);
            let connect = || {
                let a: SocketAddr = *addr.lock().unwrap();
                TcpStream::connect(a)
            };
            follow_with_retry(&replica, connect, &mut backoff, &stop)
        })
    };

    let wait_for_lsn = |lsn: u64| {
        for _ in 0..2000 {
            if replica.lock().unwrap().applied_lsn() >= lsn {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("follower never reached LSN {lsn}");
    };
    wait_for_lsn(primary_session.last_lsn().unwrap());

    // primary A dies mid-life; the session keeps committing meanwhile
    primary_a.stop();
    accept_a.join().unwrap();
    primary_session.execute("INSERT INTO person VALUES (8, 'flo')").unwrap();
    primary_session.execute("INSERT INTO person VALUES (9, 'gus')").unwrap();
    std::thread::sleep(Duration::from_millis(30)); // let reconnects fail a few times

    // primary B takes over on a fresh port, same database
    let primary_b = Primary::new(&path).with_heartbeat_interval(Duration::from_millis(5));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    *addr.lock().unwrap() = listener.local_addr().unwrap();
    let accept_b = primary_b.listen(listener).unwrap();

    wait_for_lsn(primary_session.last_lsn().unwrap());
    {
        let mut r = replica.lock().unwrap();
        assert_eq!(
            encode_wsd(r.session().wsd()),
            encode_wsd(primary_session.wsd()),
            "the follower must converge to the post-failover state"
        );
        // heartbeats flow again, so the replica is fresh
        assert!(!r.is_stale(Duration::from_secs(5)));
    }

    // a raised stop flag ends the loop with Ok, not an error
    stop.store(true, Ordering::Relaxed);
    follower.join().unwrap().unwrap();
    primary_b.stop();
    accept_b.join().unwrap();
    rm_db(&path);
}

/// The backoff schedule: deterministic per seed, exponentially growing,
/// capped, jittered within the upper half of each ceiling, and reset
/// returns it to the base.
#[test]
fn backoff_is_capped_exponential_with_jitter() {
    use maybms_sql::replication::Backoff;
    use std::time::Duration;

    let base = Duration::from_millis(10);
    let cap = Duration::from_millis(160);
    let mut b = Backoff::with_seed(base, cap, 42);
    let mut prev_ceil = Duration::ZERO;
    for attempt in 0..10u32 {
        let ceil = std::cmp::min(base * 2u32.pow(attempt), cap);
        let d = b.next_delay();
        assert!(d >= ceil / 2 && d <= ceil, "attempt {attempt}: {d:?} not in [{:?}, {ceil:?}]", ceil / 2);
        assert!(ceil >= prev_ceil, "ceilings must not shrink");
        prev_ceil = ceil;
    }
    assert_eq!(b.attempt(), 10);
    b.reset();
    assert_eq!(b.attempt(), 0);
    assert!(b.next_delay() <= base, "after reset the first delay is within the base ceiling");

    // same seed, same sequence — failing schedules can be replayed
    let mut x = Backoff::with_seed(base, cap, 99);
    let mut y = Backoff::with_seed(base, cap, 99);
    for _ in 0..8 {
        assert_eq!(x.next_delay(), y.next_delay());
    }
}

/// Staleness detection: while the primary heartbeats the replica stays
/// fresh even with no writes; once the primary is gone, `is_stale`
/// trips after the timeout.
#[test]
fn replica_staleness_tracks_heartbeats() {
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    let path = db_path("staleness");
    let (primary_session, _) = run_script(&path);
    let primary = Primary::new(&path).with_heartbeat_interval(Duration::from_millis(5));
    let replica = Arc::new(Mutex::new(Replica::new()));
    let stream = serve_pair(&primary);
    let follower = {
        let replica = replica.clone();
        std::thread::spawn(move || {
            let _ = maybms_sql::replication::follow(&replica, stream);
        })
    };

    // no writes at all for a while: heartbeats alone must keep it fresh
    std::thread::sleep(Duration::from_millis(100));
    {
        let r = replica.lock().unwrap();
        assert!(
            !r.is_stale(Duration::from_secs(2)),
            "heartbeats must refresh last_contact (elapsed {:?})",
            r.since_last_contact()
        );
        assert_eq!(r.primary_lsn(), primary_session.last_lsn().unwrap());
    }

    // the primary goes silent: staleness trips after the timeout
    primary.stop();
    follower.join().unwrap();
    std::thread::sleep(Duration::from_millis(120));
    assert!(replica.lock().unwrap().is_stale(Duration::from_millis(60)));
    rm_db(&path);
}

/// A one-directional in-memory stream: reads from a fixed (possibly
/// truncated) byte buffer, swallows writes — the replica side of a
/// recorded primary stream.
struct TornStream {
    input: Vec<u8>,
    pos: usize,
}

impl Read for TornStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.input.len() - self.pos);
        if n == 0 {
            return Ok(0); // EOF: read_exact turns this into an error
        }
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for TornStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
