//! Server concurrency torture: N client threads run seeded random
//! read/write scripts against one [`maybms_server::Server`], and the
//! final state must be **byte-identical under the codec** to replaying
//! the acknowledged commit groups in LSN order — i.e. the committed
//! history really is the serial order the server claims (single-writer
//! group commit makes LSN order *the* serial order).
//!
//! Durability rides along: the server's database lives inside a
//! [`FaultVfs`], and after the run the test crashes the "disk" (drops
//! everything not fsynced) and reopens — every acknowledged commit must
//! survive, because acks are sent only after the group's shared fsync.
//!
//! Seeds come from `MAYBMS_SERVER_SEEDS` (comma-separated u64s) so CI
//! can sweep a matrix and any failure replays exactly.

use std::net::TcpListener;
use std::sync::Arc;
use std::thread;

use maybms_core::codec::encode_wsd;
use maybms_server::{Client, Server, ServerConfig};
use maybms_sql::{GroupCommitConfig, Session};
use maybms_storage::{FaultVfs, Vfs};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Pure key inside the [`FaultVfs`]; nothing touches the real filesystem.
const DB: &str = "/server/db.maybms";

fn seeds() -> Vec<u64> {
    match std::env::var("MAYBMS_SERVER_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse().expect("MAYBMS_SERVER_SEEDS: comma-separated u64s"))
            .collect(),
        Err(_) => (0..6).collect(),
    }
}

/// One acknowledged commit group: the LSN the server assigned and the
/// statements the client submitted, in order.
#[derive(Debug, Clone)]
struct AckedGroup {
    lsn: u64,
    stmts: Vec<String>,
}

/// One client's random script: a mix of auto-commit mutations,
/// explicit transactions (committed or rolled back), and reads.
/// Returns the groups the server acknowledged.
fn client_script(addr: std::net::SocketAddr, client: usize, seed: u64) -> Vec<AckedGroup> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(client as u64));
    let mut conn = Client::connect(addr).expect("connect");
    let mut acked = Vec::new();
    for _ in 0..20 {
        match rng.gen_range(0..10u32) {
            // auto-commit mutation: a one-statement group
            0..=4 => {
                let sql = random_mutation(&mut rng, client);
                match conn.query(&sql).expect("io") {
                    Ok(reply) => acked.push(AckedGroup { lsn: reply.lsn, stmts: vec![sql] }),
                    Err(e) => panic!("auto-commit refused: {e}"),
                }
            }
            // explicit transaction of 2–4 mutations with interleaved reads
            5..=7 => {
                conn.query_ok("BEGIN").expect("begin");
                let n = rng.gen_range(2..=4usize);
                let stmts: Vec<String> =
                    (0..n).map(|_| random_mutation(&mut rng, client)).collect();
                for s in &stmts {
                    conn.query_ok(s).expect("txn stmt");
                }
                // the transaction can read its own preview
                conn.query_ok("SELECT CERTAIN k FROM t").expect("txn read");
                if rng.gen_bool(0.2) {
                    conn.query_ok("ROLLBACK").expect("rollback");
                } else {
                    let reply = conn.query_ok("COMMIT").expect("commit");
                    acked.push(AckedGroup { lsn: reply.lsn, stmts });
                }
            }
            // reads on the latest published snapshot
            _ => {
                conn.query_ok("SELECT CERTAIN client, k, v FROM t").expect("read");
            }
        }
    }
    acked
}

fn random_mutation(rng: &mut StdRng, client: usize) -> String {
    let k = rng.gen_range(0..8u32);
    let v = rng.gen_range(0..100u32);
    match rng.gen_range(0..10u32) {
        // deletes and updates range over every client's rows, so their
        // effect depends on where they land in the serial order — which
        // is exactly what the replay check pins down
        0 => format!("DELETE FROM t WHERE k = {k} AND client = {client}"),
        1..=2 => format!("UPDATE t SET v = {v} WHERE k = {k}"),
        _ => format!("INSERT INTO t VALUES ({client}, {k}, {v})"),
    }
}

/// Replays acknowledged groups in LSN order into a fresh in-memory
/// session and returns the codec bytes of the resulting decomposition.
fn replay(setup: &[&str], mut groups: Vec<AckedGroup>) -> Vec<u8> {
    groups.sort_by_key(|g| g.lsn);
    let lsns: Vec<u64> = groups.iter().map(|g| g.lsn).collect();
    let mut dedup = lsns.clone();
    dedup.dedup();
    assert_eq!(lsns, dedup, "two acknowledged groups share an LSN");
    let mut serial = Session::new();
    for sql in setup {
        serial.execute(sql).expect("setup");
    }
    for g in &groups {
        for sql in &g.stmts {
            serial.execute(sql).unwrap_or_else(|e| panic!("replay of {sql} failed: {e}"));
        }
    }
    encode_wsd(serial.wsd())
}

fn torture(seed: u64, clients: usize) {
    let vfs = FaultVfs::new();
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let session = Session::open_with_vfs(DB, Arc::clone(&arc)).expect("open");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let cfg = ServerConfig {
        group: GroupCommitConfig {
            group_window: std::time::Duration::from_millis(1),
            ..GroupCommitConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::serve_with(session, listener, cfg).expect("serve");
    let addr = server.addr();

    let setup = ["CREATE TABLE t (client INT, k INT, v INT)"];
    let mut admin = Client::connect(addr).expect("connect admin");
    let create = admin.query_ok(setup[0]).expect("create");
    assert!(create.lsn > 0, "setup commit got an LSN");

    let workers: Vec<_> = (0..clients)
        .map(|c| thread::spawn(move || client_script(addr, c, seed)))
        .collect();
    let mut acked: Vec<AckedGroup> = Vec::new();
    for w in workers {
        acked.extend(w.join().expect("client thread"));
    }

    // 1. serializability: the final state equals the acked groups
    //    replayed in LSN order (byte-identical under the codec)
    let session = server.shutdown().expect("shutdown");
    let served = encode_wsd(session.wsd());
    let replayed = replay(&setup, acked.clone());
    assert_eq!(
        served, replayed,
        "seed {seed}: server state diverges from the LSN-order serial replay"
    );

    // 2. durability: crash the disk (drop unsynced bytes), reopen, and
    //    every acknowledged commit is still there
    drop(session);
    vfs.crash();
    let reopened = Session::open_with_vfs(DB, arc).expect("reopen after crash");
    assert_eq!(
        encode_wsd(reopened.wsd()),
        replayed,
        "seed {seed}: an acknowledged commit did not survive crash + recovery"
    );
}

#[test]
fn torture_seed_matrix() {
    for seed in seeds() {
        torture(seed, 6);
    }
}

#[test]
fn torture_single_client_matches_its_own_history() {
    // degenerate case: one client, so the serial order is the client's
    // own program order — a cheap sanity anchor for the replay harness
    torture(12345, 1);
}
