//! Integration test of the full census pipeline (the paper's evaluation,
//! scaled down to CI size): generate → noise → decompose → clean → query.

use maybms_census::{
    census_schema, cleaning_constraints, generate, inject, to_wsd, NoiseSpec, CENSUS_REL,
};
use maybms_core::algebra::Query;
use maybms_core::chase::clean;
use maybms_core::prob;
use maybms_relational::Expr;

#[test]
fn pipeline_small() {
    let n = 400;
    let base = generate(n, 1234);
    assert_eq!(base.schema(), &census_schema());
    assert_eq!(base.len(), n);

    let os = inject(&base, NoiseSpec { rate: 0.004, max_width: 3, weighted: false, seed: 1 })
        .unwrap();
    assert!(os.uncertain_fields() > 0);

    let mut wsd = to_wsd(&os).unwrap();
    wsd.validate().unwrap();
    assert_eq!(wsd.num_components(), os.uncertain_fields());

    // storage: decomposition ≈ original + alternatives only
    let overhead =
        (wsd.size_bytes() as f64 - base.size_bytes() as f64) / base.size_bytes() as f64;
    assert!(overhead < 0.30, "overhead {overhead} too large for 0.4% noise");

    // cleaning must keep the generated (consistent) world possible
    let report = clean(&mut wsd, &cleaning_constraints()).unwrap();
    wsd.validate().unwrap();
    assert!(report.removed_probability < 1.0);

    // after cleaning, no possible tuple violates the age/marst rule
    let q = Query::table(CENSUS_REL)
        .select(Expr::col("age").lt(Expr::lit(15i64)))
        .project(["marst"]);
    let ans = q.eval(&wsd).unwrap();
    for (t, p) in prob::tuple_confidence(&ans, "result").unwrap() {
        assert!(p > 0.0);
        assert_eq!(
            t[0],
            maybms_relational::Value::Int(maybms_census::schema::MARST_SINGLE),
            "cleaning must leave only marst=single for children"
        );
    }
}

#[test]
fn queries_on_noisy_census_match_oracle_at_tiny_scale() {
    // Tiny instance so explicit enumeration is possible.
    let base = generate(6, 99);
    let os = inject(&base, NoiseSpec { rate: 0.01, max_width: 2, weighted: false, seed: 3 })
        .unwrap();
    let wsd = to_wsd(&os).unwrap();
    let q = Query::table(CENSUS_REL)
        .select(Expr::col("age").ge(Expr::lit(30i64)))
        .project(["age", "sex"]);
    let lhs = q.eval(&wsd).unwrap().to_worldset(1 << 16).unwrap();
    let rhs = maybms_worldset::eval::eval_in_all_worlds(
        &wsd.to_worldset(1 << 16).unwrap(),
        &q.to_world_query(),
    )
    .unwrap();
    assert!(lhs.equivalent(&rhs, 1e-9));
}

#[test]
fn world_count_matches_orset_math() {
    let base = generate(100, 5);
    let os = inject(&base, NoiseSpec { rate: 0.01, max_width: 4, weighted: true, seed: 8 })
        .unwrap();
    let wsd = to_wsd(&os).unwrap();
    assert!((wsd.world_count().log2() - os.world_count_log2()).abs() < 1e-6);
}
