//! A persistent MayBMS REPL: the first end-to-end scenario where a
//! database outlives its process.
//!
//! Run with `cargo run --example repl -- mydb.maybms` (the path defaults
//! to `maybms.db` in the current directory). The file is opened or
//! created; crash recovery — loading the last snapshot (base + any
//! incremental overlay) and replaying the write-ahead log — happens
//! inside `Session::open`. The unit of durability is the **transaction**:
//! outside `BEGIN`/`COMMIT` every mutating statement autocommits (one WAL
//! record, one fsync), inside a transaction the whole group commits under
//! a single fsync. `CHECKPOINT` compacts the log on demand (incremental —
//! changed pages only — when possible; `CHECKPOINT FULL` forces a fresh
//! base snapshot), and quitting (`\q` or EOF) checkpoints once more so
//! the next start loads a snapshot instead of replaying the log.
//!
//! On open the REPL prints the database's snapshot **generation** and
//! last **WAL LSN** — the two coordinates replication speaks in (a
//! follower at LSN x has applied exactly the first x committed records;
//! see `examples/replica.rs` for shipping this database to read
//! replicas).
//!
//! ```sql
//! CREATE TABLE person (ssn INT, name TEXT);
//! INSERT INTO person VALUES ({1: 0.6, 2: 0.4}, 'ann'), (2, 'bob');
//! BEGIN;                                  -- buffer the next mutations
//! UPDATE person SET name = 'anna' WHERE ssn = 1;
//! DELETE FROM person WHERE ssn = 2;
//! COMMIT;                                 -- one WAL record, one fsync
//! REPAIR KEY person(ssn);
//! SELECT POSSIBLE ssn, name, PROB() FROM person;
//! CHECKPOINT;      -- incremental when possible; CHECKPOINT FULL forces a base rewrite
//! \w          -- print the current decomposition
//! \q          -- checkpoint and quit
//! ```
//!
//! Inside a transaction the prompt becomes `maybms*>`; quitting with a
//! transaction still open rolls it back (uncommitted work never reaches
//! the log). Errors print through the structured `SessionError` display —
//! parse / plan / storage / transaction messages already name their
//! category, execution errors get an `execute error:` prefix.

use std::io::{BufRead, Write};

use maybms_relational::pretty;
use maybms_sql::{QueryResult, Session, SessionError};

/// One structured error line. Parse ("parse error in …"), plan
/// ("planning failed: …"), storage ("storage error: …") and transaction
/// ("transaction error: …") displays already name their category; only
/// execution errors carry the raw engine message and need a prefix.
fn report(e: &SessionError) -> String {
    match e {
        SessionError::Execute { .. } => format!("execute error: {e}"),
        _ => format!("{e}"),
    }
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "maybms.db".into());
    let mut session = match Session::open(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open database {path}: {e}");
            std::process::exit(1);
        }
    };
    let stats = session.wsd().stats();
    println!(
        "MayBMS-rs — database {path} (generation {}, WAL LSN {}): \
         {} relation(s), {} template tuple(s), {} worlds",
        session.storage_generation().unwrap_or(0),
        session.last_lsn().unwrap_or(0),
        stats.relations,
        stats.template_tuples,
        session.wsd().world_count().summary()
    );
    println!(
        "'\\q' checkpoints and quits, '\\w' dumps the decomposition, \
         '\\metrics' dumps the metrics registry (Prometheus text format)"
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if !buffer.is_empty() {
            print!("   ...> ");
        } else if session.in_transaction() {
            print!("maybms*> ");
        } else {
            print!("maybms> ");
        }
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        match trimmed {
            "\\q" | "exit" | "quit" => break,
            "\\w" => {
                print!("{}", maybms_core::display::render(session.wsd()));
                continue;
            }
            "\\metrics" => {
                // the same text a Prometheus scrape of a serving primary
                // gets (SHOW METRICS returns it as rows instead)
                print!("{}", maybms_obs::prometheus_text(maybms_obs::global()));
                continue;
            }
            "" => continue,
            _ => {}
        }
        buffer.push_str(trimmed);
        buffer.push(' ');
        // execute on a terminating semicolon (or single-line statements,
        // matching the sql_shell example's behavior)
        if !trimmed.ends_with(';') && buffer.split_whitespace().count() < 3 {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        match session.execute(&stmt) {
            Ok(QueryResult::Table(t)) => print!("{}", pretty::render(&t, 50)),
            Ok(QueryResult::WorldSet(w)) => {
                let stats = w.stats();
                println!(
                    "answer world-set: {} tuple template(s), {} component(s), {} worlds",
                    stats.template_tuples,
                    stats.components,
                    w.world_count()
                );
                match w.tuple_confidence("result") {
                    Ok(conf) => {
                        for (t, p) in conf {
                            println!("  {t}  p={p:.4}");
                        }
                    }
                    Err(e) => println!("  (confidence unavailable: {e})"),
                }
            }
            Ok(QueryResult::Text(t)) => println!("{t}"),
            Err(e) => println!("{}", report(&e)),
        }
    }
    if session.in_transaction() {
        // uncommitted work must not be checkpointed into the snapshot
        match session.execute("ROLLBACK") {
            Ok(r) => println!("open transaction rolled back on exit: {}", r.ack()),
            Err(e) => eprintln!("{}", report(&e)),
        }
    }
    match session.execute("CHECKPOINT") {
        Ok(QueryResult::Text(t)) => println!("{t}"),
        Ok(_) => {}
        Err(e) => eprintln!("checkpoint on exit failed: {e}"),
    }
    println!("bye");
}
