//! The census scenario (paper §1): generate a census-like table, replace
//! randomly picked values with or-sets, decompose, report the storage
//! overhead, then clean the world-set by enforcing real-life integrity
//! constraints.
//!
//! Run with: `cargo run --release --example census_cleaning [rows]`

use maybms_census::{cleaning_constraints, generate, inject, to_wsd, NoiseSpec, CENSUS_REL};
use maybms_core::chase::clean;
use maybms_core::prob;
use maybms_relational::Expr;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    // 1. Generate and add noise.
    let base = generate(n, 42);
    let spec = NoiseSpec { rate: 0.005, max_width: 4, weighted: false, seed: 7 };
    let os = inject(&base, spec).expect("noise");
    println!(
        "census: {n} records × 50 columns; {} fields replaced by or-sets",
        os.uncertain_fields()
    );

    // 2. Decompose.
    let mut wsd = to_wsd(&os).expect("decompose");
    let count = wsd.world_count();
    let orig = base.size_bytes();
    let dec = wsd.size_bytes();
    println!(
        "world-set: {} worlds (≈10^{:.0}); representation {} vs original {} ({:+.2}% overhead)",
        count.summary(),
        count.log10(),
        dec,
        orig,
        100.0 * (dec as f64 - orig as f64) / orig as f64
    );

    // 3. Clean: age<15 ⇒ single, age<14 ⇒ unemployed & no wage, and the
    //    (serial, pernum) key.
    let report = clean(&mut wsd, &cleaning_constraints()).expect("chase");
    println!(
        "cleaning: {} violating row group(s) removed across {} checks; \
         P(inconsistent world) = {:.4}; world count now ≈10^{:.0}",
        report.deleted_rows,
        report.checks,
        report.removed_probability,
        wsd.world_count().log10()
    );

    // 4. Ask a probabilistic question of the cleaned data.
    let q = maybms_core::algebra::Query::table(CENSUS_REL)
        .select(Expr::col("age").lt(Expr::lit(15i64)))
        .project(["marst"]);
    let answer = q.eval(&wsd).expect("query");
    let conf = prob::tuple_confidence(&answer, "result").expect("confidence");
    println!("\nmarital status of persons younger than 15 (after cleaning):");
    for (t, p) in conf {
        println!("  marst = {}  with probability {p:.4}", t[0]);
    }
    println!("(cleaning makes 'single' the only possible status, as enforced)");
}
