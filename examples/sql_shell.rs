//! An interactive MayBMS shell: type the paper's SQL dialect against a
//! session preloaded with the §2 medical WSD.
//!
//! Run with: `cargo run --example sql_shell` and try:
//!
//! ```sql
//! SHOW TABLES;
//! SELECT test FROM R WHERE diagnosis = 'pregnancy';
//! SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy';
//! SELECT POSSIBLE diagnosis, symptom FROM R;
//! SELECT CERTAIN diagnosis FROM R;
//! SELECT EXPECTED COUNT() FROM R WHERE symptom = 'fatigue';
//! EXPLAIN SELECT test FROM R WHERE diagnosis = 'pregnancy';
//! CREATE TABLE t (x INT);
//! INSERT INTO t VALUES ({1: 0.9, 2: 0.1});
//! REPAIR CHECK t: x < 2;
//! \w          -- print the current decomposition
//! \q          -- quit
//! ```

use std::io::{BufRead, Write};

use maybms_relational::pretty;
use maybms_sql::{QueryResult, Session};

fn main() {
    let mut session = Session::with_wsd(maybms_core::examples::medical_wsd());
    println!("MayBMS-rs shell — medical demo database loaded ('\\q' quits, '\\w' dumps the WSD)");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("maybms> ");
        } else {
            print!("   ...> ");
        }
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        match trimmed {
            "\\q" | "exit" | "quit" => break,
            "\\w" => {
                print!("{}", maybms_core::display::render(session.wsd()));
                continue;
            }
            "" => continue,
            _ => {}
        }
        buffer.push_str(trimmed);
        buffer.push(' ');
        // execute on a terminating semicolon (or single-line statements)
        if !trimmed.ends_with(';') && buffer.split_whitespace().count() < 3 {
            continue;
        }
        if !trimmed.ends_with(';') {
            // allow single-line statements without ';'
        }
        let stmt = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        match session.execute(&stmt) {
            Ok(QueryResult::Table(t)) => print!("{}", pretty::render(&t, 50)),
            Ok(QueryResult::WorldSet(w)) => {
                let stats = w.stats();
                println!(
                    "answer world-set: {} tuple template(s), {} component(s), {} worlds",
                    stats.template_tuples,
                    stats.components,
                    w.world_count()
                );
                match w.tuple_confidence("result") {
                    Ok(conf) => {
                        for (t, p) in conf {
                            println!("  {t}  p={p:.4}");
                        }
                    }
                    Err(e) => println!("  (confidence unavailable: {e})"),
                }
            }
            Ok(QueryResult::Text(t)) => println!("{t}"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
