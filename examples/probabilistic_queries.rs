//! The SQL dialect tour: or-set inserts, possible/certain answers,
//! `PROB()`, repairs and EXPLAIN — the constructs demonstrated in the
//! paper's query-processing walkthrough.
//!
//! Run with: `cargo run --example probabilistic_queries`

use maybms_relational::pretty;
use maybms_sql::{QueryResult, Session};

fn show(session: &mut Session, sql: &str) {
    println!("\nmaybms> {sql}");
    match session.execute(sql) {
        Ok(QueryResult::Table(t)) => print!("{}", pretty::render(&t, 20)),
        Ok(QueryResult::WorldSet(w)) => {
            let s = w.stats();
            println!(
                "world-set answer: {} tuple template(s), {} component(s), {} worlds",
                s.template_tuples,
                s.components,
                w.world_count()
            );
            for (t, p) in w.tuple_confidence("result").expect("confidence") {
                println!("  {t}  p={p:.4}");
            }
        }
        Ok(QueryResult::Text(t)) => println!("{t}"),
        Err(e) => println!("error: {e}"),
    }
}

fn main() {
    let mut s = Session::new();

    // A tiny hospital database with uncertain diagnoses.
    show(&mut s, "CREATE TABLE patients (pid INT, name TEXT, diagnosis TEXT)");
    show(&mut s, "CREATE TABLE treats (diagnosis TEXT, drug TEXT, cost INT)");
    show(
        &mut s,
        "INSERT INTO patients VALUES \
         (1, 'ann', {'flu': 0.3, 'cold': 0.7}), \
         (2, 'bob', 'flu'), \
         (3, 'cyd', {'flu', 'angina'})",
    );
    show(
        &mut s,
        "INSERT INTO treats VALUES \
         ('flu', 'oseltamivir', 30), ('cold', 'rest', 0), ('angina', 'nitro', 55)",
    );

    // Plain SELECT: the answer is itself a set of possible worlds.
    show(&mut s, "SELECT name, diagnosis FROM patients WHERE diagnosis = 'flu'");

    // Possible and certain answers.
    show(&mut s, "SELECT POSSIBLE name, diagnosis FROM patients");
    show(&mut s, "SELECT CERTAIN name FROM patients WHERE diagnosis = 'flu'");

    // Probability constructs: per-answer confidence and event probability.
    show(&mut s, "SELECT name, PROB() FROM patients WHERE diagnosis = 'flu'");
    show(&mut s, "SELECT PROB() FROM patients WHERE diagnosis = 'angina'");

    // A join across certain and uncertain relations.
    show(
        &mut s,
        "SELECT POSSIBLE p.name, t.drug, PROB() FROM patients p, treats t \
         WHERE p.diagnosis = t.diagnosis AND t.cost > 10",
    );

    // The optimizer at work.
    show(
        &mut s,
        "EXPLAIN SELECT p.name, t.drug FROM patients p, treats t \
         WHERE p.diagnosis = t.diagnosis AND t.cost > 10",
    );

    // Cleaning: a patient cannot have two different diagnoses... suppose a
    // business rule says nobody named 'cyd' has angina.
    show(&mut s, "REPAIR CHECK patients: name <> 'cyd' OR diagnosis <> 'angina'");
    show(&mut s, "SELECT POSSIBLE name, diagnosis, PROB() FROM patients");
}
