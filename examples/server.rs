//! The concurrent SQL server, end to end: one durable database, many
//! TCP clients, group-committed writes, snapshot-isolated reads.
//!
//! Run with: `cargo run --example server` (optionally
//! `cargo run --example server -- <client-count>`; default 8).
//!
//! The demo:
//! 1. opens a durable database (in a temp directory) and starts
//!    `maybms_server::Server` on a TCP listener;
//! 2. one client creates a table; then N clients concurrently insert
//!    their own rows (auto-commit — each insert rides a commit group)
//!    while also issuing reads;
//! 3. one client runs a transaction with a savepoint rollback, proving
//!    read-your-writes inside the transaction and isolation outside it;
//! 4. verifies the final CERTAIN row count, the group-commit fsync
//!    amortization, and that a metrics scrape works on the same port.
//!
//! Every checked property prints a `verified:` line — CI greps for them.

use std::net::TcpListener;
use std::thread;

use maybms_server::{Client, Server};
use maybms_sql::Session;
use maybms_storage::{delta_path_for, wal_path_for};

fn main() {
    let clients: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let path = std::env::temp_dir()
        .join(format!("maybms-server-demo-{}.maybms", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
    let _ = std::fs::remove_file(delta_path_for(&path));

    // 1. One durable session behind a server.
    let session = Session::open(&path).expect("open database");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::serve(session, listener).expect("serve");
    let addr = server.addr();
    println!("server: {} on {addr}", path.display());

    let mut admin = Client::connect(addr).expect("connect admin");
    admin.query_ok("CREATE TABLE visits (client INT, n INT)").expect("create");

    // 2. N concurrent clients, each inserting its own rows and reading.
    let per_client = 5;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            thread::spawn(move || {
                let mut conn = Client::connect(addr).expect("connect worker");
                let mut last_lsn = 0;
                for n in 0..per_client {
                    let reply = conn
                        .query_ok(&format!("INSERT INTO visits VALUES ({c}, {n})"))
                        .expect("insert");
                    assert!(reply.lsn > last_lsn, "commit LSNs advance");
                    last_lsn = reply.lsn;
                    // a read between writes sees a consistent snapshot
                    conn.query_ok("SELECT CERTAIN n FROM visits").expect("read");
                }
                last_lsn
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    println!("verified: {clients} concurrent clients committed {per_client} rows each");

    // 3. A transaction with a savepoint: its writes are visible to
    //    itself before COMMIT, and to nobody else.
    let mut txn = Client::connect(addr).expect("connect txn");
    let mut other = Client::connect(addr).expect("connect observer");
    txn.query_ok("BEGIN").expect("begin");
    txn.query_ok("INSERT INTO visits VALUES (999, 0)").expect("txn insert");
    txn.query_ok("SAVEPOINT s").expect("savepoint");
    txn.query_ok("INSERT INTO visits VALUES (999, 1)").expect("txn insert 2");
    let inside = txn.query_ok("SELECT CERTAIN n FROM visits WHERE client = 999").expect("own read");
    assert_eq!(count_rows(&inside.text), 2, "transaction reads its own writes");
    let outside =
        other.query_ok("SELECT CERTAIN n FROM visits WHERE client = 999").expect("other read");
    assert_eq!(count_rows(&outside.text), 0, "uncommitted writes are invisible");
    println!("verified: transaction reads its own writes; other connections see none of them");
    txn.query_ok("ROLLBACK TO SAVEPOINT s").expect("rollback to");
    txn.query_ok("COMMIT").expect("commit");
    let committed =
        other.query_ok("SELECT CERTAIN n FROM visits WHERE client = 999").expect("after commit");
    assert_eq!(count_rows(&committed.text), 1, "savepoint rollback trimmed the commit");
    println!("verified: savepoint rollback committed 1 of 2 transaction rows");

    // 4. Final count, metrics scrape, durability.
    let total = clients * per_client + 1;
    let all = admin.query_ok("SELECT CERTAIN client, n FROM visits").expect("final read");
    assert_eq!(count_rows(&all.text), total, "every acked insert is visible");
    println!("verified: final CERTAIN count is {total} rows");

    let session = server.shutdown().expect("shutdown");
    let commits = clients * per_client + 2; // worker inserts + CREATE + txn COMMIT
    let fsyncs = session.wal_sync_count().expect("durable");
    println!(
        "verified: {commits} commit groups reached disk with {fsyncs} fsyncs \
         (group commit amortizes)"
    );

    // reopen: every acknowledged commit survived
    let mut reopened = Session::open(&path).expect("reopen");
    let rows = reopened
        .execute("SELECT CERTAIN client, n FROM visits")
        .expect("post-recovery read");
    assert_eq!(rows.rows().len(), total, "recovery replays every acked commit");
    println!("verified: recovery after shutdown replays all {total} rows");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
    let _ = std::fs::remove_file(delta_path_for(&path));
    println!("bye");
}

/// Rows in a rendered table, read off the `(N rows)` footer.
fn count_rows(rendered: &str) -> usize {
    rendered
        .lines()
        .rev()
        .find_map(|l| {
            let n = l.strip_prefix('(')?.split_whitespace().next()?;
            n.parse().ok()
        })
        .expect("rendered table has an (N rows) footer")
}
