//! WAL-shipping replication, end to end: one durable primary, N read
//! replicas over TCP, and a failover read after the primary goes away.
//!
//! Run with: `cargo run --example replica` (optionally
//! `cargo run --example replica -- <replica-count>`; default 2).
//!
//! The demo:
//! 1. opens a durable primary database (in a temp directory) and starts a
//!    TCP listener serving the WAL-shipping protocol;
//! 2. connects N followers, each applying the shipped log on its own
//!    thread while the main thread keeps committing transactions;
//! 3. waits until every follower has applied the primary's last LSN and
//!    proves their state is **byte-identical** to the primary's (the
//!    determinism property replication rests on);
//! 4. checkpoints (compacting the log) and connects a *late* follower,
//!    which must catch up via a full snapshot transfer;
//! 5. stops the primary and reads from the replicas anyway — failover
//!    reads keep working because each replica owns its state.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use maybms_core::codec::encode_wsd;
use maybms_relational::pretty;
use maybms_sql::replication::{follow, Primary, Replica};
use maybms_sql::Session;
use maybms_storage::{delta_path_for, wal_path_for};

fn main() {
    let replicas: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2);
    let path = std::env::temp_dir()
        .join(format!("maybms-replica-demo-{}.maybms", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
    let _ = std::fs::remove_file(delta_path_for(&path));

    // 1. The primary: a durable session plus a TCP listener shipping its
    //    write-ahead log.
    let mut session = Session::open(&path).expect("open primary database");
    let primary = Primary::new(&path);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accept_loop = primary.listen(listener).expect("listen");
    println!("primary: {} serving WAL shipping on {addr}", path.display());

    // 2. N followers, each on its own apply thread.
    let mut followers: Vec<Arc<Mutex<Replica>>> = Vec::new();
    for i in 0..replicas {
        let replica = Arc::new(Mutex::new(Replica::new()));
        let stream = TcpStream::connect(addr).expect("connect follower");
        let handle = Arc::clone(&replica);
        std::thread::spawn(move || {
            // runs until the primary goes away; the error is the
            // disconnect reason
            let _ = follow(&handle, stream);
        });
        println!("replica {i}: connected");
        followers.push(replica);
    }

    // …while the primary commits work (transactions ship as one record).
    session
        .execute_script(
            "CREATE TABLE person (ssn INT, name TEXT); \
             INSERT INTO person VALUES ({1: 0.6, 2: 0.4}, 'ann'), (2, 'bob'); \
             REPAIR KEY person(ssn); \
             BEGIN; \
             UPDATE person SET name = 'anne' WHERE ssn = 1; \
             INSERT INTO person VALUES (3, 'cal'); \
             COMMIT",
        )
        .expect("primary workload");
    let target = session.last_lsn().expect("durable session has LSNs");
    println!("primary: committed through LSN {target}");

    // 3. Wait for every follower, then prove byte-identity.
    let primary_bytes = encode_wsd(session.wsd());
    for (i, replica) in followers.iter().enumerate() {
        loop {
            let mut r = replica.lock().expect("lock");
            if r.applied_lsn() >= target {
                assert_eq!(
                    encode_wsd(r.session().wsd()),
                    primary_bytes,
                    "replica state must be byte-identical to the primary's"
                );
                println!("replica {i}: caught up at LSN {} (state ≡ primary)", r.applied_lsn());
                break;
            }
            drop(r);
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // 4. Checkpoint (compacts the log), then a late follower: its LSN 0
    //    predates the log, so the primary sends a full snapshot first.
    let ack = session.execute("CHECKPOINT").expect("checkpoint");
    println!("primary: {}", ack.ack());
    let mut late = Replica::new();
    let mut conn = late
        .connect(TcpStream::connect(addr).expect("connect late follower"))
        .expect("handshake");
    late.sync_to(&mut conn, target).expect("late catch-up");
    assert!(late.generation() >= 1, "late follower must have used a snapshot transfer");
    assert_eq!(encode_wsd(late.session().wsd()), primary_bytes);
    println!(
        "late replica: caught up via snapshot transfer (generation {}, LSN {})",
        late.generation(),
        late.applied_lsn()
    );

    // A replica is read-only: mutations are refused with a structured
    // error, queries are fine.
    let err = late.query("INSERT INTO person VALUES (9, 'mal')").unwrap_err();
    println!("late replica refuses writes: {err}");

    // Observability: the primary's listener doubles as a Prometheus
    // endpoint — a plain HTTP GET on the same port returns the global
    // metrics registry in text exposition format. One query first, so
    // the executor's row counters have something to show.
    session.execute("SELECT POSSIBLE name FROM person").expect("warm the executor");
    let mut scrape = TcpStream::connect(addr).expect("connect scraper");
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: primary\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    scrape.read_to_string(&mut response).expect("read scrape");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "scrape failed:\n{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("response body");
    for family in ["maybms_repl_shipped_records", "maybms_wal_appends", "maybms_exec_rows"] {
        assert!(body.contains(family), "{family} missing from scrape:\n{body}");
    }
    println!(
        "prometheus scrape: {} bytes, {} metric line(s) — families verified",
        body.len(),
        body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count()
    );

    // …and each replica reports its staleness as data.
    {
        let mut r = followers[0].lock().expect("lock");
        let status = r
            .session()
            .execute("SHOW REPLICATION STATUS")
            .expect("replication status");
        println!("replica 0 status:");
        print!("{}", pretty::render(status.table().expect("table"), 10));
    }

    // 5. Failover reads: stop the primary, query the replicas.
    primary.stop();
    accept_loop.join().expect("accept loop");
    drop(session);
    println!("primary: stopped — reading from replicas anyway");
    for (i, replica) in followers.iter().enumerate() {
        let mut r = replica.lock().expect("lock");
        let answer = r
            .query("SELECT POSSIBLE ssn, name, PROB() FROM person ORDER BY ssn")
            .expect("failover read");
        println!("replica {i} answers:");
        print!("{}", pretty::render(answer.table().expect("table"), 10));
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(wal_path_for(&path));
    let _ = std::fs::remove_file(delta_path_for(&path));
    println!("replication demo complete ✓");
}
