//! Quickstart: the paper's §2 medical scenario on the public API.
//!
//! Builds the probabilistic world-set decomposition printed in the paper,
//! inspects its worlds, runs the paper's query both through the algebra and
//! through SQL, checks the numbers the paper reports (P(world) = 0.42,
//! P(ultrasound) = 0.4), then walks the client API: prepared statements,
//! transactions (group commit), and a durable database that survives its
//! process (open → commit → reopen → recover).
//!
//! Run with: `cargo run --example quickstart`

use maybms::prelude::*;
use maybms_core::algebra::Query;
use maybms_core::examples::medical_wsd;
use maybms_relational::pretty;

fn main() {
    // 1. The WSD from the paper: 5 components representing 4 worlds.
    let wsd = medical_wsd();
    println!(
        "medical WSD: {} components representing {} worlds\n",
        wsd.num_components(),
        wsd.world_count()
    );

    // 2. Enumerate the worlds (possible only because this example is tiny —
    //    avoiding exactly this blow-up is what WSDs are for).
    let worlds = wsd.to_worldset(100).expect("4 worlds");
    for (i, (w, p)) in worlds.worlds().iter().enumerate() {
        println!("world {i} (probability {p:.2}):");
        print!("{}", pretty::render(w.get("R").expect("relation R"), 10));
    }
    // The paper: the hypothyroidism record with weight gain has p = 0.42.
    let target = worlds
        .worlds()
        .iter()
        .find(|(w, _)| {
            w.get("R")
                .map(|r| {
                    r.iter().any(|t| {
                        t[0] == Value::str("hypothyroidism") && t[2] == Value::str("weight gain")
                    })
                })
                .unwrap_or(false)
        })
        .expect("paper world");
    assert!((target.1 - 0.42).abs() < 1e-12);
    println!("P(hypothyroidism & weight gain world) = {:.2}  (paper: 0.42)\n", target.1);

    // 3. The paper's query, on the decomposition (no enumeration involved).
    let q = Query::table("R")
        .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
        .project(["test"]);
    let answer = q.eval(&wsd).expect("query");
    println!(
        "answer WSD: {} component(s), {} worlds",
        answer.stats().components,
        answer.world_count()
    );
    for (t, p) in answer.tuple_confidence("result").expect("confidence") {
        println!("  {t} with probability {p}");
    }

    // 4. The same through SQL, with the probability construct.
    let mut session = maybms_sql::Session::with_wsd(medical_wsd());
    let r = session
        .execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'")
        .expect("sql");
    let table = r.table().expect("prob query returns a table");
    print!("\nSQL> SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'\n{}",
        pretty::render(table, 10));
    assert_eq!(table.rows()[0][0], Value::str("ultrasound"));
    assert!((table.rows()[0][1].as_f64().expect("prob") - 0.4).abs() < 1e-9);
    println!("P(ultrasound) = 0.4, as in the paper. ✓");

    // 5. Prepared statements and transactions: parse once, bind many;
    //    a transaction applies atomically (and, on a durable session,
    //    commits its whole group under a single WAL fsync).
    session
        .execute("CREATE TABLE visits (pid INT, ward TEXT)")
        .expect("create");
    let ins = session
        .prepare("INSERT INTO visits VALUES (?, ?)")
        .expect("prepare");
    let mut txn = session.transaction().expect("begin");
    for (pid, ward) in [(1i64, "maternity"), (2, "endocrinology"), (3, "cardiology")] {
        txn.execute_prepared(&ins, &[Value::Int(pid), Value::str(ward)])
            .expect("bind + insert");
    }
    txn.execute("DELETE FROM visits WHERE ward = 'cardiology'")
        .expect("delete");
    txn.commit().expect("commit");
    let visits = session
        .execute("SELECT POSSIBLE pid, ward FROM visits ORDER BY pid")
        .expect("select");
    print!("\nprepared + transactional DML:\n{}", pretty::render(visits.table().expect("table"), 10));
    assert_eq!(visits.rows().len(), 2);
    println!("prepared INSERT bound 3×, transactional DELETE committed. ✓");

    // 6. Durability: open a database file, commit a transaction, drop the
    //    session ("crash"), reopen — recovery replays the log. Committed
    //    transactions are the unit of durability: one commit group, one
    //    fsync.
    let path = std::env::temp_dir()
        .join(format!("maybms-quickstart-{}.maybms", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(maybms_storage::wal_path_for(&path));
    let _ = std::fs::remove_file(maybms_storage::delta_path_for(&path));
    {
        let mut durable = maybms_sql::Session::open(&path).expect("open database");
        let mut txn = durable.transaction().expect("begin");
        txn.execute("CREATE TABLE notes (id INT, body TEXT)").expect("create");
        txn.execute("INSERT INTO notes VALUES (1, 'survives the process')").expect("insert");
        txn.commit().expect("commit");
        println!(
            "\ndurable session: committed through WAL LSN {} (generation {})",
            durable.last_lsn().expect("lsn"),
            durable.storage_generation().expect("generation")
        );
        // dropped here without CHECKPOINT — recovery must replay the WAL
    }
    let mut recovered = maybms_sql::Session::open(&path).expect("recover database");
    let notes = recovered.execute("SELECT POSSIBLE body FROM notes").expect("query");
    assert_eq!(notes.rows().len(), 1);
    println!("reopened: {:?} recovered from the write-ahead log. ✓", notes.rows()[0][0]);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(maybms_storage::wal_path_for(&path));
    let _ = std::fs::remove_file(maybms_storage::delta_path_for(&path));
}
