//! E7: persistence — durability throughput on the census workload.
//!
//! Five paths, emitted to `BENCH_e7.json` (see the criterion shim):
//!
//! * `snapshot_save/bytes=N` — encode the census decomposition and write
//!   it as a paged, checksummed snapshot (atomic write-new + rename).
//!   MB/s = `N / mean_ns * 1e3`.
//! * `snapshot_load/bytes=N` — read + verify every page, decode and
//!   validate the decomposition. Same MB/s arithmetic.
//! * `wal_replay/stmts=N` — full crash recovery of a database that was
//!   never checkpointed: open the WAL, decode all N statement records and
//!   re-execute them. Statements/s = `N / mean_ns * 1e9`.
//! * `insert_fsync/mode={per_statement,group_commit}/rows=N` — the
//!   group-commit comparison: N durable INSERTs as N autocommitted
//!   statements (one fsync each) vs one `BEGIN`…`COMMIT` transaction (one
//!   fsync total). Inserts/s = `N / mean_ns * 1e9`; the ratio is the
//!   group-commit speedup.
//! * `census_load/mode={parse_per_row,prepared_txn}/rows=N` — the bulk
//!   loader before/after: SQL text re-parsed per row under autocommit vs
//!   `maybms_census::load_into_session` (one prepared INSERT bound per
//!   row, one transaction per 512-row batch).
//!
//! The statement set is the census or-set workload (one `CREATE TABLE`
//! plus one weighted-or-set `INSERT` per row), the same data the E1–E4
//! experiments run on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_census::{
    census_schema, generate, inject, load_into_session, row_statement, NoiseSpec, CENSUS_REL,
};
use maybms_core::codec::{decode_wsd, encode_wsd};
use maybms_relational::Value;
use maybms_sql::ast::{InsertValue, Statement};
use maybms_sql::Session;
use maybms_storage::{read_snapshot, wal_path_for, write_snapshot};
use maybms_worldset::OrSetRelation;

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// The census workload as a statement log: CREATE TABLE + one INSERT per
/// or-set row (weighted alternatives preserved exactly).
fn census_statements(n: usize, seed: u64) -> Vec<Statement> {
    let base = generate(n, seed);
    let os = inject(
        &base,
        NoiseSpec { rate: 0.02, max_width: 3, weighted: true, seed: seed ^ 0xE7 },
    )
    .expect("inject");
    let columns = census_schema()
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    let mut stmts = vec![Statement::CreateTable { name: CENSUS_REL.into(), columns }];
    for row in os.rows() {
        let vals: Vec<InsertValue> = row
            .iter()
            .map(|cell| match cell.certain_value() {
                Some(v) => InsertValue::Certain(v.clone()),
                None => InsertValue::Weighted(cell.alternatives().to_vec()),
            })
            .collect();
        stmts.push(Statement::Insert { table: CENSUS_REL.into(), rows: vec![vals] });
    }
    stmts
}

/// A value as a SQL literal (the re-parse "before" path of the loader
/// comparison renders each row back to text).
fn sql_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

/// One census or-set row as the SQL text a naive client would send.
fn row_sql(row: &[maybms_worldset::OrSetCell]) -> String {
    let cells: Vec<String> = row
        .iter()
        .map(|cell| match cell.certain_value() {
            Some(v) => sql_literal(v),
            None => {
                let alts: Vec<String> = cell
                    .alternatives()
                    .iter()
                    .map(|(v, p)| format!("{}: {p}", sql_literal(v)))
                    .collect();
                format!("{{{}}}", alts.join(", "))
            }
        })
        .collect();
    format!("INSERT INTO {CENSUS_REL} VALUES ({})", cells.join(", "))
}

fn census_orset(n: usize, seed: u64) -> OrSetRelation {
    let base = generate(n, seed);
    inject(
        &base,
        NoiseSpec { rate: 0.02, max_width: 3, weighted: true, seed: seed ^ 0xE7 },
    )
    .expect("inject")
}

/// The group-commit write path vs per-statement fsync, on a durable
/// session (real fsyncs — this is the ROADMAP's "group-commit / batched
/// fsync" item measured).
fn bench_insert_fsync(c: &mut Criterion, fast: bool) {
    let rows = if fast { 100 } else { 200 };
    let os = census_orset(rows, 11);
    let stmts: Vec<Statement> = os.rows().iter().map(|r| row_statement(r)).collect();
    let dir = std::env::temp_dir();
    let pid = std::process::id();

    let mut g = c.benchmark_group("e7_persistence");
    g.sample_size(10);
    for (mode, grouped) in [("per_statement", false), ("group_commit", true)] {
        let db = dir.join(format!("maybms-e7-fsync-{pid}-{mode}.maybms"));
        let cleanup = |p: &std::path::Path| {
            let _ = std::fs::remove_file(p);
            let _ = std::fs::remove_file(wal_path_for(p));
        };
        cleanup(&db);
        let columns: Vec<_> = census_schema()
            .columns()
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        g.bench_with_input(
            BenchmarkId::new("insert_fsync", format!("mode={mode}/rows={rows}")),
            &stmts,
            |b, stmts| {
                b.iter(|| {
                    // fresh database per iteration: both modes commit the
                    // same N rows from the same empty state, so the delta
                    // is purely N fsyncs vs one
                    cleanup(&db);
                    let mut s = Session::open(&db).expect("create database");
                    s.run(&Statement::CreateTable {
                        name: CENSUS_REL.into(),
                        columns: columns.clone(),
                    })
                    .expect("create table");
                    if grouped {
                        let mut txn = s.transaction().expect("begin");
                        for stmt in stmts {
                            txn.run(stmt).expect("insert");
                        }
                        txn.commit().expect("commit");
                    } else {
                        for stmt in stmts {
                            s.run(stmt).expect("insert");
                        }
                    }
                    std::hint::black_box(s.wal_len())
                });
            },
        );
        cleanup(&db);
    }
    g.finish();
}

/// The bulk-loader before/after: re-parse SQL text per row (the old
/// loaders) vs prepared statements + one transaction per batch
/// (`maybms_census::load_into_session`). In-memory sessions, so the
/// delta is parse/bind overhead, not fsync latency.
fn bench_census_load(c: &mut Criterion, fast: bool) {
    let rows = if fast { 300 } else { 1_000 };
    let os = census_orset(rows, 12);
    let sql_rows: Vec<String> = os.rows().iter().map(|r| row_sql(r)).collect();
    let create = {
        let cols: Vec<String> = census_schema()
            .columns()
            .iter()
            .map(|c| {
                let ty = match c.ty {
                    maybms_relational::ColumnType::Int => "INT",
                    maybms_relational::ColumnType::Str => "TEXT",
                    maybms_relational::ColumnType::Float => "FLOAT",
                    maybms_relational::ColumnType::Bool => "BOOL",
                };
                format!("{} {ty}", c.name)
            })
            .collect();
        format!("CREATE TABLE {CENSUS_REL} ({})", cols.join(", "))
    };

    let mut g = c.benchmark_group("e7_persistence");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("census_load", format!("mode=parse_per_row/rows={rows}")),
        &sql_rows,
        |b, sql_rows| {
            b.iter(|| {
                let mut s = Session::new();
                s.execute(&create).expect("create table");
                for sql in sql_rows {
                    s.execute(sql).expect("insert row");
                }
                std::hint::black_box(s.wsd().stats())
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::new("census_load", format!("mode=prepared_txn/rows={rows}")),
        &os,
        |b, os| {
            b.iter(|| {
                let mut s = Session::new();
                // one transaction per 512-row batch: BEGIN snapshots the
                // decomposition for rollback, so tiny batches would pay
                // that clone repeatedly
                load_into_session(&mut s, os, 512).expect("load");
                std::hint::black_box(s.wsd().stats())
            });
        },
    );
    g.finish();
}

fn bench_e7(c: &mut Criterion) {
    let n = if fast_mode() { 300 } else { 2_000 };
    let stmts = census_statements(n, 7);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let wal_db = dir.join(format!("maybms-e7-wal-{pid}.maybms"));
    let snap = dir.join(format!("maybms-e7-snap-{pid}.maybms"));
    let cleanup = |p: &std::path::Path| {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    };
    cleanup(&wal_db);
    cleanup(&snap);

    // Build a database whose entire state lives in the WAL (never
    // checkpointed) — the worst-case recovery input.
    {
        let mut s = Session::open(&wal_db).expect("create database");
        s.set_wal_sync(false); // measuring replay, not fsync latency
        for stmt in &stmts {
            s.run(stmt).expect("apply census statement");
        }
    }
    // Recover it once to obtain the decomposition for the snapshot paths.
    let wsd = Session::open(&wal_db).expect("recover").wsd().clone();
    let payload = encode_wsd(&wsd);

    let mut g = c.benchmark_group("e7_persistence");
    g.sample_size(10);

    g.bench_with_input(
        BenchmarkId::new("snapshot_save", format!("bytes={}", payload.len())),
        &wsd,
        |b, wsd| {
            b.iter(|| {
                let p = encode_wsd(wsd);
                write_snapshot(&snap, 1, 0, &p).expect("save snapshot");
                std::hint::black_box(p.len())
            });
        },
    );

    write_snapshot(&snap, 1, 0, &payload).expect("seed snapshot");
    g.bench_with_input(
        BenchmarkId::new("snapshot_load", format!("bytes={}", payload.len())),
        &snap,
        |b, snap| {
            b.iter(|| {
                let (_meta, p) = read_snapshot(snap).expect("read snapshot");
                std::hint::black_box(decode_wsd(&p).expect("decode snapshot").stats())
            });
        },
    );

    g.bench_with_input(
        BenchmarkId::new("wal_replay", format!("stmts={}", stmts.len())),
        &wal_db,
        |b, db| {
            b.iter(|| {
                std::hint::black_box(Session::open(db).expect("recover").wsd().stats())
            });
        },
    );
    g.finish();

    cleanup(&wal_db);
    cleanup(&snap);

    bench_insert_fsync(c, fast_mode());
    bench_census_load(c, fast_mode());
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
