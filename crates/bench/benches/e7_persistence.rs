//! E7: persistence — durability throughput on the census workload.
//!
//! Three paths, emitted to `BENCH_e7.json` (see the criterion shim):
//!
//! * `snapshot_save/bytes=N` — encode the census decomposition and write
//!   it as a paged, checksummed snapshot (atomic write-new + rename).
//!   MB/s = `N / mean_ns * 1e3`.
//! * `snapshot_load/bytes=N` — read + verify every page, decode and
//!   validate the decomposition. Same MB/s arithmetic.
//! * `wal_replay/stmts=N` — full crash recovery of a database that was
//!   never checkpointed: open the WAL, decode all N statement records and
//!   re-execute them. Statements/s = `N / mean_ns * 1e9`.
//!
//! The statement set is the census or-set workload (one `CREATE TABLE`
//! plus one weighted-or-set `INSERT` per row), the same data the E1–E4
//! experiments run on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_census::{census_schema, generate, inject, NoiseSpec, CENSUS_REL};
use maybms_core::codec::{decode_wsd, encode_wsd};
use maybms_sql::ast::{InsertValue, Statement};
use maybms_sql::Session;
use maybms_storage::{read_snapshot, wal_path_for, write_snapshot};

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// The census workload as a statement log: CREATE TABLE + one INSERT per
/// or-set row (weighted alternatives preserved exactly).
fn census_statements(n: usize, seed: u64) -> Vec<Statement> {
    let base = generate(n, seed);
    let os = inject(
        &base,
        NoiseSpec { rate: 0.02, max_width: 3, weighted: true, seed: seed ^ 0xE7 },
    )
    .expect("inject");
    let columns = census_schema()
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    let mut stmts = vec![Statement::CreateTable { name: CENSUS_REL.into(), columns }];
    for row in os.rows() {
        let vals: Vec<InsertValue> = row
            .iter()
            .map(|cell| match cell.certain_value() {
                Some(v) => InsertValue::Certain(v.clone()),
                None => InsertValue::Weighted(cell.alternatives().to_vec()),
            })
            .collect();
        stmts.push(Statement::Insert { table: CENSUS_REL.into(), rows: vec![vals] });
    }
    stmts
}

fn bench_e7(c: &mut Criterion) {
    let n = if fast_mode() { 300 } else { 2_000 };
    let stmts = census_statements(n, 7);
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let wal_db = dir.join(format!("maybms-e7-wal-{pid}.maybms"));
    let snap = dir.join(format!("maybms-e7-snap-{pid}.maybms"));
    let cleanup = |p: &std::path::Path| {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    };
    cleanup(&wal_db);
    cleanup(&snap);

    // Build a database whose entire state lives in the WAL (never
    // checkpointed) — the worst-case recovery input.
    {
        let mut s = Session::open(&wal_db).expect("create database");
        s.set_wal_sync(false); // measuring replay, not fsync latency
        for stmt in &stmts {
            s.run(stmt).expect("apply census statement");
        }
    }
    // Recover it once to obtain the decomposition for the snapshot paths.
    let wsd = Session::open(&wal_db).expect("recover").wsd().clone();
    let payload = encode_wsd(&wsd);

    let mut g = c.benchmark_group("e7_persistence");
    g.sample_size(10);

    g.bench_with_input(
        BenchmarkId::new("snapshot_save", format!("bytes={}", payload.len())),
        &wsd,
        |b, wsd| {
            b.iter(|| {
                let p = encode_wsd(wsd);
                write_snapshot(&snap, 1, &p).expect("save snapshot");
                std::hint::black_box(p.len())
            });
        },
    );

    write_snapshot(&snap, 1, &payload).expect("seed snapshot");
    g.bench_with_input(
        BenchmarkId::new("snapshot_load", format!("bytes={}", payload.len())),
        &snap,
        |b, snap| {
            b.iter(|| {
                let (_meta, p) = read_snapshot(snap).expect("read snapshot");
                std::hint::black_box(decode_wsd(&p).expect("decode snapshot").stats())
            });
        },
    );

    g.bench_with_input(
        BenchmarkId::new("wal_replay", format!("stmts={}", stmts.len())),
        &wal_db,
        |b, db| {
            b.iter(|| {
                std::hint::black_box(Session::open(db).expect("recover").wsd().stats())
            });
        },
    );
    g.finish();

    cleanup(&wal_db);
    cleanup(&snap);
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
