//! E11: observability overhead — the cost of the metrics layer on the
//! engine's two hottest instrumented paths, emitted to `BENCH_e11.json`.
//!
//! Each path is measured with metrics recording enabled
//! (`maybms_obs::set_enabled(true)`, the default) and with it disabled
//! at runtime (one relaxed atomic load per call site is all that
//! remains). Because the quantity of interest is a ±3% *difference*,
//! the two variants are interleaved call-by-call — obs on, obs off,
//! obs on, … — so slow machine-load drift lands on both sides equally
//! and cancels out of the comparison, instead of being measured in two
//! separate windows as an ordinary A-then-B bench would. The paired
//! means are then reported under the usual criterion ids via
//! `iter_custom`. The acceptance target is an enabled-vs-disabled
//! delta of at most ~3% on both:
//!
//! * `wal_append/obs={on,off}/rows=N` — the E7 durable-insert path: a
//!   fresh database per iteration, one census or-set INSERT per row,
//!   autocommitted. WAL fsync is **off** so the measurement exposes the
//!   append/frame/counter path itself rather than disk latency (with
//!   real fsyncs the metric cost vanishes entirely into the sync).
//! * `multijoin/obs={on,off}/n=N` — the E10 star-join path through the
//!   vectorized executor: per-operator row counters, memo hit/miss
//!   counters and worker-pool accounting all fire here.
//!
//! For the compile-time variant, build with the bench crate's `obs-off`
//! feature (`maybms-obs/off`): every metric operation compiles to
//! nothing, bounding what the runtime flag could possibly leave behind.
//! The ids are the same, so the two JSON files diff directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_census::{census_schema, generate, inject, row_statement, NoiseSpec, CENSUS_REL};
use maybms_core::exec::{compile, Executor};
use maybms_core::wsd::Wsd;
use maybms_relational::{ColumnType, Expr, Schema, Value};
use maybms_sql::ast::Statement;
use maybms_sql::Session;
use maybms_storage::wal_path_for;

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// Deterministic integer mixer (splitmix64 finalizer), as in E10.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const N_OCCS: u64 = 200;
const N_STATES: u64 = 48;

/// A compact version of E10's star schema: a fact table with a sprinkle
/// of or-set noise plus two dimension tables — enough joins to light up
/// the vectorized engine's counters without E10's full setup cost.
fn star_wsd(n: usize) -> Wsd {
    let mut w = Wsd::new();
    w.add_relation(
        "persons",
        Schema::new(vec![
            ("pid", ColumnType::Int),
            ("occ_p", ColumnType::Int),
            ("state_p", ColumnType::Int),
        ]),
    )
    .expect("persons");
    for i in 0..n as u64 {
        let occ = (mix(i) % N_OCCS) * (mix(i) % N_OCCS) % N_OCCS;
        let state = mix(i ^ 0xABCD) % N_STATES;
        if mix(i ^ 0x5151) % 100 < 2 {
            w.push_orset(
                "persons",
                vec![
                    maybms_worldset::OrSetCell::certain(Value::Int(i as i64)),
                    maybms_worldset::OrSetCell::uniform(vec![
                        Value::Int(occ as i64),
                        Value::Int((occ as i64 + 1) % N_OCCS as i64),
                    ])
                    .expect("or-set"),
                    maybms_worldset::OrSetCell::certain(Value::Int(state as i64)),
                ],
            )
            .expect("push persons");
        } else {
            w.push_certain(
                "persons",
                vec![Value::Int(i as i64), Value::Int(occ as i64), Value::Int(state as i64)],
            )
            .expect("push persons");
        }
    }
    w.add_relation(
        "occs",
        Schema::new(vec![("occ_o", ColumnType::Int), ("wage_o", ColumnType::Int)]),
    )
    .expect("occs");
    for o in 0..N_OCCS {
        w.push_certain("occs", vec![Value::Int(o as i64), Value::Int((mix(o) % 75_000) as i64)])
            .expect("push occs");
    }
    w.add_relation(
        "states",
        Schema::new(vec![("state_s", ColumnType::Int), ("region_s", ColumnType::Int)]),
    )
    .expect("states");
    for s in 0..N_STATES {
        w.push_certain("states", vec![Value::Int(s as i64), Value::Int((s % 8) as i64)])
            .expect("push states");
    }
    w
}

fn star_query() -> maybms_core::algebra::Query {
    maybms_core::algebra::Query::table("persons")
        .join(
            maybms_core::algebra::Query::table("occs"),
            Expr::col("occ_p").eq(Expr::col("occ_o")),
        )
        .join(
            maybms_core::algebra::Query::table("states"),
            Expr::col("state_p")
                .eq(Expr::col("state_s"))
                .and(Expr::col("region_s").eq(Expr::lit(3i64))),
        )
        .project(["pid", "wage_o"])
}

/// The census workload as durable INSERT statements, as in E7.
fn census_statements(n: usize, seed: u64) -> (Vec<(String, ColumnType)>, Vec<Statement>) {
    let base = generate(n, seed);
    let os = inject(
        &base,
        NoiseSpec { rate: 0.02, max_width: 3, weighted: true, seed: seed ^ 0xE11 },
    )
    .expect("inject");
    let columns: Vec<(String, ColumnType)> = census_schema()
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    let stmts = os.rows().iter().map(|r| row_statement(r)).collect();
    (columns, stmts)
}

/// Interleaved A/B measurement: alternate the workload under
/// `set_enabled(true)` and `set_enabled(false)` call by call for
/// `rounds` rounds, timing each call into its side's accumulator.
/// Returns the per-call mean in nanoseconds as `(on, off)`. The strict
/// alternation is the point — on a machine whose background load drifts
/// over seconds, the drift hits both sides equally and drops out of the
/// on/off ratio.
fn paired_measure<F: FnMut()>(mut work: F, rounds: usize) -> (f64, f64) {
    // warm both variants before measuring
    for on in [true, false] {
        maybms_obs::set_enabled(on);
        work();
    }
    let mut total = [std::time::Duration::ZERO; 2];
    for _ in 0..rounds {
        for (slot, on) in [(0usize, true), (1usize, false)] {
            maybms_obs::set_enabled(on);
            let t = std::time::Instant::now();
            work();
            total[slot] += t.elapsed();
        }
    }
    maybms_obs::set_enabled(true); // leave the process in the default state
    (total[0].as_nanos() as f64 / rounds as f64, total[1].as_nanos() as f64 / rounds as f64)
}

/// Report a pre-measured per-call mean under a criterion id, so the
/// paired numbers land in `BENCH_e11.json` next to every other
/// experiment's.
fn report(g: &mut criterion::BenchmarkGroup<'_>, id: BenchmarkId, mean_ns: f64) {
    g.bench_with_input(id, &mean_ns, |b, mean_ns| {
        let ns = *mean_ns;
        b.iter_custom(|iters| std::time::Duration::from_nanos((ns * iters as f64) as u64));
    });
}

fn bench_e11(c: &mut Criterion) {
    let fast = fast_mode();
    let mut g = c.benchmark_group("e11_observability");
    g.sample_size(10);

    // -- WAL-append path (E7's durable-insert loop, sync off) ----------
    let rows = if fast { 60 } else { 200 };
    let (columns, stmts) = census_statements(rows, 11);
    let dir = std::env::temp_dir();
    let db = dir.join(format!("maybms-e11-{}.maybms", std::process::id()));
    let cleanup = |p: &std::path::Path| {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    };
    let (on_ns, off_ns) = paired_measure(
        || {
            cleanup(&db);
            let mut s = Session::open(&db).expect("create database");
            s.set_wal_sync(false);
            s.run(&Statement::CreateTable { name: CENSUS_REL.into(), columns: columns.clone() })
                .expect("create table");
            for stmt in &stmts {
                s.run(stmt).expect("insert");
            }
            std::hint::black_box(s.wal_len());
        },
        if fast { 20 } else { 600 },
    );
    cleanup(&db);
    report(&mut g, BenchmarkId::new("wal_append", format!("obs=on/rows={rows}")), on_ns);
    report(&mut g, BenchmarkId::new("wal_append", format!("obs=off/rows={rows}")), off_ns);

    // -- multi-join path (E10's star join, vectorized executor) --------
    let n = if fast { 1_000 } else { 4_000 };
    let wsd = star_wsd(n);
    let plan = compile(&star_query(), &wsd).expect("compile");
    let (on_ns, off_ns) = paired_measure(
        || {
            std::hint::black_box(Executor::sequential().run(&plan, &wsd).expect("run"));
        },
        if fast { 20 } else { 400 },
    );
    report(&mut g, BenchmarkId::new("multijoin", format!("obs=on/n={n}")), on_ns);
    report(&mut g, BenchmarkId::new("multijoin", format!("obs=off/n={n}")), off_ns);

    g.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);
