//! E8: replication — WAL-ship throughput and incremental-vs-full
//! checkpoint time on the census workload.
//!
//! Three paths, emitted to `BENCH_e8.json` (see the criterion shim):
//!
//! * `ship_catchup/stmts=N/bytes=B` — a fresh replica connects to a
//!   primary whose whole state lives in the WAL (N committed census
//!   statements, B bytes of log) over an in-process socket pair, and
//!   applies everything. Statements/s = `N / mean_ns * 1e9`; bytes/s =
//!   `B / mean_ns * 1e9`. This measures the full pipeline: cursor read,
//!   CRC framing, stream transport, decode, deterministic replay.
//! * `checkpoint/mode=full/bytes=B` — rewrite the whole census snapshot
//!   (every page) as a fresh base.
//! * `checkpoint/mode=incremental/bytes=B` — the same state with one
//!   late page changed: only the changed page goes to the overlay file.
//!   The ratio full/incremental is the page-diff win; both paths pay the
//!   same two WAL-swap fsyncs, so the gap is pure page I/O.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_census::{census_schema, generate, inject, row_statement, NoiseSpec, CENSUS_REL};
use maybms_core::codec::encode_wsd;
use maybms_sql::replication::{Primary, Replica};
use maybms_sql::ast::Statement;
use maybms_sql::Session;
use maybms_storage::{delta_path_for, wal_path_for, CheckpointKind, Database};

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(wal_path_for(p));
    let _ = std::fs::remove_file(delta_path_for(p));
}

/// The census workload as statements: CREATE TABLE + one or-set INSERT
/// per row (what the primary's WAL will hold).
fn census_statements(n: usize, seed: u64) -> Vec<Statement> {
    let base = generate(n, seed);
    let os = inject(
        &base,
        NoiseSpec { rate: 0.02, max_width: 3, weighted: true, seed: seed ^ 0xE8 },
    )
    .expect("inject");
    let columns = census_schema()
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    let mut stmts = vec![Statement::CreateTable { name: CENSUS_REL.into(), columns }];
    for row in os.rows() {
        stmts.push(row_statement(row));
    }
    stmts
}

fn bench_ship(c: &mut Criterion, fast: bool) {
    let n = if fast { 300 } else { 2_000 };
    let stmts = census_statements(n, 8);
    let db = std::env::temp_dir()
        .join(format!("maybms-e8-ship-{}.maybms", std::process::id()));
    cleanup(&db);

    // Build the primary: every statement committed to the WAL, never
    // checkpointed — the catch-up ships the whole history.
    let session = {
        let mut s = Session::open(&db).expect("create primary");
        s.set_wal_sync(false); // measuring shipping, not fsync latency
        for stmt in &stmts {
            s.run(stmt).expect("apply census statement");
        }
        s
    };
    let final_lsn = session.last_lsn().expect("durable");
    let wal_bytes = std::fs::metadata(wal_path_for(&db)).expect("wal").len();
    let primary = Primary::new(&db);

    let mut g = c.benchmark_group("e8_replication");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new(
            "ship_catchup",
            format!("stmts={}/bytes={wal_bytes}", stmts.len()),
        ),
        &primary,
        |b, primary| {
            b.iter(|| {
                let (ours, theirs) = std::os::unix::net::UnixStream::pair().expect("pair");
                let server = primary.spawn_serve(theirs);
                let mut replica = Replica::new();
                let mut conn = replica.connect(ours).expect("handshake");
                replica.sync_to(&mut conn, final_lsn).expect("catch up");
                assert_eq!(replica.applied_lsn(), final_lsn);
                drop(conn);
                let _ = server.join();
                std::hint::black_box(replica.applied_lsn())
            });
        },
    );
    g.finish();
    primary.stop();
    drop(session);
    cleanup(&db);

    bench_checkpoint(c, n);
}

/// Full-rewrite vs page-diff checkpoint of the same census state with a
/// one-page mutation (the incremental sweet spot the session hits after a
/// small transaction).
fn bench_checkpoint(c: &mut Criterion, n: usize) {
    let payload = {
        let mut s = Session::new();
        for stmt in census_statements(n, 9) {
            s.run(&stmt).expect("apply");
        }
        encode_wsd(s.wsd())
    };
    let db_path = std::env::temp_dir()
        .join(format!("maybms-e8-ckpt-{}.maybms", std::process::id()));
    cleanup(&db_path);
    let mut db = Database::open(&db_path).expect("open").db;
    db.set_sync(false);
    db.checkpoint_full(&payload).expect("seed base");

    // two variants, each one byte off near the end (so exactly one page
    // differs from the base) — alternating defeats the no-op check
    let variants: Vec<Vec<u8>> = (1u8..=2)
        .map(|i| {
            let mut v = payload.clone();
            let at = v.len() - 16;
            v[at] ^= i;
            v
        })
        .collect();

    let mut g = c.benchmark_group("e8_replication");
    g.sample_size(10);
    let mut flip = 0usize;
    g.bench_with_input(
        BenchmarkId::new("checkpoint", format!("mode=incremental/bytes={}", payload.len())),
        &variants,
        |b, variants| {
            b.iter(|| {
                flip = 1 - flip;
                let kind = db.checkpoint(&variants[flip]).expect("incremental checkpoint");
                assert!(
                    matches!(kind, CheckpointKind::Incremental { changed_pages: 1, .. }),
                    "expected a one-page incremental checkpoint, got {kind:?}"
                );
                std::hint::black_box(kind)
            });
        },
    );
    let mut flip = 0usize;
    g.bench_with_input(
        BenchmarkId::new("checkpoint", format!("mode=full/bytes={}", payload.len())),
        &variants,
        |b, variants| {
            b.iter(|| {
                flip = 1 - flip;
                let kind = db.checkpoint_full(&variants[flip]).expect("full checkpoint");
                std::hint::black_box(kind)
            });
        },
    );
    g.finish();
    cleanup(&db_path);
}

fn bench_e8(c: &mut Criterion) {
    bench_ship(c, fast_mode());
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
