//! Criterion tracking for E3: each suite query on the decomposition vs the
//! same query on one world (DESIGN.md §3, E3). The paper's headline result
//! is that the two are close.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_e3(c: &mut Criterion) {
    let n = 3_000;
    let setup = maybms_bench::e3_setup(n, 0.002, 3).expect("e3 setup");
    let suite = maybms_bench::queries::query_suite();

    let mut g = c.benchmark_group("e3_queries");
    g.sample_size(10);
    for q in &suite {
        g.bench_with_input(
            BenchmarkId::new("single_world", q.name),
            &q.query,
            |b, query| {
                let wq = query.to_world_query();
                b.iter(|| std::hint::black_box(wq.eval(&setup.single_world).expect("baseline")));
            },
        );
        g.bench_with_input(BenchmarkId::new("wsd", q.name), &q.query, |b, query| {
            b.iter(|| std::hint::black_box(query.eval(&setup.wsd).expect("wsd eval")));
        });
    }
    g.finish();

    let rows = maybms_bench::e3_queries(&setup).expect("e3 harness");
    for r in &rows {
        println!(
            "e3: {} single={:?} wsd={:?} ratio={:.2}x",
            r.query, r.single_world, r.wsd, r.ratio
        );
    }
}

/// Hot-path comparison: the hash-partitioned equi-join against the
/// nested-loop reference (`join_op_nested`) on a census self-join keyed by
/// the unique `serial` column — pair generation dominates, so this
/// isolates the partitioning win.
fn bench_join_paths(c: &mut Criterion) {
    use maybms_core::algebra::{join_op, join_op_nested, qualify_op};
    use maybms_relational::Expr;

    let n = 2_500;
    let setup = maybms_bench::e3_setup(n, 0.002, 3).expect("join path setup");
    let mut base = setup.wsd.clone();
    qualify_op(&mut base, maybms_census::CENSUS_REL, "x", "xq").expect("qualify x");
    qualify_op(&mut base, maybms_census::CENSUS_REL, "y", "yq").expect("qualify y");
    let pred = Expr::col("x.serial").eq(Expr::col("y.serial"));

    let mut g = c.benchmark_group("e3_join_path");
    g.sample_size(10);
    g.bench_function("hash_partitioned", |b| {
        b.iter(|| {
            let mut w = base.clone();
            join_op(&mut w, "xq", "yq", &pred, "out").expect("hash join");
            std::hint::black_box(w.relation("out").expect("out").tuples.len())
        });
    });
    g.bench_function("nested_loop", |b| {
        b.iter(|| {
            let mut w = base.clone();
            join_op_nested(&mut w, "xq", "yq", &pred, "out").expect("nested join");
            std::hint::black_box(w.relation("out").expect("out").tuples.len())
        });
    });
    g.finish();
}

/// Hot-path comparison: dirty-set incremental normalization against the
/// full-pass reference after a point mutation of one component.
fn bench_normalize_paths(c: &mut Criterion) {
    use maybms_core::normalize::{normalize, normalize_from_scratch};

    let n = 3_000;
    let setup = maybms_bench::e3_setup(n, 0.01, 3).expect("normalize path setup");
    let mut base = setup.wsd.clone();
    normalize(&mut base); // reach a fixpoint first
    // the point mutation each iteration re-applies: kill one row of one
    // component (with at least two rows) through the tracked API
    let victim = base
        .live_components()
        .into_iter()
        .find(|&i| base.component(i).expect("live").num_rows() >= 2)
        .expect("some multi-row component");

    let mut g = c.benchmark_group("e3_normalize_path");
    g.sample_size(10);
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut w = base.clone();
            let comp = w.component_mut(victim).expect("live");
            comp.retain_rows(|r| r.index() != 0);
            comp.renormalize();
            normalize(&mut w);
            std::hint::black_box(w.num_components())
        });
    });
    g.bench_function("from_scratch", |b| {
        b.iter(|| {
            let mut w = base.clone();
            let comp = w.component_mut(victim).expect("live");
            comp.retain_rows(|r| r.index() != 0);
            comp.renormalize();
            normalize_from_scratch(&mut w);
            std::hint::black_box(w.num_components())
        });
    });

    // Steady state: re-normalizing an already-clean decomposition (what
    // every operator's extract step pays). The dirty-set path drains an
    // empty set; the full pass rescans ~1.5k components to change nothing.
    // No clone inside the timed loop — both calls are idempotent here.
    let mut inc = base.clone();
    normalize(&mut inc);
    let mut scratch = inc.clone();
    g.bench_function("incremental_steady_state", |b| {
        b.iter(|| {
            normalize(&mut inc);
            std::hint::black_box(inc.num_components())
        });
    });
    g.bench_function("from_scratch_steady_state", |b| {
        b.iter(|| {
            normalize_from_scratch(&mut scratch);
            std::hint::black_box(scratch.num_components())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_e3, bench_join_paths, bench_normalize_paths);
criterion_main!(benches);
