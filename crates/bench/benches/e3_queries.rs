//! Criterion tracking for E3: each suite query on the decomposition vs the
//! same query on one world (DESIGN.md §3, E3). The paper's headline result
//! is that the two are close.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_e3(c: &mut Criterion) {
    let n = 3_000;
    let setup = maybms_bench::e3_setup(n, 0.002, 3).expect("e3 setup");
    let suite = maybms_bench::queries::query_suite();

    let mut g = c.benchmark_group("e3_queries");
    g.sample_size(10);
    for q in &suite {
        g.bench_with_input(
            BenchmarkId::new("single_world", q.name),
            &q.query,
            |b, query| {
                let wq = query.to_world_query();
                b.iter(|| std::hint::black_box(wq.eval(&setup.single_world).expect("baseline")));
            },
        );
        g.bench_with_input(BenchmarkId::new("wsd", q.name), &q.query, |b, query| {
            b.iter(|| std::hint::black_box(query.eval(&setup.wsd).expect("wsd eval")));
        });
    }
    g.finish();

    let rows = maybms_bench::e3_queries(&setup).expect("e3 harness");
    for r in &rows {
        println!(
            "e3: {} single={:?} wsd={:?} ratio={:.2}x",
            r.query, r.single_world, r.wsd, r.ratio
        );
    }
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
