//! E6: worker-pool scaling of the embarrassingly parallel engine paths.
//!
//! Sweeps the worker count over (a) the confidence path — per-cluster
//! joint-choice enumeration on a census decomposition whose components
//! were merged into medium-sized correlation clusters, the workload the
//! pool was built for — and (b) the from-scratch normalize path
//! (per-component scans). Emits `BENCH_e6.json` with one entry per
//! `path/workers` pair; the recorded `cpus` field gives the machine's
//! available parallelism, without which the sweep cannot be interpreted
//! (a 1-CPU container cannot show wall-clock speedup at any worker
//! count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_core::exec::WorkerPool;
use maybms_core::normalize::normalize_from_scratch_in;
use maybms_core::prob::{tuple_confidence_opts_in, ProbOptions};
use maybms_core::wsd::Wsd;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// A census decomposition with its independent or-set components merged
/// into correlation clusters of roughly `target_joint` joint choices
/// each — the shape that makes confidence computation expensive and the
/// per-cluster fan-out worthwhile.
fn correlated_census(n: usize, rate: f64, target_joint: u64, seed: u64) -> Wsd {
    let base = maybms_census::generate(n, seed);
    let os = maybms_census::inject(
        &base,
        maybms_census::NoiseSpec { rate, max_width: 3, weighted: true, seed: seed ^ 0xE6 },
    )
    .expect("inject");
    let mut wsd = maybms_census::to_wsd(&os).expect("decompose");
    // Pack whole tuples' components into each merge group (flushing only
    // at tuple boundaries): no tuple straddles two groups, so confidence
    // clustering sees exactly one cluster per group instead of
    // chain-unioning the groups into one giant cluster.
    let per_tuple: Vec<Vec<usize>> = wsd
        .relation(maybms_census::CENSUS_REL)
        .expect("census relation")
        .tuples
        .iter()
        .map(|t| {
            let mut comps: Vec<usize> = t
                .cells
                .iter()
                .enumerate()
                .filter(|(_, c)| matches!(c, maybms_core::TemplateCell::Open))
                .map(|(i, _)| {
                    wsd.field_loc(maybms_core::Field::attr(t.tid, i as u32))
                        .expect("mapped")
                        .0
                })
                .collect();
            comps.sort_unstable();
            comps.dedup();
            comps
        })
        .collect();
    let mut chunk: Vec<usize> = Vec::new();
    let mut joint: u64 = 1;
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for comps in per_tuple {
        let mut rows: u64 = 1;
        for &c in &comps {
            rows = rows.saturating_mul(wsd.component(c).expect("live").num_rows() as u64);
        }
        if rows <= 1 {
            continue; // fully certain tuple
        }
        if joint.saturating_mul(rows) > target_joint && chunk.len() >= 2 {
            groups.push(std::mem::take(&mut chunk));
            joint = 1;
        }
        joint = joint.saturating_mul(rows);
        chunk.extend(comps);
    }
    if chunk.len() >= 2 {
        groups.push(chunk);
    }
    for g in &groups {
        wsd.merge_components(g).expect("merge");
    }
    wsd.compact();
    if std::env::var("MAYBMS_E6_DEBUG").is_ok() {
        let s = wsd.stats();
        eprintln!(
            "e6 debug: {} groups, stats {:?}",
            groups.len(),
            s
        );
    }
    wsd
}

fn bench_e6(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_parallel");
    g.sample_size(10);

    let (n, rate, target_joint) = if fast_mode() {
        (400, 0.02, 1u64 << 11)
    } else {
        (1_000, 0.02, 1u64 << 13)
    };

    // (a) confidence: exact per-cluster enumeration over merged clusters
    let wsd = correlated_census(n, rate, target_joint, 5);
    let opts = ProbOptions { exact_cap: 1 << 20, ..Default::default() };
    for workers in WORKER_SWEEP {
        let pool = WorkerPool::new(workers);
        g.bench_with_input(
            BenchmarkId::new("confidence", workers),
            &wsd,
            |b, wsd| {
                b.iter(|| {
                    std::hint::black_box(
                        tuple_confidence_opts_in(wsd, maybms_census::CENSUS_REL, opts, &pool)
                            .expect("confidence"),
                    )
                });
            },
        );
    }

    // (b) normalize: full-pass per-component scans on the noisy census
    // decomposition (clone cost is identical across worker counts)
    let noisy = {
        let base = maybms_census::generate(n * 4, 7);
        let os = maybms_census::inject(
            &base,
            maybms_census::NoiseSpec { rate: 0.05, max_width: 4, weighted: false, seed: 11 },
        )
        .expect("inject");
        maybms_census::to_wsd(&os).expect("decompose")
    };
    for workers in WORKER_SWEEP {
        let pool = WorkerPool::new(workers);
        g.bench_with_input(
            BenchmarkId::new("normalize", workers),
            &noisy,
            |b, noisy| {
                b.iter(|| {
                    let mut w = noisy.clone();
                    normalize_from_scratch_in(&mut w, &pool);
                    std::hint::black_box(w.stats())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
