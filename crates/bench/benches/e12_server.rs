//! E12: the concurrent server — commit and query throughput versus
//! connection count, emitted to `BENCH_e12.json` (see the criterion
//! shim).
//!
//! Two paths, swept over `conns` ∈ {1, 2, 4, 8}:
//!
//! * `commits/conns=N/fsyncs_per_commit=X` — N TCP clients auto-commit
//!   INSERTs concurrently; each iteration is one round of
//!   `N × PER_CONN` commits, so commits/s =
//!   `N * PER_CONN / mean_ns * 1e9`. `X` (measured on a calibration
//!   round before timing) is the group-commit headline: the WAL fsyncs
//!   consumed per acknowledged commit, which must drop below 1 as soon
//!   as writers contend (≥ 4).
//! * `queries/conns=N` — N TCP clients run snapshot reads concurrently;
//!   queries/s = `N * PER_CONN / mean_ns * 1e9`. Reads share `Arc`
//!   snapshots and never queue behind the writer.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_server::{Client, Server, ServerConfig};
use maybms_sql::{GroupCommitConfig, Session};
use maybms_storage::{delta_path_for, wal_path_for};

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

fn cleanup(p: &std::path::Path) {
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(wal_path_for(p));
    let _ = std::fs::remove_file(delta_path_for(p));
}

/// One round: `conns` clients each commit `per_conn` inserts, all
/// concurrent. Returns when every ack has arrived.
fn commit_round(addr: std::net::SocketAddr, conns: usize, per_conn: usize, round: usize) {
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            thread::spawn(move || {
                let mut conn = Client::connect(addr).expect("connect");
                for i in 0..per_conn {
                    conn.query_ok(&format!(
                        "INSERT INTO bench VALUES ({c}, {})",
                        round * per_conn + i
                    ))
                    .expect("commit");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
}

/// One round: `conns` clients each run `per_conn` snapshot reads.
fn query_round(addr: std::net::SocketAddr, conns: usize, per_conn: usize) {
    let workers: Vec<_> = (0..conns)
        .map(|_| {
            thread::spawn(move || {
                let mut conn = Client::connect(addr).expect("connect");
                for _ in 0..per_conn {
                    conn.query_ok("SELECT CERTAIN client, i FROM bench WHERE client = 0")
                        .expect("read");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
}

fn bench_server(c: &mut Criterion) {
    let fast = fast_mode();
    let per_conn = if fast { 20 } else { 100 };
    let sample_size = if fast { 10 } else { 20 };

    for conns in [1usize, 2, 4, 8] {
        let db = std::env::temp_dir().join(format!(
            "maybms-e12-{}-{conns}.maybms",
            std::process::id()
        ));
        cleanup(&db);
        let mut session = Session::open(&db).expect("open");
        session.execute("CREATE TABLE bench (client INT, i INT)").expect("create");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let cfg = ServerConfig {
            group: GroupCommitConfig {
                // a short door-hold so concurrent commits actually share
                // fsyncs instead of racing the writer's dequeue
                group_window: Duration::from_micros(500),
                ..GroupCommitConfig::default()
            },
            ..ServerConfig::default()
        };
        let server = Server::serve_with(session, listener, cfg).expect("serve");
        let addr = server.addr();

        // calibration round: fsyncs consumed per acknowledged commit,
        // read as a `wal.fsyncs` delta off the process-global registry
        // (the session that owns `wal_sync_count` lives inside the
        // server until shutdown)
        let syncs = |name: &str| -> u64 {
            maybms_obs::global()
                .snapshot()
                .into_iter()
                .find_map(|(n, v)| match v {
                    maybms_obs::MetricValue::Counter(x) if n == name => Some(x),
                    _ => None,
                })
                .unwrap_or(0)
        };
        let s0 = syncs("wal.fsyncs");
        commit_round(addr, conns, per_conn, 1_000_000);
        let fsyncs_per_commit = (syncs("wal.fsyncs") - s0) as f64 / (conns * per_conn) as f64;

        let mut g = c.benchmark_group("e12_server");
        g.sample_size(sample_size);
        let mut round = 0usize;
        g.bench_with_input(
            BenchmarkId::new(
                "commits",
                format!("conns={conns}/fsyncs_per_commit={fsyncs_per_commit:.3}"),
            ),
            &addr,
            |b, &addr| {
                b.iter(|| {
                    round += 1;
                    commit_round(addr, conns, per_conn, round);
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("queries", format!("conns={conns}")),
            &addr,
            |b, &addr| {
                b.iter(|| query_round(addr, conns, per_conn));
            },
        );
        g.finish();

        drop(server.shutdown().expect("shutdown"));
        cleanup(&db);
    }
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
