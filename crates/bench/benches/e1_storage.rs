//! Criterion tracking for E1: building the decomposition of a noisy census
//! relation and measuring its storage overhead (DESIGN.md §3, E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_e1(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_storage");
    g.sample_size(10);
    let n = 2_000;
    for rate in [0.001, 0.01, 0.05] {
        g.bench_with_input(BenchmarkId::new("decompose", format!("{rate}")), &rate, |b, &rate| {
            let base = maybms_census::generate(n, 7);
            let os = maybms_census::inject(
                &base,
                maybms_census::NoiseSpec { rate, max_width: 4, weighted: false, seed: 9 },
            )
            .expect("inject");
            b.iter(|| {
                let wsd = maybms_census::to_wsd(&os).expect("decompose");
                std::hint::black_box(wsd.size_bytes())
            });
        });
    }
    g.finish();

    // Print the actual experiment table once per bench run so `cargo bench`
    // output doubles as the experiment record.
    let rows =
        maybms_bench::e1_storage(n, &[0.001, 0.01, 0.05], 4, 7).expect("e1 harness");
    for r in &rows {
        println!(
            "e1: rate={:.3}% worlds={} overhead={:+.2}%",
            r.rate * 100.0,
            r.worlds,
            r.overhead_pct
        );
    }
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
