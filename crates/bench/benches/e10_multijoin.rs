//! E10: multi-join execution — vectorized operators and cost-based join
//! ordering against the tuple-at-a-time interpreter on AST order.
//!
//! The workload is a census-flavored star join: a wide `persons` fact
//! table (IPUMS-coded occupation and state columns, a sprinkle of or-set
//! noise on a non-join attribute) joined through `occs`, `states` and
//! `regions` dimension tables, with a highly selective literal predicate
//! on the smallest one. Selectivities are deliberately skewed: in AST
//! order every intermediate stays fact-sized until the final join, while
//! the cost model (fed by `WsdStats`) starts from the selected tiny
//! dimension and keeps every intermediate a fraction of that.
//!
//! Four engine/order combinations are measured:
//! `tuple/ast`, `tuple/cost`, `vectorized/ast`, `vectorized/cost` —
//! `BENCH_e10.json` records them all, and the headline claim is
//! `vectorized/cost` vs `tuple/ast` (the PR-7 acceptance bar is ≥2× on
//! a 1-CPU container, so the gain must come from batching and join
//! order, not parallelism; rerun on multicore for the worker sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_core::algebra::Query;
use maybms_core::exec::{compile, Executor};
use maybms_core::wsd::Wsd;
use maybms_relational::{ColumnType, Expr, Schema, Value};
use maybms_sql::optimizer::optimize_with_stats;
use maybms_worldset::OrSetCell;

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// Deterministic integer mixer (splitmix64 finalizer) — the bench needs
/// skew and reproducibility, not statistical quality.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const N_OCCS: u64 = 500; // IPUMS `occ` domain
const N_STATES: u64 = 48;
const N_REGIONS: u64 = 16;

/// The star-schema decomposition: `persons(pid, occ_p, state_p, age_p)`
/// (fact, with `noise_rate` or-set cells on `age_p`), `occs(occ_o,
/// wage_o)`, `states(state_s, region_s)`, `regions(region_r, rname)`.
fn star_wsd(n: usize, noise_rate: f64) -> Wsd {
    let mut w = Wsd::new();
    w.add_relation(
        "persons",
        Schema::new(vec![
            ("pid", ColumnType::Int),
            ("occ_p", ColumnType::Int),
            ("state_p", ColumnType::Int),
            ("age_p", ColumnType::Int),
        ]),
    )
    .expect("persons");
    for i in 0..n as u64 {
        // occupation skew: squaring concentrates mass on few codes
        let occ = (mix(i) % N_OCCS) * (mix(i) % N_OCCS) % N_OCCS;
        let state = mix(i ^ 0xABCD) % N_STATES;
        let age = 18 + (mix(i ^ 0x77) % 73);
        let noisy = (mix(i ^ 0x5151) % 10_000) as f64 / 10_000.0 < noise_rate;
        if noisy {
            // an uncertain age: exercises the open-template fallback of
            // both engines identically
            w.push_orset(
                "persons",
                vec![
                    OrSetCell::certain(Value::Int(i as i64)),
                    OrSetCell::certain(Value::Int(occ as i64)),
                    OrSetCell::certain(Value::Int(state as i64)),
                    OrSetCell::uniform(vec![
                        Value::Int(age as i64),
                        Value::Int(age as i64 + 1),
                    ])
                    .expect("or-set"),
                ],
            )
            .expect("push persons");
        } else {
            w.push_certain(
                "persons",
                vec![
                    Value::Int(i as i64),
                    Value::Int(occ as i64),
                    Value::Int(state as i64),
                    Value::Int(age as i64),
                ],
            )
            .expect("push persons");
        }
    }
    w.add_relation(
        "occs",
        Schema::new(vec![("occ_o", ColumnType::Int), ("wage_o", ColumnType::Int)]),
    )
    .expect("occs");
    for o in 0..N_OCCS {
        w.push_certain(
            "occs",
            vec![Value::Int(o as i64), Value::Int((mix(o) % 75_000) as i64)],
        )
        .expect("push occs");
    }
    w.add_relation(
        "states",
        Schema::new(vec![("state_s", ColumnType::Int), ("region_s", ColumnType::Int)]),
    )
    .expect("states");
    for s in 0..N_STATES {
        w.push_certain(
            "states",
            vec![Value::Int(s as i64), Value::Int((s % N_REGIONS) as i64)],
        )
        .expect("push states");
    }
    w.add_relation(
        "regions",
        Schema::new(vec![("region_r", ColumnType::Int), ("rname", ColumnType::Str)]),
    )
    .expect("regions");
    for r in 0..N_REGIONS {
        w.push_certain(
            "regions",
            vec![Value::Int(r as i64), Value::str(format!("r{r}"))],
        )
        .expect("push regions");
    }
    w
}

/// The 4-way join in its written (AST) order: fact first, the selective
/// dimension last — the order a naive FROM-clause translation produces.
fn star_query() -> Query {
    Query::table("persons")
        .join(Query::table("occs"), Expr::col("occ_p").eq(Expr::col("occ_o")))
        .join(Query::table("states"), Expr::col("state_p").eq(Expr::col("state_s")))
        .join(
            Query::table("regions"),
            Expr::col("region_s")
                .eq(Expr::col("region_r"))
                .and(Expr::col("rname").eq(Expr::lit("r7"))),
        )
        .project(["pid", "wage_o", "rname"])
}

fn bench_e10(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_multijoin");
    g.sample_size(10);

    let n = if fast_mode() { 1_500 } else { 6_000 };
    let wsd = star_wsd(n, 0.02);
    let raw = star_query();
    let mut stats = maybms_core::stats::WsdStats::new();
    let opt = optimize_with_stats(&raw, &wsd, &mut stats).expect("optimize");

    // sanity: all four pipelines agree before anything is timed
    let reference = raw.eval(&wsd).expect("eval");
    let ref_rows = reference.relation("result").expect("result").tuples.len();
    let out = opt.eval(&wsd).expect("eval");
    assert_eq!(
        out.relation("result").expect("result").tuples.len(),
        ref_rows,
        "cost order changed the answer cardinality"
    );
    for (label, q) in [("ast", &raw), ("cost", &opt)] {
        let plan = compile(q, &wsd).expect("compile");
        let out = Executor::sequential().run(&plan, &wsd).expect("run");
        assert_eq!(
            out.relation("result").expect("result").tuples.len(),
            ref_rows,
            "vectorized/{label} changed the answer cardinality"
        );
    }

    for (engine, order, q) in [
        ("tuple", "ast", &raw),
        ("tuple", "cost", &opt),
        ("vectorized", "ast", &raw),
        ("vectorized", "cost", &opt),
    ] {
        g.bench_with_input(BenchmarkId::new(engine, order), q, |b, q| {
            if engine == "tuple" {
                b.iter(|| std::hint::black_box(q.eval(&wsd).expect("eval")));
            } else {
                let plan = compile(q, &wsd).expect("compile");
                b.iter(|| {
                    std::hint::black_box(
                        Executor::sequential().run(&plan, &wsd).expect("run"),
                    )
                });
            }
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);
