//! E9: the cost of the fault-injection VFS boundary, and recovery speed
//! under a fault storm.
//!
//! Three paths, emitted to `BENCH_e9.json` (see the criterion shim):
//!
//! * `wal_append/path={direct_file,vfs_std,vfs_fault}/records=N` — the
//!   e7 WAL append hot path (fsync off, so the file-op dispatch cost is
//!   not drowned in sync latency) three ways: a hand-rolled
//!   `std::fs::File` loop writing the identical frames (the
//!   no-abstraction baseline), the real [`Wal`] through the production
//!   [`StdVfs`], and the real [`Wal`] through an in-memory
//!   [`FaultVfs`] with an empty schedule. `vfs_std / direct_file` is the
//!   VFS-indirection overhead — expected ≈ 1 (one dynamic dispatch per
//!   file op against a buffered write). Records/s = `N / mean_ns * 1e9`.
//! * `recovery/fault_storm/stmts=N` — full session recovery (open,
//!   snapshot decode, WAL replay with torn-tail truncation) of a
//!   database image produced by a faulty run: a checkpoint mid-history,
//!   a lying fsync, and a torn final append, then a crash. Measures that
//!   hardened recovery stays cheap when it actually has damage to clean
//!   up.

use std::io::Write as _;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_sql::Session;
use maybms_storage::crc::crc32;
use maybms_storage::{FaultOp, FaultSpec, FaultVfs, Vfs, Wal, WAL_HEADER_LEN};

fn fast_mode() -> bool {
    std::env::var("MAYBMS_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

/// A record payload shaped like a typical encoded INSERT.
fn payload() -> Vec<u8> {
    (0..96u32).map(|i| (i * 31 % 251) as u8).collect()
}

/// The no-abstraction baseline: identical frames (len | crc | payload)
/// appended to a `std::fs::File` with a hand-rolled loop — what the WAL
/// write path would cost with zero indirection. Creation follows the
/// same protocol as [`Wal::create`] (header to a temp sibling, fsync,
/// rename, reopen), so the measured difference against `vfs_std` is the
/// per-operation dispatch cost alone.
fn direct_file_append(path: &std::path::Path, records: usize, payload: &[u8]) -> u64 {
    let _ = std::fs::remove_file(path);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .expect("create baseline log");
        file.write_all(&vec![0u8; WAL_HEADER_LEN as usize]).expect("header");
        file.sync_all().expect("sync header");
    }
    std::fs::rename(&tmp, path).expect("publish baseline log");
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("reopen baseline log");
    use std::io::Seek as _;
    let mut frame = Vec::with_capacity(8 + payload.len());
    let mut end = WAL_HEADER_LEN;
    for _ in 0..records {
        frame.clear();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // one seek per append, exactly like `Wal::append`
        file.seek(std::io::SeekFrom::Start(end)).expect("seek end");
        file.write_all(&frame).expect("append");
        end += frame.len() as u64;
    }
    WAL_HEADER_LEN + (records * (8 + payload.len())) as u64
}

fn bench_wal_append(c: &mut Criterion, fast: bool) {
    let records = if fast { 200 } else { 2_000 };
    let rec = payload();
    let dir = std::env::temp_dir();
    let pid = std::process::id();

    let mut g = c.benchmark_group("e9_faults");
    g.sample_size(10);

    let direct = dir.join(format!("maybms-e9-direct-{pid}.wal"));
    g.bench_with_input(
        BenchmarkId::new("wal_append", format!("path=direct_file/records={records}")),
        &rec,
        |b, rec| {
            b.iter(|| std::hint::black_box(direct_file_append(&direct, records, rec)));
        },
    );
    let _ = std::fs::remove_file(&direct);

    let std_log = dir.join(format!("maybms-e9-std-{pid}.wal"));
    g.bench_with_input(
        BenchmarkId::new("wal_append", format!("path=vfs_std/records={records}")),
        &rec,
        |b, rec| {
            b.iter(|| {
                let _ = std::fs::remove_file(&std_log);
                let mut wal = Wal::create(&std_log, 0, 0).expect("create WAL");
                wal.set_sync(false);
                for _ in 0..records {
                    wal.append(rec).expect("append");
                }
                std::hint::black_box(wal.len())
            });
        },
    );
    let _ = std::fs::remove_file(&std_log);

    let fault_log = std::path::PathBuf::from("/e9/bench.wal");
    g.bench_with_input(
        BenchmarkId::new("wal_append", format!("path=vfs_fault/records={records}")),
        &rec,
        |b, rec| {
            b.iter(|| {
                // a fresh in-memory FaultVfs per iteration: no real I/O at
                // all, so this bounds the FaultVfs bookkeeping cost
                let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new());
                let mut wal = Wal::create_with_vfs(vfs, &fault_log, 0, 0).expect("create WAL");
                wal.set_sync(false);
                for _ in 0..records {
                    wal.append(rec).expect("append");
                }
                std::hint::black_box(wal.len())
            });
        },
    );
    g.finish();
}

fn bench_recovery_storm(c: &mut Criterion, fast: bool) {
    let stmts = if fast { 150 } else { 600 };
    let db = std::path::Path::new("/e9/storm.maybms");

    // Build the crashed image once: a history with a checkpoint in the
    // middle, then a lying fsync swallowing one acked statement, then a
    // torn (short-written) final append, then a crash.
    let vfs = FaultVfs::new();
    {
        let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
        let mut s = Session::open_with_vfs(db, arc).expect("create database");
        s.execute("CREATE TABLE t (x INT, tag TEXT)").expect("create");
        for i in 0..stmts {
            if i == stmts / 2 {
                s.execute("CHECKPOINT").expect("checkpoint");
            }
            if i == stmts - 2 {
                // the penultimate statement's fsync lies, the last append tears
                vfs.push_fault(FaultSpec::lie_sync(vfs.op_count(FaultOp::Sync)));
                vfs.push_fault(FaultSpec::short_write(vfs.op_count(FaultOp::Write) + 1, 11));
            }
            let sql = format!("INSERT INTO t VALUES ({{{}: 0.5, {}: 0.5}}, 'r{i}')", 2 * i, 2 * i + 1);
            let _ = s.execute(&sql); // the torn final append is allowed to fail
        }
    }
    vfs.crash();
    vfs.clear_schedule();
    let image = vfs.durable_files();
    assert!(!image.is_empty(), "the storm must leave a durable image");

    let mut g = c.benchmark_group("e9_faults");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("recovery", format!("fault_storm/stmts={stmts}")),
        &image,
        |b, image| {
            b.iter(|| {
                // fresh VFS per iteration: recovery may truncate the torn
                // tail, and each run must see the damaged image again
                let vfs = FaultVfs::new();
                for (p, bytes) in image {
                    vfs.install(p, bytes.clone());
                }
                let s = Session::open_with_vfs(db, Arc::new(vfs) as Arc<dyn Vfs>)
                    .expect("recovery must succeed");
                std::hint::black_box(s.wsd().stats())
            });
        },
    );
    g.finish();
}

fn bench_e9(c: &mut Criterion) {
    let fast = fast_mode();
    bench_wal_append(c, fast);
    bench_recovery_storm(c, fast);
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
