//! Criterion tracking for E5: the paper's §2 medical example, end to end
//! (selection + projection + normalization + prob()). Must yield 0.4.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e5(c: &mut Criterion) {
    c.bench_function("e5_demo_pipeline", |b| {
        b.iter(|| {
            let p = maybms_bench::e5_demo().expect("e5");
            assert!((p - 0.4).abs() < 1e-12);
            std::hint::black_box(p)
        });
    });

    // SQL end-to-end variant
    c.bench_function("e5_demo_sql", |b| {
        b.iter(|| {
            let mut s = maybms_sql::session::medical_session();
            let r = s
                .execute("SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'")
                .expect("sql");
            std::hint::black_box(r.table().expect("table").len())
        });
    });
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
