//! Criterion tracking for E4: confidence computation (DESIGN.md §3, E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_core::algebra::Query;
use maybms_core::prob;
use maybms_relational::Expr;

fn bench_e4(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_probability");
    g.sample_size(10);
    let n = 2_000;
    for rate in [0.002, 0.01] {
        let base = maybms_census::generate(n, 5);
        let os = maybms_census::inject(
            &base,
            maybms_census::NoiseSpec { rate, max_width: 3, weighted: true, seed: 21 },
        )
        .expect("inject");
        let wsd = maybms_census::to_wsd(&os).expect("decompose");
        let q = Query::table(maybms_census::CENSUS_REL)
            .select(Expr::col("age").eq(Expr::lit(30i64)))
            .project(["sex", "marst"]);
        let answer = q.eval(&wsd).expect("query");
        g.bench_with_input(
            BenchmarkId::new("tuple_confidence", format!("{rate}")),
            &answer,
            |b, answer| {
                b.iter(|| {
                    std::hint::black_box(
                        prob::tuple_confidence(answer, "result").expect("confidence"),
                    )
                });
            },
        );
    }
    g.finish();

    let rows = maybms_bench::e4_probability(n, &[0.002, 0.01], 5).expect("e4 harness");
    for r in &rows {
        println!("e4: {} answers={} exact={} time={:?}", r.label, r.answers, r.exact, r.time);
    }
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
