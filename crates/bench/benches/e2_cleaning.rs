//! Criterion tracking for E2: chase-based cleaning (DESIGN.md §3, E2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_core::chase::clean;

fn bench_e2(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_cleaning");
    g.sample_size(10);
    let n = 1_000;
    for rate in [0.005, 0.02] {
        g.bench_with_input(BenchmarkId::new("chase", format!("{rate}")), &rate, |b, &rate| {
            let base = maybms_census::generate(n, 11);
            let os = maybms_census::inject(
                &base,
                maybms_census::NoiseSpec { rate, max_width: 4, weighted: false, seed: 13 },
            )
            .expect("inject");
            let constraints = maybms_census::cleaning_constraints();
            b.iter(|| {
                let mut wsd = maybms_census::to_wsd(&os).expect("decompose");
                let report = clean(&mut wsd, &constraints).expect("clean");
                std::hint::black_box(report.deleted_rows)
            });
        });
    }
    g.finish();

    let rows = maybms_bench::e2_cleaning(n, &[0.005, 0.02], 11).expect("e2 harness");
    for r in &rows {
        println!(
            "e2: rate={:.2}% violations={} removed_mass={:.4} time={:?}",
            r.rate * 100.0,
            r.deleted_row_groups,
            r.removed_probability,
            r.chase_time
        );
    }
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
