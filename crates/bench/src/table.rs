//! Plain-text table rendering for experiment output.

/// Prints an aligned ASCII table (markdown-ish) to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("| {} |", header_line.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for r in rows {
        let line: Vec<String> = r
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", line.join(" | "));
    }
}

/// Formats a byte count humanely.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert!(fmt_bytes(3 << 20).contains("MiB"));
        assert!(fmt_bytes(5 << 30).contains("GiB"));
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_micros(7)).contains("µs"));
    }
}
