//! Experiment runners E1–E4 (see DESIGN.md §3 for the index).

use std::time::{Duration, Instant};

use maybms_census::{
    census_schema, certain_to_wsd, cleaning_constraints, generate, inject, to_wsd, NoiseSpec,
    CENSUS_REL,
};
use maybms_core::chase::clean;
use maybms_core::prob;
use maybms_core::wsd::Wsd;
use maybms_relational::{Relation, Result};
use maybms_worldset::eval::WorldQuery;
use maybms_worldset::World;

use crate::queries::{query_suite, states_relation, STATES_REL};

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

// ---------------------------------------------------------------------
// E1: storage overhead
// ---------------------------------------------------------------------

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct E1Row {
    pub rate: f64,
    pub uncertain_fields: usize,
    /// log10 of the represented world count.
    pub worlds_log10: f64,
    /// Human summary of the world count (exact for small, ~10^k for huge).
    pub worlds: String,
    pub original_bytes: usize,
    pub wsd_bytes: usize,
    /// (wsd − original) / original, in percent.
    pub overhead_pct: f64,
    pub build_time: Duration,
}

/// E1: storage of the decomposition vs the original relation across noise
/// rates. Paper headline: >2^624449 worlds stored "with a space overhead of
/// only 2% over the original relation".
pub fn e1_storage(n: usize, rates: &[f64], max_width: usize, seed: u64) -> Result<Vec<E1Row>> {
    let base = generate(n, seed);
    let original_bytes = base.size_bytes();
    let mut out = Vec::with_capacity(rates.len());
    for &rate in rates {
        let spec = NoiseSpec { rate, max_width, weighted: false, seed: seed ^ 0xA5A5 };
        let os = inject(&base, spec)?;
        let (wsd, build_time) = timed(|| to_wsd(&os));
        let wsd = wsd?;
        let count = wsd.world_count();
        // the templates store the certain data; components the alternatives
        let wsd_bytes = wsd.size_bytes();
        out.push(E1Row {
            rate,
            uncertain_fields: os.uncertain_fields(),
            worlds_log10: count.log10(),
            worlds: count.summary(),
            original_bytes,
            wsd_bytes,
            overhead_pct: 100.0 * (wsd_bytes as f64 - original_bytes as f64)
                / original_bytes as f64,
            build_time,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// E2: data cleaning
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct E2Row {
    pub rate: f64,
    pub uncertain_fields: usize,
    pub worlds_before_log10: f64,
    pub worlds_after_log10: f64,
    pub deleted_row_groups: usize,
    pub removed_probability: f64,
    pub chase_time: Duration,
}

/// E2: chase-based cleaning with the census constraints across noise rates.
pub fn e2_cleaning(n: usize, rates: &[f64], seed: u64) -> Result<Vec<E2Row>> {
    let base = generate(n, seed);
    let constraints = cleaning_constraints();
    let mut out = Vec::with_capacity(rates.len());
    for &rate in rates {
        let spec = NoiseSpec { rate, max_width: 4, weighted: false, seed: seed ^ 0x5A5A };
        let os = inject(&base, spec)?;
        let mut wsd = to_wsd(&os)?;
        let before = wsd.world_count().log10();
        let (report, chase_time) = timed(|| clean(&mut wsd, &constraints));
        let report = report?;
        out.push(E2Row {
            rate,
            uncertain_fields: os.uncertain_fields(),
            worlds_before_log10: before,
            worlds_after_log10: wsd.world_count().log10(),
            deleted_row_groups: report.deleted_rows,
            removed_probability: report.removed_probability,
            chase_time,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// E3: query evaluation vs conventional single-world processing
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct E3Row {
    pub query: &'static str,
    pub description: &'static str,
    pub single_world: Duration,
    pub wsd: Duration,
    /// wsd / single_world.
    pub ratio: f64,
    pub result_tuples: usize,
}

/// The prepared E3 inputs: a noisy decomposition and the corresponding
/// single world (conventional baseline), both with the states lookup table.
pub struct E3Setup {
    pub wsd: Wsd,
    pub single_world: World,
}

/// Builds the E3 inputs once (expensive) so benches can reuse them.
pub fn e3_setup(n: usize, rate: f64, seed: u64) -> Result<E3Setup> {
    let base = generate(n, seed);
    let spec = NoiseSpec { rate, max_width: 4, weighted: false, seed: seed ^ 0x1111 };
    let os = inject(&base, spec)?;
    let mut wsd = to_wsd(&os)?;
    add_states(&mut wsd)?;
    let mut single_world = World::single(CENSUS_REL, os.first_world());
    single_world.put(STATES_REL, states_relation());
    Ok(E3Setup { wsd, single_world })
}

fn add_states(wsd: &mut Wsd) -> Result<()> {
    let states = states_relation();
    wsd.add_relation(STATES_REL, states.schema().clone())?;
    for t in states.iter() {
        wsd.push_certain(STATES_REL, t.values().to_vec())?;
    }
    Ok(())
}

/// E3: run the query suite both ways. Paper headline: "processing time on
/// large world-sets is very close to that on a single world".
pub fn e3_queries(setup: &E3Setup) -> Result<Vec<E3Row>> {
    let mut out = Vec::new();
    for q in query_suite() {
        let wq: WorldQuery = q.query.to_world_query();
        let (conventional, t_single) = timed(|| wq.eval(&setup.single_world));
        let conventional: Relation = conventional?;
        let (on_wsd, t_wsd) = timed(|| q.query.eval(&setup.wsd));
        let on_wsd = on_wsd?;
        out.push(E3Row {
            query: q.name,
            description: q.description,
            single_world: t_single,
            wsd: t_wsd,
            ratio: t_wsd.as_secs_f64() / t_single.as_secs_f64().max(1e-9),
            result_tuples: on_wsd
                .relation("result")
                .map(|r| r.tuples.len())
                .unwrap_or(conventional.len()),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// E4: confidence computation (prob())
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct E4Row {
    pub label: String,
    pub answers: usize,
    pub exact: bool,
    pub time: Duration,
}

/// E4: `prob()` queries. Confidence over independent components is fast;
/// forced correlation (merged components) degrades gracefully into the
/// Monte-Carlo estimator.
pub fn e4_probability(n: usize, rates: &[f64], seed: u64) -> Result<Vec<E4Row>> {
    use maybms_core::algebra::Query;
    use maybms_relational::Expr;
    let base = generate(n, seed);
    let mut out = Vec::new();
    for &rate in rates {
        let spec = NoiseSpec { rate, max_width: 3, weighted: true, seed: seed ^ 0x77 };
        let os = inject(&base, spec)?;
        let wsd = to_wsd(&os)?;
        let q = Query::table(CENSUS_REL)
            .select(Expr::col("age").eq(Expr::lit(30i64)))
            .project(["sex", "marst"]);
        let answer = q.eval(&wsd)?;
        let (conf, time) = timed(|| prob::tuple_confidence_opts(
            &answer,
            "result",
            prob::ProbOptions::default(),
        ));
        let conf = conf?;
        out.push(E4Row {
            label: format!("rate {:.3}% independent", rate * 100.0),
            answers: conf.len(),
            exact: conf.iter().all(|c| c.exact),
            time,
        });
    }
    // forced-correlation variant: merge a slice of components
    let spec = NoiseSpec { rate: 0.01, max_width: 3, weighted: true, seed: seed ^ 0x99 };
    let os = inject(&base, spec)?;
    let mut wsd = to_wsd(&os)?;
    // Merge components until the joint size approaches 2^17 rows — enough
    // correlation to force the estimator without materializing a monster.
    let live = wsd.live_components();
    let mut chosen: Vec<usize> = Vec::new();
    let mut joint: u64 = 1;
    for &c in &live {
        let rows = wsd.component(c).expect("live").num_rows() as u64;
        if joint.saturating_mul(rows) > (1 << 17) {
            break;
        }
        joint *= rows;
        chosen.push(c);
    }
    let k = chosen.len();
    if k >= 2 {
        wsd.merge_components(&chosen)?;
    }
    let (conf, time) = timed(|| prob::tuple_confidence_opts(
        &wsd,
        CENSUS_REL,
        prob::ProbOptions { exact_cap: 1 << 16, ..Default::default() },
    ));
    let conf = conf?;
    out.push(E4Row {
        label: format!("forced correlation ({k} components merged)"),
        answers: conf.len(),
        exact: conf.iter().all(|c| c.exact),
        time,
    });
    Ok(out)
}

// ---------------------------------------------------------------------
// E5: the paper's worked example (kept here so benches can track it)
// ---------------------------------------------------------------------

/// Runs the §2 pipeline end to end and returns P(ultrasound); must be 0.4.
pub fn e5_demo() -> Result<f64> {
    use maybms_core::algebra::Query;
    use maybms_relational::Expr;
    let wsd = maybms_core::examples::medical_wsd();
    let q = Query::table("R")
        .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
        .project(["test"]);
    let ans = q.eval(&wsd)?;
    let conf = prob::tuple_confidence(&ans, "result")?;
    Ok(conf.first().map(|(_, p)| *p).unwrap_or(0.0))
}

/// A tiny sanity helper used by binaries: the schema of the census table.
pub fn census_arity() -> usize {
    census_schema().len()
}

/// Baseline single-world load used by E3-style comparisons elsewhere.
pub fn baseline_wsd(n: usize, seed: u64) -> Result<Wsd> {
    certain_to_wsd(&generate(n, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_overhead_small_and_monotone() {
        let rows = e1_storage(300, &[0.001, 0.01, 0.05], 4, 7).unwrap();
        assert_eq!(rows.len(), 3);
        // worlds grow with rate, overhead grows with rate
        assert!(rows[0].worlds_log10 <= rows[1].worlds_log10);
        assert!(rows[1].worlds_log10 <= rows[2].worlds_log10);
        assert!(rows[0].overhead_pct <= rows[2].overhead_pct + 1e-9);
        // the paper's regime (~0.1% noise) has tiny overhead; at 1% it is
        // still a few percent
        assert!(rows[1].overhead_pct < 25.0, "overhead {}", rows[1].overhead_pct);
        // huge world counts from little noise
        assert!(rows[2].worlds_log10 > 10.0);
    }

    #[test]
    fn e2_cleaning_runs_and_reports() {
        let rows = e2_cleaning(200, &[0.01], 11).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.worlds_after_log10 <= r.worlds_before_log10 + 1e-9);
        assert!(r.removed_probability >= 0.0 && r.removed_probability < 1.0);
    }

    #[test]
    fn e3_all_queries_run() {
        let setup = e3_setup(150, 0.01, 3).unwrap();
        let rows = e3_queries(&setup).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.ratio.is_finite());
        }
    }

    #[test]
    fn e4_probability_runs() {
        let rows = e4_probability(120, &[0.005, 0.02], 5).unwrap();
        assert_eq!(rows.len(), 3);
        // the independent cases are exact
        assert!(rows[0].exact);
        assert!(rows[1].exact);
    }

    #[test]
    fn e5_is_exactly_the_papers_number() {
        assert!((e5_demo().unwrap() - 0.4).abs() < 1e-12);
    }
}
