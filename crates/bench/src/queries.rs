//! The E3 query suite: six queries spanning the full algebra, each runnable
//! on the decomposition (WSD side) and on a single world (conventional
//! side) — "The performance of query evaluation on incomplete data was
//! compared to that of conventional query processing." (paper §1)

use maybms_core::algebra::Query;
use maybms_relational::{ColumnType, Expr, Relation, Schema, Value};

use maybms_census::CENSUS_REL;

/// A named query of the suite.
pub struct BenchQuery {
    pub name: &'static str,
    pub description: &'static str,
    pub query: Query,
}

/// A small lookup table joined against the census (state names).
pub fn states_relation() -> Relation {
    let mut r = Relation::empty(Schema::new(vec![
        ("fip", ColumnType::Int),
        ("sname", ColumnType::Str),
    ]));
    for i in 0..51i64 {
        r.push_unchecked(maybms_relational::Tuple::new(vec![
            Value::Int(i),
            Value::str(format!("state{i:02}")),
        ]));
    }
    r
}

/// Name under which [`states_relation`] is registered.
pub const STATES_REL: &str = "states";

/// The six queries Q1–Q6.
pub fn query_suite() -> Vec<BenchQuery> {
    vec![
        BenchQuery {
            name: "Q1 selection",
            description: "σ age=30 (single-attribute selection)",
            query: Query::table(CENSUS_REL).select(Expr::col("age").eq(Expr::lit(30i64))),
        },
        BenchQuery {
            name: "Q2 select+project",
            description: "π sex,educ,incwage σ age>=65",
            query: Query::table(CENSUS_REL)
                .select(Expr::col("age").ge(Expr::lit(65i64)))
                .project(["sex", "educ", "incwage"]),
        },
        BenchQuery {
            name: "Q3 join",
            description: "σ age=40 census ⋈ states on statefip",
            query: Query::table(CENSUS_REL)
                .select(Expr::col("age").eq(Expr::lit(40i64)))
                .project(["statefip", "age", "incwage"])
                .join(Query::table(STATES_REL), Expr::col("statefip").eq(Expr::col("fip"))),
        },
        BenchQuery {
            name: "Q4 union",
            description: "σ age<5 ∪ σ age>85",
            query: Query::table(CENSUS_REL)
                .select(Expr::col("age").lt(Expr::lit(5i64)))
                .union(Query::table(CENSUS_REL).select(Expr::col("age").gt(Expr::lit(85i64)))),
        },
        BenchQuery {
            name: "Q5 difference",
            description: "σ age=20 − σ sex=1 (full-schema difference)",
            query: Query::table(CENSUS_REL)
                .select(Expr::col("age").eq(Expr::lit(20i64)))
                .difference(
                    Query::table(CENSUS_REL)
                        .select(Expr::col("age").eq(Expr::lit(20i64)).and(
                            Expr::col("sex").eq(Expr::lit(1i64)),
                        )),
                ),
        },
        BenchQuery {
            name: "Q6 complex",
            description: "conjunctive selection across attributes + projection",
            query: Query::table(CENSUS_REL)
                .select(
                    Expr::col("empstat")
                        .eq(Expr::lit(1i64))
                        .and(Expr::col("educ").ge(Expr::lit(10i64)))
                        .and(Expr::col("incwage").gt(Expr::lit(50_000i64))),
                )
                .project(["age", "sex", "occ"]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_queries() {
        assert_eq!(query_suite().len(), 6);
    }

    #[test]
    fn states_covers_statefip_domain() {
        let r = states_relation();
        assert_eq!(r.len(), 51);
    }
}
