//! Scaling series ("figure"-style): how decomposition build time, storage
//! overhead and the E3 query-time ratio evolve with the number of records,
//! at fixed noise. The paper's claims are asymptotic ("scalable evaluation",
//! overhead independent of world count); this series makes the trend
//! visible.
//!
//! Usage: `scaling_table [noise] [seed]` (default 0.001 3)

use std::time::Instant;

use maybms_bench::queries::query_suite;
use maybms_bench::table::{fmt_bytes, fmt_duration, print_table};
use maybms_census::{generate, inject, to_wsd, NoiseSpec};

fn main() {
    let mut args = std::env::args().skip(1);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.001);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let sizes = [1_000usize, 5_000, 25_000, 100_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let base = generate(n, seed);
        let os = inject(
            &base,
            NoiseSpec { rate, max_width: 4, weighted: false, seed: seed ^ 0xBEEF },
        )
        .expect("inject");
        let start = Instant::now();
        let wsd = to_wsd(&os).expect("decompose");
        let build = start.elapsed();

        // Q1 ratio at this size
        let setup = maybms_bench::e3_setup(n, rate, seed).expect("setup");
        let q1 = &query_suite()[0];
        let wq = q1.query.to_world_query();
        let t0 = Instant::now();
        wq.eval(&setup.single_world).expect("baseline");
        let single = t0.elapsed();
        let t1 = Instant::now();
        q1.query.eval(&setup.wsd).expect("wsd");
        let on_wsd = t1.elapsed();

        rows.push(vec![
            n.to_string(),
            format!("{:.0}", wsd.world_count().log10()),
            fmt_bytes(base.size_bytes()),
            format!(
                "{:+.2}%",
                100.0 * (wsd.size_bytes() as f64 - base.size_bytes() as f64)
                    / base.size_bytes() as f64
            ),
            fmt_duration(build),
            fmt_duration(single),
            fmt_duration(on_wsd),
            format!("{:.2}x", on_wsd.as_secs_f64() / single.as_secs_f64().max(1e-9)),
        ]);
    }
    print_table(
        &format!("Scaling series at {:.2}% noise (Q1 = σ age=30)", rate * 100.0),
        &[
            "records",
            "log10(worlds)",
            "original",
            "overhead",
            "build",
            "Q1 single world",
            "Q1 WSD",
            "ratio",
        ],
        &rows,
    );
    println!(
        "\npaper shape: overhead and the query-time ratio stay flat as records \
         (and thus world count, doubly-exponentially) grow — \"scalable \
         evaluation\" (paper §1)."
    );
}
