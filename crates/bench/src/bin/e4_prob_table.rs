//! E4: regenerates the probability-computation result.
//!
//! Paper: "MayBMS also allows SQL-like queries with probability constructs
//! in the select and where clauses" — `prob()` sums the probabilities of an
//! event over all worlds.
//!
//! Usage: `e4_prob_table [rows] [seed]` (default 20000 5)

use maybms_bench::table::{fmt_duration, print_table};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let rows = maybms_bench::e4_probability(n, &[0.0005, 0.005, 0.02], seed).expect("e4 harness");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.answers.to_string(),
                if r.exact { "exact".into() } else { "Monte-Carlo".into() },
                fmt_duration(r.time),
            ]
        })
        .collect();
    print_table(
        &format!("E4 prob(): confidence computation over {n} census records"),
        &["scenario", "distinct answers", "method", "time"],
        &table,
    );
    println!(
        "\npaper shape: confidence over independent components is exact and \
         fast; forced correlations (merged components) push the computation \
         into estimation, degrading gracefully."
    );
}
