//! E1: regenerates the storage-overhead result.
//!
//! Paper: a census world-set with more than 2^624449 worlds is represented
//! "with a space overhead of only 2% over the original relation".
//!
//! Usage: `e1_storage_table [rows] [max_width] [seed]`  (default 100000 4 7)

use maybms_bench::table::{fmt_bytes, fmt_duration, print_table};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let max_width: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    // The paper's regime: "noise with different degree of incompleteness".
    let rates = [0.00005, 0.0005, 0.001, 0.01, 0.05, 0.1];
    let rows = maybms_bench::e1_storage(n, &rates, max_width, seed).expect("e1 harness");

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.3}%", r.rate * 100.0),
                r.uncertain_fields.to_string(),
                r.worlds.clone(),
                format!("{:.0}", r.worlds_log10),
                fmt_bytes(r.original_bytes),
                fmt_bytes(r.wsd_bytes),
                format!("{:+.2}%", r.overhead_pct),
                fmt_duration(r.build_time),
            ]
        })
        .collect();
    print_table(
        &format!("E1 storage: WSD vs original relation ({n} rows × 50 cols)"),
        &[
            "noise", "or-set fields", "worlds", "log10(worlds)", "original", "WSD",
            "overhead", "build",
        ],
        &table,
    );
    println!(
        "\npaper shape: world count grows doubly-exponentially with noise while \
         the representation grows linearly; at census noise levels the overhead \
         stays in the low percent range (paper: 2% at >2^624449 worlds)."
    );
}
