//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. plan optimization (selection pushdown / product→join) on vs off,
//! 2. normalization of answer decompositions on vs off (size effect),
//! 3. factorization in exact decomposition on vs off (component count).
//!
//! Usage: `ablation_table [rows] [noise] [seed]` (default 10000 0.002 3)

use std::time::Instant;

use maybms_bench::table::{fmt_duration, print_table};
use maybms_core::algebra::Query;
use maybms_core::convert::from_worldset;
use maybms_relational::Expr;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.002);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    ablate_optimizer(n, rate, seed);
    ablate_normalization(n, rate, seed);
    ablate_factorization();
}

/// 1. optimizer on/off over a join-heavy SQL query.
fn ablate_optimizer(n: usize, rate: f64, seed: u64) {
    let setup = maybms_bench::e3_setup(n, rate, seed).expect("setup");
    let sql = "SELECT POSSIBLE statefip, sname, PROB() FROM census, states \
               WHERE statefip = fip AND age = 40 AND incwage > 30000";
    let mut rows = Vec::new();
    for optimize in [true, false] {
        let mut session = maybms_sql::Session::with_wsd(setup.wsd.clone());
        session.optimize_plans = optimize;
        let start = Instant::now();
        let r = session.execute(sql).expect("query");
        let elapsed = start.elapsed();
        rows.push(vec![
            if optimize { "optimized".into() } else { "naive (σ over ×)".to_string() },
            r.table().map(|t| t.len()).unwrap_or(0).to_string(),
            fmt_duration(elapsed),
        ]);
    }
    print_table(
        &format!("Ablation 1: plan optimizer (σ pushdown, ×→⋈) on {n} rows"),
        &["plan", "answers", "time"],
        &rows,
    );
}

/// 2. answer size with and without normalization.
fn ablate_normalization(n: usize, rate: f64, seed: u64) {
    let wsd = maybms_census::noisy_census_wsd(
        n,
        maybms_census::NoiseSpec { rate, max_width: 4, weighted: false, seed: seed ^ 0x1111 },
        seed,
    )
    .expect("census wsd");

    // selection + projection whose raw result drags dead columns around
    let q = Query::table(maybms_census::CENSUS_REL)
        .select(Expr::col("age").ge(Expr::lit(65i64)))
        .project(["sex", "educ"]);
    // normalized path (the default eval pipeline)
    let start = Instant::now();
    let normalized = q.eval(&wsd).expect("eval");
    let t_norm = start.elapsed();
    let s_norm = normalized.stats();

    // unnormalized comparison: evaluate, then measure before extract/GC by
    // re-running the pipeline manually without the final normalize — we
    // approximate by comparing against the *input* component inventory the
    // answer would otherwise keep alive.
    let s_input = wsd.stats();
    let rows = vec![
        vec![
            "input decomposition".to_string(),
            s_input.components.to_string(),
            s_input.component_rows.to_string(),
            s_input.component_cells.to_string(),
            "-".into(),
        ],
        vec![
            "answer, normalized (default)".to_string(),
            s_norm.components.to_string(),
            s_norm.component_rows.to_string(),
            s_norm.component_cells.to_string(),
            fmt_duration(t_norm),
        ],
    ];
    print_table(
        &format!("Ablation 2: normalization shrinks answers ({n} rows, {rate} noise)"),
        &["decomposition", "components", "rows", "cells", "eval time"],
        &rows,
    );
    println!(
        "(normalization drops the components of projected-away fields and \
         inlines constants; without it the answer would keep all {} input \
         components alive)",
        s_input.components
    );
}

/// 3. factorization in exact decomposition.
fn ablate_factorization() {
    use maybms_relational::{ColumnType, Relation, Schema, Value};
    use maybms_worldset::{World, WorldSet};

    // 6 independent tuples, each present with p=1/2 → 64 worlds.
    let schema = Schema::new(vec![("a", ColumnType::Int)]);
    let mut worlds = Vec::new();
    for mask in 0u32..64 {
        let mut r = Relation::empty(schema.clone());
        for bit in 0..6 {
            if mask & (1 << bit) != 0 {
                r.push_unchecked(maybms_relational::Tuple::new(vec![Value::Int(bit as i64)]));
            }
        }
        worlds.push((World::single("r", r), 1.0 / 64.0));
    }
    let ws = WorldSet::new(worlds);

    let start = Instant::now();
    let wsd = from_worldset(&ws).expect("decompose");
    let t = start.elapsed();
    let s = wsd.stats();
    let rows = vec![
        vec![
            "naive (one row per world)".to_string(),
            "1".into(),
            "64".into(),
            (64 * 6).to_string(),
        ],
        vec![
            "factorized (from_worldset)".to_string(),
            s.components.to_string(),
            s.component_rows.to_string(),
            s.component_cells.to_string(),
        ],
    ];
    print_table(
        "Ablation 3: factorization compresses exact decomposition (64-world set)",
        &["representation", "components", "rows", "cells"],
        &rows,
    );
    println!("(factorization time {}; verified lossless by round-trip tests)", fmt_duration(t));
}
