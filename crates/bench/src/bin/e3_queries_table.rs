//! E3: regenerates the query-processing comparison.
//!
//! Paper: "the processing time on large world-sets is very close to that on
//! a single world."
//!
//! Usage: `e3_queries_table [rows] [noise_rate] [seed]` (default 50000 0.001 3)

use maybms_bench::table::{fmt_duration, print_table};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.001);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let setup = maybms_bench::e3_setup(n, rate, seed).expect("e3 setup");
    println!(
        "world-set: ~10^{:.0} worlds over {n} census records (noise {:.2}%)",
        setup.wsd.world_count().log10(),
        rate * 100.0
    );
    let rows = maybms_bench::e3_queries(&setup).expect("e3 harness");

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.to_string(),
                r.description.to_string(),
                fmt_duration(r.single_world),
                fmt_duration(r.wsd),
                format!("{:.2}x", r.ratio),
                r.result_tuples.to_string(),
            ]
        })
        .collect();
    print_table(
        "E3 queries: decomposition vs conventional single-world processing",
        &["query", "description", "single world", "WSD (all worlds)", "ratio", "result tuples"],
        &table,
    );
    println!(
        "\npaper shape: evaluating a query over the whole world-set costs a \
         small constant factor over evaluating it in one world, despite the \
         world-set being astronomically large."
    );
}
