//! E2: regenerates the data-cleaning result.
//!
//! Paper: "We cleaned the world-set from inconsistencies by enforcing
//! real-life integrity constraints."
//!
//! Usage: `e2_cleaning_table [rows] [seed]`  (default 20000 11)

use maybms_bench::table::{fmt_duration, print_table};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(11);

    let rates = [0.0005, 0.001, 0.01, 0.05];
    let rows = maybms_bench::e2_cleaning(n, &rates, seed).expect("e2 harness");

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}%", r.rate * 100.0),
                r.uncertain_fields.to_string(),
                format!("{:.0}", r.worlds_before_log10),
                format!("{:.0}", r.worlds_after_log10),
                r.deleted_row_groups.to_string(),
                format!("{:.4}", r.removed_probability),
                fmt_duration(r.chase_time),
            ]
        })
        .collect();
    print_table(
        &format!("E2 cleaning: chase with census constraints ({n} rows)"),
        &[
            "noise",
            "or-set fields",
            "log10(worlds) before",
            "after",
            "violations removed",
            "P(inconsistent)",
            "chase time",
        ],
        &table,
    );
    println!(
        "\npaper shape: cleaning cost scales with the number of violations \
         (noise), not with the world count; inconsistent worlds are removed \
         and the remaining distribution is renormalized."
    );
}
