//! E5: the paper's §2 worked example, end to end.
//!
//! `select Test from R where Diagnosis='pregnancy'` on the medical WSD must
//! produce the two-world answer {(ultrasound)}, {} with P(ultrasound)=0.4,
//! and the hypothyroidism+obesity record must carry probability 0.42.

use maybms_core::examples::medical_wsd;
use maybms_sql::session::medical_session;

fn main() {
    let wsd = medical_wsd();
    println!("medical WSD: {} components, {} worlds", wsd.num_components(), wsd.world_count());
    let ws = wsd.to_worldset(100).expect("tiny world-set");
    for (i, (w, p)) in ws.worlds().iter().enumerate() {
        let r = w.get("R").expect("relation R");
        println!("world {i} (p = {p:.2}):");
        print!("{}", maybms_relational::pretty::render(r, 10));
    }

    let mut session = medical_session();
    for sql in [
        "SELECT test FROM R WHERE diagnosis = 'pregnancy'",
        "SELECT test, PROB() FROM R WHERE diagnosis = 'pregnancy'",
        "SELECT POSSIBLE diagnosis, symptom FROM R",
        "SELECT CERTAIN diagnosis FROM R",
    ] {
        println!("\nmaybms> {sql}");
        match session.execute(sql).expect("demo query") {
            maybms_sql::QueryResult::Table(t) => {
                print!("{}", maybms_relational::pretty::render(&t, 20))
            }
            maybms_sql::QueryResult::WorldSet(w) => {
                let stats = w.stats();
                println!(
                    "answer world-set: {} template tuple(s), {} component(s), {} worlds",
                    stats.template_tuples,
                    stats.components,
                    w.world_count()
                );
                for (t, p) in w.tuple_confidence("result").expect("confidence") {
                    println!("  {t}  with probability {p:.2}");
                }
            }
            maybms_sql::QueryResult::Text(t) => println!("{t}"),
        }
    }

    let p = maybms_bench::e5_demo().expect("e5");
    println!("\nP(ultrasound recommended for pregnancy) = {p} (paper: 0.4)");
    assert!((p - 0.4).abs() < 1e-12);
}
