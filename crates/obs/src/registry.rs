//! The metrics registry: named atomic counters, gauges and fixed-bucket
//! histograms, plus the process-global instance every subsystem records
//! into.
//!
//! Handles are `Arc`s handed out by [`Registry::counter`] (and friends);
//! a call site registers once (a mutex + ordered-map lookup) and then
//! bumps lock-free forever after. Sessions can also own private
//! [`Registry`] instances for per-session statistics; the SQL layer
//! merges both views under `SHOW METRICS`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide enable flag. `true` at startup; [`set_enabled`] flips it.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether metric recording is currently enabled. One relaxed load — the
/// entire cost of a metric operation while observability is off.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables all metric recording at runtime. Reads
/// ([`Counter::get`], [`Registry::snapshot`]) keep working either way;
/// only the write side goes quiet. The `off` cargo feature is the
/// compile-time version of `set_enabled(false)`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that goes up and down (queue depths, lags).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`. A no-op while recording is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (negative to decrease). A no-op while recording is
    /// disabled.
    #[inline]
    pub fn add(&self, d: i64) {
        if enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive) of the default duration buckets, in
/// microseconds: 1µs … ~16s in powers of four, plus +∞ implicitly.
pub const DURATION_US_BOUNDS: &[u64] =
    &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216];

/// Upper bounds (inclusive) of the default size buckets (bytes, rows,
/// records — anything count-shaped): 1 … ~1M in powers of four.
pub const SIZE_BOUNDS: &[u64] =
    &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

/// A fixed-bucket histogram: cumulative-style buckets with static upper
/// bounds, plus a running sum and count. Observation is two relaxed adds
/// and one bounded scan over ≤14 bounds — no allocation, no locking.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be sorted");
        Histogram {
            bounds,
            // one bucket per bound plus the +∞ overflow bucket
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation. A no-op while recording is disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// The bucket upper bounds (the +∞ bucket is implicit).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts, one per bound plus the final +∞ bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// A shared handle to one registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A point-in-time reading of one metric, as [`Registry::snapshot`]
/// reports it.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram reading: `(bounds, bucket_counts, sum, count)` — one
    /// bucket count per bound plus the trailing +∞ bucket.
    Histogram(&'static [u64], Vec<u64>, u64, u64),
}

/// A named collection of metrics. The process-global instance is
/// [`global`]; sessions may own private ones.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry { inner: Mutex::new(BTreeMap::new()) }
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.inner.lock().expect("registry lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)), // maybms-lint: allow(no-panic-in-prod) -- re-registering a metric name under a different kind is a programming error; fail-stop at startup
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.inner.lock().expect("registry lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)), // maybms-lint: allow(no-panic-in-prod) -- re-registering a metric name under a different kind is a programming error; fail-stop at startup
        }
    }

    /// The histogram named `name` with the given static bucket bounds,
    /// registering it on first use (later callers get the original
    /// bounds — bounds are fixed at first registration).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &'static [u64]) -> Arc<Histogram> {
        let mut m = self.inner.lock().expect("registry lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {}", kind_name(other)), // maybms-lint: allow(no-panic-in-prod) -- re-registering a metric name under a different kind is a programming error; fail-stop at startup
        }
    }

    /// All metrics with their current values, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let m = self.inner.lock().expect("registry lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        m.iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(
                        h.bounds(),
                        h.bucket_counts(),
                        h.sum(),
                        h.count(),
                    ),
                };
                (name.clone(), v)
            })
            .collect()
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// Serializes tests that read or toggle the process-global enable flag
/// (the toggle test must not race counting tests elsewhere in the crate).
#[cfg(test)]
pub(crate) fn test_flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static GLOBAL: Registry = Registry::new();

/// The process-global registry every subsystem records into.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Shorthand for [`global`]`().counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for [`global`]`().gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for [`global`]`().histogram(name, bounds)`.
pub fn histogram(name: &str, bounds: &'static [u64]) -> Arc<Histogram> {
    global().histogram(name, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::registry::test_flag_lock as flag_lock;

    #[test]
    fn counter_counts() {
        let _g = flag_lock();
        let r = Registry::new();
        let c = r.counter("t.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same name, same handle
        r.counter("t.counter").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let _g = flag_lock();
        let r = Registry::new();
        let g = r.gauge("t.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let _g = flag_lock();
        let r = Registry::new();
        let h = r.histogram("t.hist", &[10, 100]);
        h.observe(5); // bucket 0 (≤10)
        h.observe(10); // bucket 0 (inclusive bound)
        h.observe(50); // bucket 1 (≤100)
        h.observe(1000); // +∞ bucket
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let _g = flag_lock();
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.gauge("a.first").set(-1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a.first");
        assert_eq!(snap[0].1, MetricValue::Gauge(-1));
        assert_eq!(snap[1].1, MetricValue::Counter(2));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("t.same");
        r.gauge("t.same");
    }

    #[test]
    fn disabled_recording_is_silent() {
        let _g = flag_lock();
        let r = Registry::new();
        let c = r.counter("t.toggle");
        set_enabled(false);
        c.inc();
        set_enabled(true);
        c.inc();
        // the disabled inc must not have landed (under the `off` feature
        // neither does the enabled one)
        let expect = if cfg!(feature = "off") { 0 } else { 1 };
        assert_eq!(c.get(), expect);
    }
}
