//! Per-query tracing: a [`QueryTrace`] collects named, timestamped phase
//! spans (parse → optimize → compile → execute) as a query moves through
//! the session pipeline. The executor's per-plan-node wall-clock samples
//! ride along separately (see `maybms_core::exec::Executor::run_traced`);
//! this type covers the pipeline phases around them.

use std::time::{Duration, Instant};

/// One traced phase: its name, when it started (relative to the trace
/// start), and how long it took.
#[derive(Debug, Clone)]
pub struct Span {
    /// Phase name (`"parse"`, `"optimize"`, `"compile"`, `"execute"`).
    pub name: String,
    /// Offset of the phase start from the start of the trace.
    pub start: Duration,
    /// Wall-clock duration of the phase.
    pub elapsed: Duration,
}

/// A per-query trace of timestamped phase spans.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    started: Instant,
    spans: Vec<Span>,
}

impl QueryTrace {
    /// Starts a fresh trace; the clock starts now.
    pub fn start() -> QueryTrace {
        QueryTrace { started: Instant::now(), spans: Vec::new() }
    }

    /// Runs `f` as a named phase, recording its span.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let begin = Instant::now();
        let out = f();
        self.push(name, begin);
        out
    }

    /// Records a phase that began at `begin` and ended now.
    pub fn push(&mut self, name: &str, begin: Instant) {
        self.spans.push(Span {
            name: name.to_string(),
            start: begin.duration_since(self.started),
            elapsed: begin.elapsed(),
        });
    }

    /// The recorded spans, in the order they finished.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Wall-clock time since the trace started.
    pub fn total(&self) -> Duration {
        self.started.elapsed()
    }

    /// A one-line human rendering: `parse 12.3µs · optimize 45µs · …`.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .spans
            .iter()
            .map(|s| format!("{} {}", s.name, fmt_duration(s.elapsed)))
            .collect();
        parts.push(format!("total {}", fmt_duration(self.total())));
        parts.join(" · ")
    }
}

/// Renders a duration compactly: `873ns`, `12.3µs`, `4.56ms`, `1.20s`.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_in_order() {
        let mut t = QueryTrace::start();
        let a = t.time("parse", || 1 + 1);
        assert_eq!(a, 2);
        t.time("execute", || std::thread::sleep(Duration::from_millis(2)));
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "parse");
        assert_eq!(spans[1].name, "execute");
        assert!(spans[1].elapsed >= Duration::from_millis(2));
        assert!(spans[1].start >= spans[0].start);
        assert!(t.total() >= spans[1].elapsed);
    }

    #[test]
    fn render_names_every_phase() {
        let mut t = QueryTrace::start();
        t.time("parse", || ());
        let r = t.render();
        assert!(r.contains("parse "), "{r}");
        assert!(r.contains("total "), "{r}");
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(873)), "873ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(4)), "4.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
