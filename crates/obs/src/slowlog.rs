//! The slow-query log: a bounded ring buffer of queries whose total
//! wall-clock time crossed the session's threshold. Recording is cheap
//! (one mutex push on an already-slow path); the ring never grows past
//! its capacity, so a long-lived session cannot leak memory through it.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One logged slow query.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The statement text as the client sent it.
    pub sql: String,
    /// Total wall-clock time the statement took.
    pub total: Duration,
    /// A one-line phase breakdown (see [`crate::QueryTrace::render`]).
    pub phases: String,
    /// When the statement finished.
    pub at: Instant,
}

/// A bounded ring buffer of [`SlowQuery`] entries; the oldest entry is
/// evicted when the ring is full. Interior-mutable so read paths
/// (`SHOW SLOW QUERIES`) work through a shared reference.
#[derive(Debug)]
pub struct SlowLog {
    cap: usize,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl SlowLog {
    /// A ring holding at most `cap` entries (`cap` 0 disables recording).
    pub fn new(cap: usize) -> SlowLog {
        SlowLog { cap, entries: Mutex::new(VecDeque::new()) }
    }

    /// Appends one entry, evicting the oldest when full.
    pub fn record(&self, entry: SlowQuery) {
        if self.cap == 0 {
            return;
        }
        let mut e = self.entries.lock().expect("slow log lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        if e.len() == self.cap {
            e.pop_front();
        }
        e.push_back(entry);
    }

    /// The logged entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries.lock().expect("slow log lock").iter().cloned().collect() // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log lock").len() // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.entries.lock().expect("slow log lock").clear(); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str, ms: u64) -> SlowQuery {
        SlowQuery {
            sql: sql.into(),
            total: Duration::from_millis(ms),
            phases: String::new(),
            at: Instant::now(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowLog::new(2);
        log.record(q("a", 1));
        log.record(q("b", 2));
        log.record(q("c", 3));
        let e = log.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].sql, "b");
        assert_eq!(e[1].sql, "c");
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let log = SlowLog::new(0);
        log.record(q("a", 1));
        assert!(log.is_empty());
    }

    #[test]
    fn clear_empties_the_ring() {
        let log = SlowLog::new(4);
        log.record(q("a", 1));
        log.clear();
        assert_eq!(log.len(), 0);
    }
}
