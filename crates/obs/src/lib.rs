//! # maybms-obs
//!
//! The observability layer of MayBMS-rs: a dependency-free (hand-rolled,
//! like everything else in this workspace) metrics registry, per-query
//! tracing, a slow-query ring buffer, and a Prometheus text-format
//! encoder. Every other crate in the workspace threads its counters
//! through here; the SQL surface (`SHOW METRICS`, `SHOW SLOW QUERIES`,
//! `SHOW REPLICATION STATUS`) and the `\metrics` REPL command read the
//! same registry back out.
//!
//! Design constraints, in order:
//!
//! 1. **Inert.** Recording a metric must never change query results, WAL
//!    bytes, or any other engine output — metrics are strictly
//!    write-only side channels (enforced by the tracing-is-inert
//!    property in `tests/observability.rs`).
//! 2. **Near-zero overhead.** A counter bump is one relaxed atomic add
//!    guarded by one relaxed atomic load of the global enable flag.
//!    Registry lookups (a mutex + map walk) happen once per call site:
//!    hot paths cache the returned handle in a `OnceLock`. With the
//!    `off` cargo feature every operation compiles to nothing.
//! 3. **Deterministic where the engine is.** Counters driven by the
//!    deterministic execution paths (rows per operator, memo decisions)
//!    total identically at every worker count; scheduling-dependent
//!    counters (pool steals) are documented as such.
//!
//! ```
//! let c = maybms_obs::counter("demo.requests");
//! c.inc();
//! assert!(c.get() >= 1);
//! let text = maybms_obs::prometheus_text(maybms_obs::global());
//! assert!(text.contains("maybms_demo_requests"));
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod prometheus;
pub mod registry;
pub mod slowlog;
pub mod trace;

pub use prometheus::prometheus_text;
pub use registry::{
    counter, enabled, gauge, global, histogram, set_enabled, Counter, Gauge, Histogram, Metric,
    MetricValue, Registry,
};
pub use slowlog::{SlowLog, SlowQuery};
pub use trace::{QueryTrace, Span};
