//! The Prometheus text exposition encoder: renders a [`Registry`]
//! snapshot in the format scrapers expect (`text/plain; version=0.0.4`).
//! Metric names are prefixed `maybms_` and sanitized (every character
//! outside `[a-zA-Z0-9_:]` becomes `_`, so the registry's dotted names
//! map `wal.appends` → `maybms_wal_appends`). Histograms expand into the
//! conventional `_bucket{le="…"}` / `_sum` / `_count` series.

use crate::registry::{MetricValue, Registry};

/// Sanitizes one registry name into a Prometheus metric name.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("maybms_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders every metric in `reg` in the Prometheus text format.
pub fn prometheus_text(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in reg.snapshot() {
        let pname = metric_name(&name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
            }
            MetricValue::Histogram(bounds, buckets, sum, count) => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                // Prometheus buckets are cumulative
                let mut cum = 0u64;
                for (i, b) in buckets.iter().enumerate() {
                    cum += b;
                    let le = match bounds.get(i) {
                        Some(bound) => bound.to_string(),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
                out.push_str(&format!("{pname}_sum {sum}\n{pname}_count {count}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::test_flag_lock as flag_lock;

    #[test]
    fn counters_and_gauges_render() {
        let _g = flag_lock();
        let r = Registry::new();
        r.counter("wal.appends").add(3);
        r.gauge("pool.queue_depth").set(-2);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE maybms_wal_appends counter"), "{text}");
        assert!(text.contains("maybms_wal_appends 3"), "{text}");
        assert!(text.contains("# TYPE maybms_pool_queue_depth gauge"), "{text}");
        assert!(text.contains("maybms_pool_queue_depth -2"), "{text}");
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let _g = flag_lock();
        let r = Registry::new();
        let h = r.histogram("q.us", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE maybms_q_us histogram"), "{text}");
        assert!(text.contains("maybms_q_us_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("maybms_q_us_bucket{le=\"100\"} 2"), "{text}");
        assert!(text.contains("maybms_q_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("maybms_q_us_sum 555"), "{text}");
        assert!(text.contains("maybms_q_us_count 3"), "{text}");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(metric_name("exec.rows.hash-join"), "maybms_exec_rows_hash_join");
    }
}
