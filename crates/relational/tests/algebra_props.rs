//! Property tests for the relational algebra: classic algebraic laws the
//! WSD rewriting layer silently relies on.

use proptest::prelude::*;

use maybms_relational::{ops, ColumnType, Expr, Relation, Schema, Tuple, Value};

fn schema() -> Schema {
    Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)])
}

fn arb_rel() -> impl Strategy<Value = Relation> {
    prop::collection::vec((0i64..5, 0i64..5), 0..8).prop_map(|rows| {
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .map(|(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect();
        Relation::from_rows_unchecked(schema(), tuples)
    })
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..5).prop_map(|v| Expr::col("a").eq(Expr::lit(v))),
        (0i64..5).prop_map(|v| Expr::col("b").lt(Expr::lit(v))),
        (0i64..5).prop_map(|v| Expr::col("a").ne(Expr::lit(v))),
    ]
}

proptest! {
    /// σ_p(σ_q(R)) = σ_q(σ_p(R)) = σ_{p∧q}(R).
    #[test]
    fn selection_commutes_and_fuses(r in arb_rel(), p in arb_pred(), q in arb_pred()) {
        let pq = ops::select(&ops::select(&r, &p).expect("σ"), &q).expect("σ");
        let qp = ops::select(&ops::select(&r, &q).expect("σ"), &p).expect("σ");
        let fused = ops::select(&r, &p.clone().and(q.clone())).expect("σ");
        prop_assert_eq!(pq.canonical(), qp.canonical());
        prop_assert_eq!(fused.canonical(), pq.canonical());
    }

    /// σ distributes over ∪ and −.
    #[test]
    fn selection_distributes(r in arb_rel(), s in arb_rel(), p in arb_pred()) {
        let lhs = ops::select(&ops::union(&r, &s).expect("∪"), &p).expect("σ");
        let rhs = ops::union(
            &ops::select(&r, &p).expect("σ"),
            &ops::select(&s, &p).expect("σ"),
        ).expect("∪");
        prop_assert_eq!(lhs.canonical(), rhs.canonical());

        let lhs2 = ops::select(&ops::difference(&r, &s).expect("−"), &p).expect("σ");
        let rhs2 = ops::difference(
            &ops::select(&r, &p).expect("σ"),
            &ops::select(&s, &p).expect("σ"),
        ).expect("−");
        prop_assert_eq!(lhs2.canonical(), rhs2.canonical());
    }

    /// Set-algebra laws: ∪/∩ commute; R − S = R − (R ∩ S); idempotence.
    #[test]
    fn set_laws(r in arb_rel(), s in arb_rel()) {
        prop_assert_eq!(
            ops::union(&r, &s).expect("∪").canonical(),
            ops::union(&s, &r).expect("∪").canonical()
        );
        prop_assert_eq!(
            ops::intersect(&r, &s).expect("∩").canonical(),
            ops::intersect(&s, &r).expect("∩").canonical()
        );
        let diff = ops::difference(&r, &s).expect("−");
        let via_intersect =
            ops::difference(&r, &ops::intersect(&r, &s).expect("∩")).expect("−");
        prop_assert_eq!(diff.canonical(), via_intersect.canonical());
        prop_assert_eq!(
            ops::union(&r, &r).expect("∪").canonical(),
            r.canonical()
        );
        // inclusion–exclusion on cardinalities of canonical forms
        let u = ops::union(&r, &s).expect("∪").len();
        let i = ops::intersect(&r, &s).expect("∩").len();
        prop_assert_eq!(u + i, r.canonical().len() + s.canonical().len());
    }

    /// Join = σ over product; hash and nested-loop joins agree.
    #[test]
    fn join_is_filtered_product(r in arb_rel(), s in arb_rel()) {
        let s = ops::rename(&ops::rename(&s, "a", "c").expect("ρ"), "b", "d").expect("ρ");
        let pred = Expr::col("a").eq(Expr::col("c"));
        let via_product = ops::select(&ops::product(&r, &s), &pred).expect("σ");
        let via_join = ops::theta_join(&r, &s, &pred).expect("⋈");
        let via_hash = ops::hash_join(&r, &s, "a", "c").expect("⋈h");
        prop_assert_eq!(via_product.canonical(), via_join.canonical());
        prop_assert_eq!(via_join.canonical(), via_hash.canonical());
    }

    /// π is idempotent and drops duplicates only at distinct.
    #[test]
    fn projection_laws(r in arb_rel()) {
        let once = ops::project(&r, &["a"]).expect("π");
        let twice = ops::project(&once, &["a"]).expect("π");
        prop_assert_eq!(once.canonical(), twice.canonical());
        prop_assert_eq!(once.len(), r.len()); // bag semantics
        prop_assert!(ops::distinct(&once).len() <= once.len());
    }

    /// CSV round-trips every generated relation.
    #[test]
    fn csv_round_trip(r in arb_rel()) {
        let text = maybms_relational::csv::to_csv(&r);
        let back = maybms_relational::csv::from_csv(schema(), &text).expect("parse");
        prop_assert_eq!(back, r);
    }
}
