//! Property tests for the expression evaluator: three-valued logic laws,
//! binding totality, and comparison coherence with the value order.

use proptest::prelude::*;

use maybms_relational::{BoundExpr, CmpOp, ColumnType, Expr, Schema, Tuple, Value};

#[allow(dead_code)]
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(Value::Int),
        (-50i64..50).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[a-c]{0,3}".prop_map(Value::str),
    ]
}

fn schema() -> Schema {
    Schema::new(vec![
        ("i", ColumnType::Int),
        ("f", ColumnType::Float),
        ("s", ColumnType::Str),
        ("b", ColumnType::Bool),
    ])
}

fn arb_row() -> impl Strategy<Value = Tuple> {
    (
        prop_oneof![Just(Value::Null), (-20i64..20).prop_map(Value::Int)],
        prop_oneof![Just(Value::Null), (-20i64..20).prop_map(|i| Value::Float(i as f64))],
        prop_oneof![Just(Value::Null), "[a-c]{0,2}".prop_map(Value::str)],
        prop_oneof![Just(Value::Null), any::<bool>().prop_map(Value::Bool)],
    )
        .prop_map(|(i, f, s, b)| Tuple::new(vec![i, f, s, b]))
}

/// Random predicates over the fixed schema.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (-20i64..20).prop_map(|v| Expr::col("i").eq(Expr::lit(v))),
        (-20i64..20).prop_map(|v| Expr::col("i").lt(Expr::lit(v))),
        (-20i64..20).prop_map(|v| Expr::col("f").ge(Expr::lit(v as f64))),
        "[a-c]{0,2}".prop_map(|v| Expr::col("s").eq(Expr::lit(Value::str(v)))),
        Just(Expr::col("b").eq(Expr::lit(true))),
        Just(Expr::col("i").is_null()),
        Just(Expr::col("s").is_null()),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
        ]
    })
}

fn eval(e: &Expr, t: &Tuple) -> Option<bool> {
    let b: BoundExpr = e.bind(&schema()).expect("bind against fixed schema");
    b.eval(t).expect("no arithmetic in predicates").as_bool()
}

proptest! {
    /// Double negation is the identity in Kleene logic.
    #[test]
    fn double_negation(e in arb_pred(), t in arb_row()) {
        prop_assert_eq!(eval(&e, &t), eval(&e.clone().not().not(), &t));
    }

    /// De Morgan's laws hold under three-valued logic.
    #[test]
    fn de_morgan(a in arb_pred(), b in arb_pred(), t in arb_row()) {
        let lhs = eval(&a.clone().and(b.clone()).not(), &t);
        let rhs = eval(&a.clone().not().or(b.clone().not()), &t);
        prop_assert_eq!(lhs, rhs);
        let lhs2 = eval(&a.clone().or(b.clone()).not(), &t);
        let rhs2 = eval(&a.not().and(b.not()), &t);
        prop_assert_eq!(lhs2, rhs2);
    }

    /// AND/OR are commutative.
    #[test]
    fn commutativity(a in arb_pred(), b in arb_pred(), t in arb_row()) {
        prop_assert_eq!(
            eval(&a.clone().and(b.clone()), &t),
            eval(&b.clone().and(a.clone()), &t)
        );
        prop_assert_eq!(eval(&a.clone().or(b.clone()), &t), eval(&b.or(a), &t));
    }

    /// eval_predicate is eval with unknown collapsed to false.
    #[test]
    fn predicate_view(e in arb_pred(), t in arb_row()) {
        let b = e.bind(&schema()).expect("bind");
        let full = b.eval(&t).expect("eval").as_bool();
        let pred = b.eval_predicate(&t).expect("eval");
        prop_assert_eq!(pred, full.unwrap_or(false));
    }

    /// Comparisons agree with the total value order on non-NULL values.
    #[test]
    fn cmp_coherence(x in -50i64..50, y in -50i64..50) {
        let (vx, vy) = (Value::Int(x), Value::Int(y));
        prop_assert_eq!(CmpOp::Lt.apply(&vx, &vy), Some(x < y));
        prop_assert_eq!(CmpOp::Eq.apply(&vx, &vy), Some(x == y));
        prop_assert_eq!(CmpOp::Ge.apply(&vx, &vy), Some(x >= y));
        // int/float coherence
        prop_assert_eq!(
            CmpOp::Eq.apply(&Value::Int(x), &Value::Float(x as f64)),
            Some(true)
        );
    }

    /// Conjunct splitting and rebuilding is semantics-preserving.
    #[test]
    fn conjoin_round_trip(a in arb_pred(), b in arb_pred(), c in arb_pred(), t in arb_row()) {
        let e = a.and(b).and(c);
        let rebuilt = Expr::conjoin(e.conjuncts().into_iter().cloned().collect());
        prop_assert_eq!(eval(&e, &t), eval(&rebuilt, &t));
    }
}
