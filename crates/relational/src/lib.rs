//! # maybms-relational
//!
//! An in-memory relational engine: the substrate on which the MayBMS
//! world-set decomposition layer runs. The original MayBMS prototype was
//! implemented on top of PostgreSQL; this crate plays PostgreSQL's role,
//! providing typed relations, an expression language, and the full
//! relational algebra (selection, projection, product, joins, union,
//! difference, distinct, sorting, renaming, grouping/aggregation).
//!
//! The engine is deliberately simple — materialized row-store operators —
//! because the WSD layer's rewriting only needs a *faithful* relational
//! algebra, and because the paper's query-time comparison (E3) runs both the
//! incomplete-information side and the "conventional single world" side on
//! the same engine, exactly as both sides used PostgreSQL in the paper.
//!
//! ## Quick example
//!
//! ```
//! use maybms_relational::{Relation, Schema, ColumnType, Value, Expr, ops};
//!
//! let schema = Schema::new(vec![
//!     ("diagnosis", ColumnType::Str),
//!     ("test", ColumnType::Str),
//! ]);
//! let mut r = Relation::empty(schema);
//! r.push_values(vec![Value::str("pregnancy"), Value::str("ultrasound")]).unwrap();
//! r.push_values(vec![Value::str("hypothyroidism"), Value::str("TSH")]).unwrap();
//!
//! let preg = ops::select(&r, &Expr::col("diagnosis").eq(Expr::lit(Value::str("pregnancy")))).unwrap();
//! assert_eq!(preg.len(), 1);
//! let tests = ops::project(&preg, &["test"]).unwrap();
//! assert_eq!(tests.rows()[0][0], Value::str("ultrasound"));
//! ```

#![forbid(unsafe_code)]

pub mod catalog;
pub mod csv;
pub mod error;
pub mod expr;
pub mod ops;
pub mod pretty;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use error::{Error, Result};
pub use expr::{AggFunc, BinOp, BoundExpr, CmpOp, Expr};
pub use relation::Relation;
pub use schema::{Column, ColumnType, Schema};
pub use tuple::Tuple;
pub use value::Value;
