//! Minimal CSV import/export (comma-separated, double-quote escaping).
//!
//! Used to load generated census data and to dump experiment outputs; kept
//! dependency-free on purpose.

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::{ColumnType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Parses one CSV line honoring double quotes (`""` escapes a quote).
pub fn parse_line(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => return Err(Error::Csv(format!("stray quote in: {line}"))),
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(Error::Csv(format!("unterminated quote in: {line}")));
    }
    fields.push(cur);
    Ok(fields)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn parse_value(s: &str, ty: ColumnType) -> Result<Value> {
    if s.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        ColumnType::Bool => match s {
            "true" | "t" | "1" => Value::Bool(true),
            "false" | "f" | "0" => Value::Bool(false),
            _ => return Err(Error::Csv(format!("bad bool: {s}"))),
        },
        ColumnType::Int => Value::Int(
            s.parse::<i64>()
                .map_err(|e| Error::Csv(format!("bad int {s}: {e}")))?,
        ),
        ColumnType::Float => Value::Float(
            s.parse::<f64>()
                .map_err(|e| Error::Csv(format!("bad float {s}: {e}")))?,
        ),
        ColumnType::Str => Value::str(s),
    })
}

/// Reads a relation from CSV text. The first line must be the header and
/// must match `schema`'s column names.
pub fn from_csv(schema: Schema, text: &str) -> Result<Relation> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| Error::Csv("empty input".into()))?;
    let names = parse_line(header)?;
    let expected: Vec<&str> = schema.names();
    if names.len() != expected.len() || names.iter().map(String::as_str).ne(expected.iter().copied())
    {
        return Err(Error::Csv(format!(
            "header {names:?} does not match schema {expected:?}"
        )));
    }
    let mut rel = Relation::empty(schema.clone());
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = parse_line(line)?;
        if fields.len() != schema.len() {
            return Err(Error::Csv(format!(
                "line {}: expected {} fields, got {}",
                lineno + 2,
                schema.len(),
                fields.len()
            )));
        }
        let vals: Vec<Value> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| parse_value(f, schema.column(i).ty))
            .collect::<Result<_>>()?;
        rel.push(Tuple::new(vals))?;
    }
    Ok(rel)
}

/// Serializes a relation to CSV text (header + rows). NULL becomes the
/// empty field.
pub fn to_csv(r: &Relation) -> String {
    let mut out = String::new();
    let names: Vec<String> = r.schema().names().iter().map(|n| escape(n)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for t in r.iter() {
        let fields: Vec<String> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => escape(s),
                v => v.to_string(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("score", ColumnType::Float),
        ])
    }

    #[test]
    fn round_trip() {
        let mut r = Relation::empty(schema());
        r.push_values(vec![Value::Int(1), Value::str("a,b"), Value::Float(1.5)])
            .unwrap();
        r.push_values(vec![Value::Int(2), Value::Null, Value::Float(2.0)])
            .unwrap();
        let text = to_csv(&r);
        let back = from_csv(schema(), &text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn quote_escaping() {
        assert_eq!(parse_line(r#"a,"b,c",d"#).unwrap(), vec!["a", "b,c", "d"]);
        assert_eq!(parse_line(r#""say ""hi""""#).unwrap(), vec![r#"say "hi""#]);
        assert!(parse_line(r#""unterminated"#).is_err());
    }

    #[test]
    fn header_mismatch_errors() {
        assert!(from_csv(schema(), "id,wrong,score\n").is_err());
        assert!(from_csv(schema(), "").is_err());
    }

    #[test]
    fn bad_values_error() {
        assert!(from_csv(schema(), "id,name,score\nnotanint,a,1.0\n").is_err());
        assert!(from_csv(schema(), "id,name,score\n1,a\n").is_err());
    }

    #[test]
    fn empty_fields_are_null() {
        let r = from_csv(schema(), "id,name,score\n1,,\n").unwrap();
        assert_eq!(r.rows()[0][1], Value::Null);
        assert_eq!(r.rows()[0][2], Value::Null);
    }
}
