//! Error type shared by the relational engine.

use std::fmt;

/// Errors raised by schema validation, expression binding/evaluation and
/// relational operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// Two schemas that must be union-compatible are not.
    SchemaMismatch(String),
    /// A tuple's arity or a value's type does not match the schema.
    TypeError(String),
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// A relation name is already taken in the catalog.
    DuplicateRelation(String),
    /// Malformed CSV input.
    Csv(String),
    /// An expression is invalid in the requested context
    /// (e.g. an aggregate used as a row-level predicate).
    InvalidExpr(String),
    /// Division by zero or other arithmetic failure.
    Arithmetic(String),
    /// Durable-storage failure: I/O error, corrupt page or WAL record,
    /// or an unreadable snapshot/log format.
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            Error::TypeError(m) => write!(f, "type error: {m}"),
            Error::UnknownRelation(r) => write!(f, "unknown relation: {r}"),
            Error::DuplicateRelation(r) => write!(f, "relation already exists: {r}"),
            Error::Csv(m) => write!(f, "csv error: {m}"),
            Error::InvalidExpr(m) => write!(f, "invalid expression: {m}"),
            Error::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Error::UnknownColumn("x".into()).to_string(), "unknown column: x");
        assert_eq!(
            Error::UnknownRelation("r".into()).to_string(),
            "unknown relation: r"
        );
        assert!(Error::Csv("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::Arithmetic("div by zero".into()));
    }
}
