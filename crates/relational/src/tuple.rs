//! Tuples (rows) of a relation.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A row: a fixed-arity sequence of values. Tuples are schema-agnostic;
/// the owning [`crate::Relation`] enforces arity and types on insert.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    pub fn arity(&self) -> usize {
        self.values.len()
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// New tuple keeping only the given positions, in order.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenation of two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Estimated byte footprint (for E1 storage accounting).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn project_and_concat() {
        let a = t(vec![Value::Int(1), Value::str("x"), Value::Bool(true)]);
        let p = a.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int(1)]);
        let b = t(vec![Value::Null]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        assert_eq!(c[3], Value::Null);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = t(vec![Value::Int(1), Value::str("a")]);
        let b = t(vec![Value::Int(1), Value::str("b")]);
        assert!(a < b);
    }

    #[test]
    fn debug_format() {
        let a = t(vec![Value::Int(1), Value::Null]);
        assert_eq!(format!("{a:?}"), "(1, NULL)");
    }
}
