//! Relation schemas: ordered, named, typed columns.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Bool,
    Int,
    Float,
    Str,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column { name: name.into(), ty }
    }
}

/// An ordered list of columns with O(1) name lookup.
///
/// Schemas are cheaply cloneable (`Arc` inside) because every tuple-producing
/// operator stamps its output relation with a schema.
#[derive(Clone)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

struct SchemaInner {
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs. Later duplicates shadow
    /// earlier ones in name lookup (as after a product of relations sharing
    /// a column name); positional access always works.
    pub fn new<N: Into<String>>(cols: Vec<(N, ColumnType)>) -> Schema {
        Schema::from_columns(
            cols.into_iter()
                .map(|(n, t)| Column::new(n, t))
                .collect::<Vec<_>>(),
        )
    }

    /// Builds a schema from ready-made columns.
    pub fn from_columns(columns: Vec<Column>) -> Schema {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            by_name.insert(c.name.clone(), i);
        }
        Schema {
            inner: Arc::new(SchemaInner { columns, by_name }),
        }
    }

    /// The empty schema (zero columns) — the schema of `DUAL`-like relations.
    pub fn empty() -> Schema {
        Schema::from_columns(Vec::new())
    }

    pub fn columns(&self) -> &[Column] {
        &self.inner.columns
    }

    pub fn len(&self) -> usize {
        self.inner.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.inner
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Whether a column of this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.by_name.contains_key(name)
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.inner.columns[i]
    }

    /// Projection onto a list of column names, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            let i = self.index_of(n)?;
            cols.push(self.inner.columns[i].clone());
        }
        Ok(Schema::from_columns(cols))
    }

    /// Concatenation (for cartesian products / joins). Duplicate names are
    /// allowed; lookup resolves to the *left* occurrence first only if the
    /// right side does not redefine it, so callers usually rename first.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.inner.columns.clone();
        cols.extend(other.inner.columns.iter().cloned());
        // Rebuild with left-biased name resolution.
        let mut by_name = HashMap::with_capacity(cols.len());
        for (i, c) in cols.iter().enumerate() {
            by_name.entry(c.name.clone()).or_insert(i);
        }
        Schema {
            inner: Arc::new(SchemaInner { columns: cols, by_name }),
        }
    }

    /// A copy of the schema with every column name prefixed `prefix.name`.
    pub fn qualify(&self, prefix: &str) -> Schema {
        Schema::from_columns(
            self.inner
                .columns
                .iter()
                .map(|c| Column::new(format!("{prefix}.{}", c.name), c.ty))
                .collect(),
        )
    }

    /// A copy with one column renamed.
    pub fn rename(&self, from: &str, to: &str) -> Result<Schema> {
        let idx = self.index_of(from)?;
        let mut cols = self.inner.columns.clone();
        cols[idx].name = to.to_string();
        Ok(Schema::from_columns(cols))
    }

    /// Union compatibility: same arity and column types (names may differ,
    /// the left side's names win, as in SQL).
    pub fn union_compatible(&self, other: &Schema) -> Result<()> {
        if self.len() != other.len() {
            return Err(Error::SchemaMismatch(format!(
                "arity {} vs {}",
                self.len(),
                other.len()
            )));
        }
        for (a, b) in self.columns().iter().zip(other.columns()) {
            if a.ty != b.ty {
                return Err(Error::SchemaMismatch(format!(
                    "column {} has type {} vs {}",
                    a.name, a.ty, b.ty
                )));
            }
        }
        Ok(())
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.inner.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema(")?;
        for (i, c) in self.inner.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.inner.columns == other.inner.columns
    }
}
impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)])
    }

    #[test]
    fn lookup_and_project() {
        let s = ab();
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("c").is_err());
        let p = s.project(&["b"]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.column(0).name, "b");
        assert!(s.project(&["z"]).is_err());
    }

    #[test]
    fn concat_is_left_biased() {
        let s = ab().concat(&Schema::new(vec![("a", ColumnType::Float)]));
        assert_eq!(s.len(), 3);
        // name lookup resolves to the left "a"
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.column(2).ty, ColumnType::Float);
    }

    #[test]
    fn qualify_prefixes_names() {
        let q = ab().qualify("r");
        assert_eq!(q.names(), vec!["r.a", "r.b"]);
    }

    #[test]
    fn rename_works() {
        let s = ab().rename("a", "x").unwrap();
        assert!(s.contains("x"));
        assert!(!s.contains("a"));
        assert!(ab().rename("nope", "x").is_err());
    }

    #[test]
    fn union_compat() {
        let s1 = ab();
        let s2 = Schema::new(vec![("c", ColumnType::Int), ("d", ColumnType::Str)]);
        assert!(s1.union_compatible(&s2).is_ok());
        let s3 = Schema::new(vec![("c", ColumnType::Str), ("d", ColumnType::Str)]);
        assert!(s1.union_compatible(&s3).is_err());
        let s4 = Schema::new(vec![("c", ColumnType::Int)]);
        assert!(s1.union_compatible(&s4).is_err());
    }

    #[test]
    fn equality_ignores_arc_identity() {
        assert_eq!(ab(), ab());
        assert_ne!(ab(), Schema::empty());
    }
}
