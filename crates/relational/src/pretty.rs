//! ASCII table rendering for relations — used by examples, the SQL shell,
//! and the experiment harness output.

use crate::relation::Relation;
use crate::value::Value;

/// Renders a relation as an ASCII table, capping at `max_rows` data rows
/// (a trailer line reports elided rows).
pub fn render(r: &Relation, max_rows: usize) -> String {
    let names = r.schema().names();
    let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
    let shown = r.rows().iter().take(max_rows);
    let rendered: Vec<Vec<String>> = shown
        .map(|t| {
            t.values()
                .iter()
                .map(|v| match v {
                    Value::Null => "NULL".to_string(),
                    v => v.to_string(),
                })
                .collect()
        })
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let sep = |widths: &[usize]| {
        let mut s = String::from("+");
        for w in widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };

    let mut out = String::new();
    out.push_str(&sep(&widths));
    out.push('|');
    for (n, w) in names.iter().zip(&widths) {
        out.push_str(&format!(" {n:<w$} |"));
    }
    out.push('\n');
    out.push_str(&sep(&widths));
    for row in &rendered {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&sep(&widths));
    if r.len() > max_rows {
        out.push_str(&format!("({} rows, {} shown)\n", r.len(), max_rows));
    } else {
        out.push_str(&format!("({} rows)\n", r.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    #[test]
    fn renders_header_and_rows() {
        let mut r = Relation::empty(Schema::new(vec![
            ("name", ColumnType::Str),
            ("n", ColumnType::Int),
        ]));
        r.push_values(vec![Value::str("x"), Value::Int(1)]).unwrap();
        r.push_values(vec![Value::Null, Value::Int(22)]).unwrap();
        let s = render(&r, 10);
        assert!(s.contains("| name |"));
        assert!(s.contains("NULL"));
        assert!(s.contains("(2 rows)"));
    }

    #[test]
    fn caps_rows() {
        let mut r = Relation::empty(Schema::new(vec![("n", ColumnType::Int)]));
        for i in 0..100 {
            r.push_values(vec![Value::Int(i)]).unwrap();
        }
        let s = render(&r, 5);
        assert!(s.contains("(100 rows, 5 shown)"));
    }
}
