//! A named collection of relations — the engine's "database".

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::relation::Relation;

/// Maps relation names to materialized relations. Iteration order is the
/// name order (BTreeMap) so catalog dumps are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a relation; fails if the name is taken.
    pub fn create(&mut self, name: impl Into<String>, r: Relation) -> Result<()> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(Error::DuplicateRelation(name));
        }
        self.relations.insert(name, r);
        Ok(())
    }

    /// Registers or replaces a relation.
    pub fn put(&mut self, name: impl Into<String>, r: Relation) {
        self.relations.insert(name.into(), r);
    }

    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    pub fn drop_relation(&mut self, name: &str) -> Result<Relation> {
        self.relations
            .remove(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn rel() -> Relation {
        Relation::empty(Schema::new(vec![("a", ColumnType::Int)]))
    }

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        c.create("r", rel()).unwrap();
        assert!(c.create("r", rel()).is_err());
        assert!(c.get("r").is_ok());
        assert!(c.get("s").is_err());
        assert_eq!(c.len(), 1);
        c.drop_relation("r").unwrap();
        assert!(c.is_empty());
        assert!(c.drop_relation("r").is_err());
    }

    #[test]
    fn put_replaces() {
        let mut c = Catalog::new();
        c.put("r", rel());
        c.put("r", rel());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.put("zeta", rel());
        c.put("alpha", rel());
        let names: Vec<&str> = c.names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
