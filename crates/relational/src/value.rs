//! Scalar values stored in relations.
//!
//! `Value` is the single dynamic value type of the engine. Strings are
//! reference-counted (`Arc<str>`) so that the WSD layer can share attribute
//! values between many component rows without copying — the space accounting
//! in experiment E1 depends on this.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::schema::ColumnType;

/// A scalar database value.
///
/// `Value` implements a *total* order (`Null` < `Bool` < `Int`/`Float`
/// interleaved numerically < `Str`) so relations can be sorted and
/// deduplicated deterministically. Floats are compared via
/// [`f64::total_cmp`], so `NaN` is ordered too (after all other numbers).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / missing value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The column type this value naturally belongs to, or `None` for NULL
    /// (NULL inhabits every type).
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ColumnType::Bool),
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean for predicate evaluation.
    /// NULL is `None` (unknown, three-valued logic).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Null => None,
            _ => None,
        }
    }

    /// Numeric view used by arithmetic and numeric comparison.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value matches (is assignable to) a column type.
    /// NULL matches every type; Int is accepted by Float columns.
    pub fn matches_type(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Bool(_), ColumnType::Bool)
                | (Value::Int(_), ColumnType::Int)
                | (Value::Int(_), ColumnType::Float)
                | (Value::Float(_), ColumnType::Float)
                | (Value::Str(_), ColumnType::Str)
        )
    }

    /// SQL-style equality: comparing with NULL yields NULL (None);
    /// Int/Float compare numerically.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (a, b) => Some(Self::cmp_non_null(a, b) == Ordering::Equal),
        }
    }

    /// SQL-style ordering comparison; NULL operands yield None.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (a, b) => Some(Self::cmp_non_null(a, b)),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    fn cmp_non_null(a: &Value, b: &Value) -> Ordering {
        match (a, b) {
            (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
            (Value::Int(x), Value::Int(y)) => x.cmp(y),
            (Value::Float(x), Value::Float(y)) => x.total_cmp(y),
            (Value::Int(x), Value::Float(y)) => (*x as f64).total_cmp(y),
            (Value::Float(x), Value::Int(y)) => x.total_cmp(&(*y as f64)),
            (Value::Str(x), Value::Str(y)) => x.as_ref().cmp(y.as_ref()),
            _ => a.type_rank().cmp(&b.type_rank()),
        }
    }

    /// An estimate of the heap + inline bytes this value occupies; used by
    /// the E1 storage experiment. Shared strings are charged their full
    /// length (conservative: sharing makes real usage smaller).
    pub fn size_bytes(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => inline + s.len(),
            _ => inline,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order for sorting/deduplication: NULL first, then by type rank,
    /// numbers interleaved numerically.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            (a, b) => Self::cmp_non_null(a, b),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash alike because they
            // compare equal (1 == 1.0).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [Value::str("a"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::str("a"));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(hash_of(&Value::Int(1)), hash_of(&Value::Float(1.0)));
        assert_ne!(Value::Int(1), Value::Float(1.5));
    }

    #[test]
    fn sql_eq_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::str("a").sql_eq(&Value::str("b")), Some(false));
    }

    #[test]
    fn sql_cmp_orders_numbers_and_strings() {
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").sql_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), None);
    }

    #[test]
    fn type_checks() {
        assert!(Value::Int(3).matches_type(ColumnType::Int));
        assert!(Value::Int(3).matches_type(ColumnType::Float));
        assert!(!Value::Float(3.0).matches_type(ColumnType::Int));
        assert!(Value::Null.matches_type(ColumnType::Str));
        assert!(!Value::str("x").matches_type(ColumnType::Bool));
    }

    #[test]
    fn display_round_trips_reasonably() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn nan_is_ordered_not_equal_to_numbers() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert!(nan > Value::Float(f64::INFINITY));
    }

    #[test]
    fn size_accounting_charges_strings() {
        let base = Value::Int(1).size_bytes();
        assert_eq!(Value::str("abcd").size_bytes(), base + 4);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(2.0), Value::Float(2.0));
    }
}
