//! The expression language: comparisons, boolean connectives, arithmetic.
//!
//! Expressions are built by name ([`Expr`]), then *bound* against a schema
//! ([`Expr::bind`]) which resolves column references to positions. Bound
//! expressions evaluate against tuples with SQL three-valued logic
//! (NULL-aware comparisons).

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluates under three-valued logic (`None` = unknown).
    pub fn apply(self, a: &Value, b: &Value) -> Option<bool> {
        let ord = a.sql_cmp(b)?;
        Some(match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        })
    }

    /// The operator with arguments swapped (`a op b == b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

/// Aggregate functions for GROUP BY evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        };
        write!(f, "{s}")
    }
}

/// An unbound (name-based) expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two sub-expressions.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// `expr IS NULL`
    IsNull(Box<Expr>),
    /// `expr IN (v1, v2, ...)`
    InList(Box<Expr>, Vec<Value>),
    /// A `?` placeholder of a prepared statement, by 0-based position.
    /// Must be substituted ([`Expr::with_params`]) before binding.
    Param(u32),
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    pub fn in_list(self, vals: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), vals)
    }

    /// Resolves column names to positions against `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(n) => BoundExpr::Col(schema.index_of(n)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                BoundExpr::Cmp(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::Bin(op, a, b) => {
                BoundExpr::Bin(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => {
                BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(schema)?)),
            Expr::IsNull(a) => BoundExpr::IsNull(Box::new(a.bind(schema)?)),
            Expr::InList(a, vs) => BoundExpr::InList(Box::new(a.bind(schema)?), vs.clone()),
            Expr::Param(i) => {
                return Err(Error::InvalidExpr(format!(
                    "unbound parameter ?{} (bind prepared-statement parameters first)",
                    i + 1
                )))
            }
        })
    }

    /// Substitutes every `?` placeholder with the value at its position,
    /// returning the closed expression. Fails on an out-of-range index.
    pub fn with_params(&self, params: &[Value]) -> Result<Expr> {
        Ok(match self {
            Expr::Param(i) => {
                let v = params.get(*i as usize).ok_or_else(|| {
                    Error::InvalidExpr(format!(
                        "parameter ?{} has no bound value ({} supplied)",
                        i + 1,
                        params.len()
                    ))
                })?;
                Expr::Lit(v.clone())
            }
            Expr::Col(_) | Expr::Lit(_) => self.clone(),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.with_params(params)?),
                Box::new(b.with_params(params)?),
            ),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.with_params(params)?),
                Box::new(b.with_params(params)?),
            ),
            Expr::And(a, b) => {
                Expr::And(Box::new(a.with_params(params)?), Box::new(b.with_params(params)?))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.with_params(params)?), Box::new(b.with_params(params)?))
            }
            Expr::Not(a) => Expr::Not(Box::new(a.with_params(params)?)),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.with_params(params)?)),
            Expr::InList(a, vs) => Expr::InList(Box::new(a.with_params(params)?), vs.clone()),
        })
    }

    /// The number of parameter slots referenced (`max index + 1`; 0 when
    /// the expression is closed).
    pub fn param_count(&self) -> u32 {
        match self {
            Expr::Param(i) => i + 1,
            Expr::Col(_) | Expr::Lit(_) => 0,
            Expr::Cmp(_, a, b) | Expr::Bin(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.param_count().max(b.param_count())
            }
            Expr::Not(a) | Expr::IsNull(a) => a.param_count(),
            Expr::InList(a, _) => a.param_count(),
        }
    }

    /// All column names referenced in the expression (with duplicates
    /// removed, in first-occurrence order). The WSD selection operator uses
    /// this to find the components a predicate touches.
    pub fn columns(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Col(n) => {
                if !out.contains(&n.as_str()) {
                    out.push(n);
                }
            }
            Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Cmp(_, a, b) | Expr::Bin(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.collect_columns(out),
            Expr::InList(a, _) => a.collect_columns(out),
        }
    }

    /// Splits a conjunction into its conjuncts (`a AND b AND c` → `[a,b,c]`);
    /// non-conjunctions return themselves. Used by the optimizer for
    /// predicate pushdown.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::And(a, b) = e {
                walk(a, out);
                walk(b, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuilds a conjunction from conjuncts; empty input yields `TRUE`.
    pub fn conjoin(mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::Lit(Value::Bool(true)),
            1 => parts.pop().expect("len checked"),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, e| acc.and(e))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::InList(a, vs) => {
                write!(f, "({a} IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match v {
                        Value::Str(s) => write!(f, "'{s}'")?,
                        v => write!(f, "{v}")?,
                    }
                }
                write!(f, "))")
            }
            Expr::Param(i) => write!(f, "?{}", i + 1),
        }
    }
}

/// An expression with column references resolved to tuple positions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Col(usize),
    Lit(Value),
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    Bin(BinOp, Box<BoundExpr>, Box<BoundExpr>),
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    IsNull(Box<BoundExpr>),
    InList(Box<BoundExpr>, Vec<Value>),
}

impl BoundExpr {
    /// Evaluates to a value. Boolean connectives use SQL three-valued logic,
    /// with unknown represented as NULL.
    pub fn eval(&self, t: &Tuple) -> Result<Value> {
        Ok(match self {
            BoundExpr::Col(i) => t
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::InvalidExpr(format!("column position {i} out of range")))?,
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(t)?, b.eval(t)?);
                match op.apply(&va, &vb) {
                    Some(r) => Value::Bool(r),
                    None => Value::Null,
                }
            }
            BoundExpr::Bin(op, a, b) => {
                let (va, vb) = (a.eval(t)?, b.eval(t)?);
                eval_arith(*op, &va, &vb)?
            }
            BoundExpr::And(a, b) => {
                match (a.eval(t)?.as_bool(), b.eval(t)?.as_bool()) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                }
            }
            BoundExpr::Or(a, b) => match (a.eval(t)?.as_bool(), b.eval(t)?.as_bool()) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            BoundExpr::Not(a) => match a.eval(t)?.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            BoundExpr::IsNull(a) => Value::Bool(a.eval(t)?.is_null()),
            BoundExpr::InList(a, vs) => {
                let v = a.eval(t)?;
                if v.is_null() {
                    Value::Null
                } else {
                    Value::Bool(vs.iter().any(|x| x.sql_eq(&v) == Some(true)))
                }
            }
        })
    }

    /// Evaluates as a predicate: unknown (NULL) counts as false, as in a
    /// SQL WHERE clause.
    pub fn eval_predicate(&self, t: &Tuple) -> Result<bool> {
        Ok(self.eval(t)?.as_bool().unwrap_or(false))
    }
}

fn eval_arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both sides are integers, float otherwise.
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        return Ok(match op {
            BinOp::Add => Value::Int(x.wrapping_add(y)),
            BinOp::Sub => Value::Int(x.wrapping_sub(y)),
            BinOp::Mul => Value::Int(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    return Err(Error::Arithmetic("integer division by zero".into()));
                }
                Value::Int(x / y)
            }
            BinOp::Mod => {
                if y == 0 {
                    return Err(Error::Arithmetic("integer modulo by zero".into()));
                }
                Value::Int(x % y)
            }
        });
    }
    let (x, y) = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(Error::TypeError(format!(
                "arithmetic on non-numeric values {a} and {b}"
            )))
        }
    };
    Ok(Value::Float(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Mod => x % y,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            ("a", ColumnType::Int),
            ("b", ColumnType::Str),
            ("c", ColumnType::Float),
        ])
    }

    fn row(a: i64, b: &str, c: f64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::str(b), Value::Float(c)])
    }

    #[test]
    fn bind_resolves_columns() {
        let e = Expr::col("a").eq(Expr::lit(1i64));
        let be = e.bind(&schema()).unwrap();
        assert!(be.eval_predicate(&row(1, "x", 0.0)).unwrap());
        assert!(!be.eval_predicate(&row(2, "x", 0.0)).unwrap());
        assert!(Expr::col("zzz").bind(&schema()).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        let t = Tuple::new(vec![Value::Null, Value::str("x"), Value::Float(1.0)]);
        // NULL = 1 → unknown → predicate false
        let e = Expr::col("a").eq(Expr::lit(1i64)).bind(&s).unwrap();
        assert!(!e.eval_predicate(&t).unwrap());
        // NOT (NULL = 1) is still unknown → false
        let e2 = Expr::col("a").eq(Expr::lit(1i64)).not().bind(&s).unwrap();
        assert!(!e2.eval_predicate(&t).unwrap());
        // unknown OR true = true
        let e3 = Expr::col("a")
            .eq(Expr::lit(1i64))
            .or(Expr::lit(true))
            .bind(&s)
            .unwrap();
        assert!(e3.eval_predicate(&t).unwrap());
        // unknown AND false = false
        let e4 = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::lit(false))
            .bind(&s)
            .unwrap();
        assert_eq!(e4.eval(&t).unwrap(), Value::Bool(false));
        // IS NULL sees through
        let e5 = Expr::col("a").is_null().bind(&s).unwrap();
        assert!(e5.eval_predicate(&t).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let s = schema();
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::col("a")),
            Box::new(Expr::lit(2i64)),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(e.eval(&row(40, "x", 0.0)).unwrap(), Value::Int(42));
        let e2 = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::col("c")),
            Box::new(Expr::lit(2i64)),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(e2.eval(&row(0, "x", 1.5)).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn division_by_zero_is_error() {
        let s = schema();
        let e = Expr::Bin(
            BinOp::Div,
            Box::new(Expr::col("a")),
            Box::new(Expr::lit(0i64)),
        )
        .bind(&s)
        .unwrap();
        assert!(e.eval(&row(1, "x", 0.0)).is_err());
        // float division by zero is IEEE infinity, not an error
        let e2 = Expr::Bin(
            BinOp::Div,
            Box::new(Expr::col("c")),
            Box::new(Expr::lit(0.0)),
        )
        .bind(&s)
        .unwrap();
        assert_eq!(
            e2.eval(&row(0, "x", 1.0)).unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn in_list() {
        let s = schema();
        let e = Expr::col("b")
            .in_list(vec![Value::str("x"), Value::str("y")])
            .bind(&s)
            .unwrap();
        assert!(e.eval_predicate(&row(0, "y", 0.0)).unwrap());
        assert!(!e.eval_predicate(&row(0, "z", 0.0)).unwrap());
    }

    #[test]
    fn columns_collects_unique_names() {
        let e = Expr::col("a")
            .eq(Expr::col("b"))
            .and(Expr::col("a").gt(Expr::lit(0i64)));
        assert_eq!(e.columns(), vec!["a", "b"]);
    }

    #[test]
    fn conjuncts_split_and_rebuild() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit("x")))
            .and(Expr::col("c").gt(Expr::lit(0.0)));
        assert_eq!(e.conjuncts().len(), 3);
        let rebuilt = Expr::conjoin(e.conjuncts().into_iter().cloned().collect());
        assert_eq!(rebuilt.conjuncts().len(), 3);
        assert_eq!(Expr::conjoin(vec![]), Expr::Lit(Value::Bool(true)));
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(
            CmpOp::Le.apply(&Value::Int(1), &Value::Int(1)),
            Some(true)
        );
    }

    #[test]
    fn params_substitute_before_bind() {
        let s = schema();
        let e = Expr::col("a").eq(Expr::Param(0)).and(Expr::col("b").ne(Expr::Param(1)));
        assert_eq!(e.param_count(), 2);
        // binding with unbound params is refused
        assert!(e.bind(&s).is_err());
        // substituting closes the expression
        let closed = e.with_params(&[Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(closed.param_count(), 0);
        let be = closed.bind(&s).unwrap();
        assert!(!be.eval_predicate(&row(1, "x", 0.0)).unwrap());
        assert!(be.eval_predicate(&row(1, "y", 0.0)).unwrap());
        // too few values is an error
        assert!(e.with_params(&[Value::Int(1)]).is_err());
        assert_eq!(Expr::Param(0).to_string(), "?1");
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col("a").eq(Expr::lit("x")).and(Expr::col("b").is_null());
        assert_eq!(e.to_string(), "((a = 'x') AND (b IS NULL))");
    }
}
