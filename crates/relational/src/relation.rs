//! Materialized relations: a schema plus a bag of tuples.

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A materialized relation (bag semantics; use [`Relation::distinct_in_place`]
/// or [`crate::ops::distinct`] for set semantics).
#[derive(Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation { schema, rows: Vec::new() }
    }

    /// Builds a relation from rows, validating each against the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Relation> {
        let mut r = Relation::empty(schema);
        for t in rows {
            r.push(t)?;
        }
        Ok(r)
    }

    /// Builds a relation without per-row validation. The caller guarantees
    /// every tuple matches the schema; operators use this internally after
    /// transforming already-validated rows.
    pub fn from_rows_unchecked(schema: Schema, rows: Vec<Tuple>) -> Relation {
        Relation { schema, rows }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Validates and appends a tuple.
    pub fn push(&mut self, t: Tuple) -> Result<()> {
        if t.arity() != self.schema.len() {
            return Err(Error::TypeError(format!(
                "tuple arity {} does not match schema arity {}",
                t.arity(),
                self.schema.len()
            )));
        }
        for (i, v) in t.values().iter().enumerate() {
            let col = self.schema.column(i);
            if !v.matches_type(col.ty) {
                return Err(Error::TypeError(format!(
                    "value {v} not valid for column {} of type {}",
                    col.name, col.ty
                )));
            }
        }
        self.rows.push(t);
        Ok(())
    }

    /// Validates and appends a row given as plain values.
    pub fn push_values(&mut self, values: Vec<Value>) -> Result<()> {
        self.push(Tuple::new(values))
    }

    /// Appends without validation (caller-guaranteed well-typed).
    pub fn push_unchecked(&mut self, t: Tuple) {
        debug_assert_eq!(t.arity(), self.schema.len());
        self.rows.push(t);
    }

    /// Sorts rows by the total tuple order (deterministic output order).
    pub fn sort_in_place(&mut self) {
        self.rows.sort();
    }

    /// Removes duplicate rows (set semantics), preserving first occurrence
    /// order of the sorted sequence.
    pub fn distinct_in_place(&mut self) {
        self.rows.sort();
        self.rows.dedup();
    }

    /// A sorted, deduplicated copy — canonical form for comparisons in tests
    /// and for world-equality checks in the world-set engine.
    pub fn canonical(&self) -> Relation {
        let mut c = self.clone();
        c.distinct_in_place();
        c
    }

    /// Column index shortcut.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }

    /// Estimated bytes used by the data (rows only, not the schema); the
    /// E1 storage experiment compares these estimates across
    /// representations, so the same estimator must be used everywhere.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(Tuple::size_bytes).sum()
    }

    /// Takes the rows out, leaving the relation empty.
    pub fn take_rows(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.rows)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?} [{} rows]", self.schema, self.rows.len())?;
        for t in self.rows.iter().take(20) {
            writeln!(f, "  {t:?}")?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  ... ({} more)", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)])
    }

    #[test]
    fn push_validates_arity_and_types() {
        let mut r = Relation::empty(schema());
        assert!(r.push_values(vec![Value::Int(1), Value::str("x")]).is_ok());
        assert!(r.push_values(vec![Value::Int(1)]).is_err());
        assert!(r
            .push_values(vec![Value::str("oops"), Value::str("x")])
            .is_err());
        assert!(r.push_values(vec![Value::Null, Value::Null]).is_ok());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_and_canonical() {
        let mut r = Relation::empty(schema());
        for _ in 0..3 {
            r.push_values(vec![Value::Int(1), Value::str("x")]).unwrap();
        }
        r.push_values(vec![Value::Int(0), Value::str("y")]).unwrap();
        let c = r.canonical();
        assert_eq!(c.len(), 2);
        assert_eq!(c.rows()[0][0], Value::Int(0));
        // original remains a bag
        assert_eq!(r.len(), 4);
        r.distinct_in_place();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn from_rows_validates() {
        let good = vec![Tuple::new(vec![Value::Int(1), Value::str("a")])];
        assert!(Relation::from_rows(schema(), good).is_ok());
        let bad = vec![Tuple::new(vec![Value::Bool(true), Value::str("a")])];
        assert!(Relation::from_rows(schema(), bad).is_err());
    }

    #[test]
    fn size_bytes_grows_with_rows() {
        let mut r = Relation::empty(schema());
        let s0 = r.size_bytes();
        r.push_values(vec![Value::Int(1), Value::str("hello")]).unwrap();
        assert!(r.size_bytes() > s0);
    }
}
