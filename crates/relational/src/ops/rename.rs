//! Renaming (ρ) and qualification.

use crate::error::Result;
use crate::relation::Relation;

/// ρ: renames a single column; rows are shared structurally (cloned cheaply).
pub fn rename(r: &Relation, from: &str, to: &str) -> Result<Relation> {
    let schema = r.schema().rename(from, to)?;
    Ok(Relation::from_rows_unchecked(schema, r.rows().to_vec()))
}

/// Prefixes all column names with `prefix.` — used before self-joins and
/// products where names would collide.
pub fn qualify(r: &Relation, prefix: &str) -> Relation {
    Relation::from_rows_unchecked(r.schema().qualify(prefix), r.rows().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;

    fn sample() -> Relation {
        let mut r = Relation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        r.push_values(vec![Value::Int(1)]).unwrap();
        r
    }

    #[test]
    fn rename_changes_schema_not_rows() {
        let out = rename(&sample(), "a", "b").unwrap();
        assert_eq!(out.schema().names(), vec!["b"]);
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert!(rename(&sample(), "zzz", "b").is_err());
    }

    #[test]
    fn qualify_prefixes() {
        let out = qualify(&sample(), "r1");
        assert_eq!(out.schema().names(), vec!["r1.a"]);
    }
}
