//! The relational algebra over materialized [`crate::Relation`]s.
//!
//! Every operator is a pure function from input relation(s) to a fresh
//! output relation. This is the algebra that MayBMS query rewriting targets:
//! a query over a world-set decomposition becomes a *sequence of these
//! operations over the component relations* (plus ⊥-marking, which lives in
//! `maybms-core`).

mod aggregate;
mod join;
mod product;
mod project;
mod rename;
mod select;
mod setops;
mod sort;

pub use aggregate::{aggregate, AggSpec};
pub use join::{hash_join, nested_loop_join, theta_join};
pub use product::product;
pub use project::{project, project_expr};
pub use rename::{qualify, rename};
pub use select::select;
pub use setops::{difference, distinct, intersect, union, union_all};
pub use sort::{sort, sort_by};
