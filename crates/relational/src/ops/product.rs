//! Cartesian product (×) — the core operation of world-set decompositions:
//! a WSD *is* a relational product of its components.

use crate::relation::Relation;
use crate::tuple::Tuple;

/// r × s with concatenated schemas. Callers usually [`super::qualify`] the
/// inputs first when column names collide.
pub fn product(r: &Relation, s: &Relation) -> Relation {
    let schema = r.schema().concat(s.schema());
    let mut rows: Vec<Tuple> = Vec::with_capacity(r.len() * s.len());
    for a in r.iter() {
        for b in s.iter() {
            rows.push(a.concat(b));
        }
    }
    Relation::from_rows_unchecked(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;

    fn rel(name: &str, vals: &[i64]) -> Relation {
        let mut r = Relation::empty(Schema::new(vec![(name, ColumnType::Int)]));
        for v in vals {
            r.push_values(vec![Value::Int(*v)]).unwrap();
        }
        r
    }

    #[test]
    fn product_sizes_multiply() {
        let out = product(&rel("a", &[1, 2]), &rel("b", &[10, 20, 30]));
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().len(), 2);
        assert_eq!(out.rows()[5].values(), &[Value::Int(2), Value::Int(30)]);
    }

    #[test]
    fn product_with_empty_is_empty() {
        let out = product(&rel("a", &[1]), &rel("b", &[]));
        assert!(out.is_empty());
        assert_eq!(out.schema().len(), 2);
    }

    #[test]
    fn product_with_nullary_relation_is_identity_on_rows() {
        // A relation with zero columns and one row is the unit of ×.
        let unit = Relation::from_rows_unchecked(Schema::empty(), vec![Tuple::new(vec![])]);
        let r = rel("a", &[1, 2]);
        let out = product(&r, &unit);
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().len(), 1);
    }
}
