//! Selection (σ).

use crate::error::Result;
use crate::expr::Expr;
use crate::relation::Relation;

/// σ_pred(r): keeps the tuples satisfying `pred` (NULL-as-false semantics).
pub fn select(r: &Relation, pred: &Expr) -> Result<Relation> {
    let bound = pred.bind(r.schema())?;
    let mut out = Relation::empty(r.schema().clone());
    for t in r.iter() {
        if bound.eval_predicate(t)? {
            out.push_unchecked(t.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;

    fn sample() -> Relation {
        let mut r = Relation::empty(Schema::new(vec![
            ("diagnosis", ColumnType::Str),
            ("test", ColumnType::Str),
        ]));
        r.push_values(vec![Value::str("pregnancy"), Value::str("ultrasound")])
            .unwrap();
        r.push_values(vec![Value::str("hypothyroidism"), Value::str("TSH")])
            .unwrap();
        r.push_values(vec![Value::Null, Value::str("BMI")]).unwrap();
        r
    }

    #[test]
    fn select_filters() {
        let r = sample();
        let out = select(
            &r,
            &Expr::col("diagnosis").eq(Expr::lit("pregnancy")),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][1], Value::str("ultrasound"));
    }

    #[test]
    fn null_rows_are_dropped_by_comparison() {
        let r = sample();
        let out = select(&r, &Expr::col("diagnosis").ne(Expr::lit("pregnancy"))).unwrap();
        // NULL <> 'pregnancy' is unknown → dropped
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn select_true_keeps_all() {
        let r = sample();
        let out = select(&r, &Expr::lit(true)).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn unknown_column_errors() {
        let r = sample();
        assert!(select(&r, &Expr::col("nope").is_null()).is_err());
    }
}
