//! Projection (π). Bag semantics; compose with [`super::distinct`] for sets.

use crate::error::Result;
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::{Column, ColumnType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// π_cols(r): keeps the named columns, in the given order.
pub fn project(r: &Relation, cols: &[&str]) -> Result<Relation> {
    let positions: Vec<usize> = cols
        .iter()
        .map(|c| r.schema().index_of(c))
        .collect::<Result<_>>()?;
    let schema = r.schema().project(cols)?;
    let rows = r.iter().map(|t| t.project(&positions)).collect();
    Ok(Relation::from_rows_unchecked(schema, rows))
}

/// Generalized projection: each output column is `(name, expression)`.
/// Output column types are inferred from the first row (falling back to the
/// referenced column's type, or `Str` for empty inputs of unknown shape).
pub fn project_expr(r: &Relation, cols: &[(&str, Expr)]) -> Result<Relation> {
    let bound: Vec<_> = cols
        .iter()
        .map(|(_, e)| e.bind(r.schema()))
        .collect::<Result<Vec<_>>>()?;

    let mut rows: Vec<Tuple> = Vec::with_capacity(r.len());
    for t in r.iter() {
        let vals: Vec<Value> = bound.iter().map(|b| b.eval(t)).collect::<Result<_>>()?;
        rows.push(Tuple::new(vals));
    }

    let mut schema_cols = Vec::with_capacity(cols.len());
    for (i, (name, e)) in cols.iter().enumerate() {
        let ty = infer_type(e, r, rows.first().map(|t| &t[i]));
        schema_cols.push(Column::new(*name, ty));
    }
    Ok(Relation::from_rows_unchecked(
        Schema::from_columns(schema_cols),
        rows,
    ))
}

fn infer_type(e: &Expr, r: &Relation, first: Option<&Value>) -> ColumnType {
    if let Expr::Col(n) = e {
        if let Ok(i) = r.schema().index_of(n) {
            return r.schema().column(i).ty;
        }
    }
    if let Some(v) = first {
        if let Some(t) = v.column_type() {
            return t;
        }
    }
    match e {
        Expr::Lit(v) => v.column_type().unwrap_or(ColumnType::Str),
        Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(..) | Expr::IsNull(..)
        | Expr::InList(..) => ColumnType::Bool,
        Expr::Bin(..) => ColumnType::Float,
        _ => ColumnType::Str,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn sample() -> Relation {
        let mut r = Relation::empty(Schema::new(vec![
            ("a", ColumnType::Int),
            ("b", ColumnType::Str),
        ]));
        r.push_values(vec![Value::Int(1), Value::str("x")]).unwrap();
        r.push_values(vec![Value::Int(2), Value::str("y")]).unwrap();
        r
    }

    #[test]
    fn project_reorders() {
        let out = project(&sample(), &["b", "a"]).unwrap();
        assert_eq!(out.schema().names(), vec!["b", "a"]);
        assert_eq!(out.rows()[0].values(), &[Value::str("x"), Value::Int(1)]);
    }

    #[test]
    fn project_is_bag_semantics() {
        let mut r = sample();
        r.push_values(vec![Value::Int(9), Value::str("x")]).unwrap();
        let out = project(&r, &["b"]).unwrap();
        assert_eq!(out.len(), 3); // duplicate "x" kept
    }

    #[test]
    fn project_expr_computes() {
        let out = project_expr(
            &sample(),
            &[(
                "a2",
                Expr::Bin(BinOp::Mul, Box::new(Expr::col("a")), Box::new(Expr::lit(2i64))),
            )],
        )
        .unwrap();
        assert_eq!(out.rows()[1][0], Value::Int(4));
        assert_eq!(out.schema().column(0).name, "a2");
    }

    #[test]
    fn missing_column_errors() {
        assert!(project(&sample(), &["zzz"]).is_err());
    }
}
