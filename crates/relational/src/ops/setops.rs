//! Set operations: union, difference, intersection, duplicate elimination.

use std::collections::HashSet;

use crate::error::Result;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// Bag union (UNION ALL). Schemas must be union-compatible; the left
/// schema's names win.
pub fn union_all(r: &Relation, s: &Relation) -> Result<Relation> {
    r.schema().union_compatible(s.schema())?;
    let mut rows = Vec::with_capacity(r.len() + s.len());
    rows.extend(r.iter().cloned());
    rows.extend(s.iter().cloned());
    Ok(Relation::from_rows_unchecked(r.schema().clone(), rows))
}

/// Set union (UNION): bag union followed by duplicate elimination.
pub fn union(r: &Relation, s: &Relation) -> Result<Relation> {
    let mut out = union_all(r, s)?;
    out.distinct_in_place();
    Ok(out)
}

/// Set difference r − s.
pub fn difference(r: &Relation, s: &Relation) -> Result<Relation> {
    r.schema().union_compatible(s.schema())?;
    let exclude: HashSet<&Tuple> = s.iter().collect();
    let mut out = Relation::empty(r.schema().clone());
    for t in r.iter() {
        if !exclude.contains(t) {
            out.push_unchecked(t.clone());
        }
    }
    out.distinct_in_place();
    Ok(out)
}

/// Set intersection r ∩ s.
pub fn intersect(r: &Relation, s: &Relation) -> Result<Relation> {
    r.schema().union_compatible(s.schema())?;
    let keep: HashSet<&Tuple> = s.iter().collect();
    let mut out = Relation::empty(r.schema().clone());
    for t in r.iter() {
        if keep.contains(t) {
            out.push_unchecked(t.clone());
        }
    }
    out.distinct_in_place();
    Ok(out)
}

/// Duplicate elimination (δ).
pub fn distinct(r: &Relation) -> Relation {
    let mut out = r.clone();
    out.distinct_in_place();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;

    fn rel(vals: &[i64]) -> Relation {
        let mut r = Relation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        for v in vals {
            r.push_values(vec![Value::Int(*v)]).unwrap();
        }
        r
    }

    #[test]
    fn union_dedups_union_all_does_not() {
        let (r, s) = (rel(&[1, 2, 2]), rel(&[2, 3]));
        assert_eq!(union_all(&r, &s).unwrap().len(), 5);
        assert_eq!(union(&r, &s).unwrap().len(), 3);
    }

    #[test]
    fn difference_removes_matches() {
        let out = difference(&rel(&[1, 2, 3, 3]), &rel(&[2])).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert_eq!(out.rows()[1][0], Value::Int(3));
    }

    #[test]
    fn intersect_keeps_common() {
        let out = intersect(&rel(&[1, 2, 2, 3]), &rel(&[2, 3, 4])).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn incompatible_schemas_error() {
        let mut s2 = Relation::empty(Schema::new(vec![("x", ColumnType::Str)]));
        s2.push_values(vec![Value::str("v")]).unwrap();
        assert!(union(&rel(&[1]), &s2).is_err());
        assert!(difference(&rel(&[1]), &s2).is_err());
        assert!(intersect(&rel(&[1]), &s2).is_err());
    }

    #[test]
    fn distinct_removes_duplicates() {
        assert_eq!(distinct(&rel(&[5, 5, 5])).len(), 1);
        assert_eq!(distinct(&rel(&[])).len(), 0);
    }
}
