//! Grouping and aggregation (γ).

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::expr::AggFunc;
use crate::relation::Relation;
use crate::schema::{Column, ColumnType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// One aggregate in the output: apply `func` to column `col` (ignored for
/// `Count`, which counts rows), producing output column `alias`.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    pub col: Option<String>,
    pub alias: String,
}

impl AggSpec {
    pub fn new(func: AggFunc, col: Option<&str>, alias: &str) -> AggSpec {
        AggSpec {
            func,
            col: col.map(str::to_string),
            alias: alias.to_string(),
        }
    }

    pub fn count(alias: &str) -> AggSpec {
        AggSpec::new(AggFunc::Count, None, alias)
    }
    pub fn sum(col: &str, alias: &str) -> AggSpec {
        AggSpec::new(AggFunc::Sum, Some(col), alias)
    }
    pub fn min(col: &str, alias: &str) -> AggSpec {
        AggSpec::new(AggFunc::Min, Some(col), alias)
    }
    pub fn max(col: &str, alias: &str) -> AggSpec {
        AggSpec::new(AggFunc::Max, Some(col), alias)
    }
    pub fn avg(col: &str, alias: &str) -> AggSpec {
        AggSpec::new(AggFunc::Avg, Some(col), alias)
    }
}

struct AggState {
    count: u64,
    sum: f64,
    sum_is_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> AggState {
        AggState { count: 0, sum: 0.0, sum_is_int: true, min: None, max: None }
    }

    fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
            if !matches!(v, Value::Int(_)) {
                self.sum_is_int = false;
            }
        }
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v < m => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v > m => self.max = Some(v.clone()),
            _ => {}
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
        }
    }
}

/// γ_{group_cols; aggs}(r). With empty `group_cols` produces a single row
/// (global aggregate), even for empty input (COUNT = 0).
pub fn aggregate(r: &Relation, group_cols: &[&str], aggs: &[AggSpec]) -> Result<Relation> {
    let group_pos: Vec<usize> = group_cols
        .iter()
        .map(|c| r.schema().index_of(c))
        .collect::<Result<_>>()?;
    let agg_pos: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match (&a.col, a.func) {
            (Some(c), _) => r.schema().index_of(c).map(Some),
            (None, AggFunc::Count) => Ok(None),
            (None, f) => Err(Error::InvalidExpr(format!("{f} requires a column"))),
        })
        .collect::<Result<_>>()?;

    // Output schema.
    let mut cols: Vec<Column> = group_pos
        .iter()
        .map(|&i| r.schema().column(i).clone())
        .collect();
    for (a, pos) in aggs.iter().zip(&agg_pos) {
        let ty = match a.func {
            AggFunc::Count => ColumnType::Int,
            AggFunc::Avg => ColumnType::Float,
            AggFunc::Sum => match pos.map(|i| r.schema().column(i).ty) {
                Some(ColumnType::Float) => ColumnType::Float,
                _ => ColumnType::Int,
            },
            AggFunc::Min | AggFunc::Max => {
                pos.map(|i| r.schema().column(i).ty).unwrap_or(ColumnType::Int)
            }
        };
        cols.push(Column::new(a.alias.clone(), ty));
    }
    let schema = Schema::from_columns(cols);

    // Group.
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for t in r.iter() {
        let key: Vec<Value> = group_pos.iter().map(|&i| t[i].clone()).collect();
        let states = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|_| AggState::new()).collect()
        });
        for (st, pos) in states.iter_mut().zip(&agg_pos) {
            match pos {
                Some(i) => st.update(&t[*i]),
                None => st.count += 1, // COUNT(*) counts every row
            }
        }
    }

    // Global aggregate over empty input still yields one row.
    if group_pos.is_empty() && groups.is_empty() {
        let states: Vec<AggState> = aggs.iter().map(|_| AggState::new()).collect();
        groups.insert(Vec::new(), states);
        order.push(Vec::new());
    }

    let mut out = Relation::empty(schema);
    for key in order {
        let states = &groups[&key];
        let mut vals = key.clone();
        for (st, a) in states.iter().zip(aggs) {
            vals.push(st.finish(a.func));
        }
        out.push_unchecked(Tuple::new(vals));
    }
    out.sort_in_place(); // deterministic output order
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Relation {
        let mut r = Relation::empty(Schema::new(vec![
            ("g", ColumnType::Str),
            ("x", ColumnType::Int),
        ]));
        for (g, x) in [("a", 1), ("a", 2), ("b", 10), ("b", 20), ("b", 30)] {
            r.push_values(vec![Value::str(g), Value::Int(x)]).unwrap();
        }
        r
    }

    #[test]
    fn group_by_count_sum() {
        let out = aggregate(
            &sample(),
            &["g"],
            &[AggSpec::count("n"), AggSpec::sum("x", "s")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let a = &out.rows()[0];
        assert_eq!(a.values(), &[Value::str("a"), Value::Int(2), Value::Int(3)]);
        let b = &out.rows()[1];
        assert_eq!(b.values(), &[Value::str("b"), Value::Int(3), Value::Int(60)]);
    }

    #[test]
    fn global_aggregates() {
        let out = aggregate(
            &sample(),
            &[],
            &[
                AggSpec::min("x", "lo"),
                AggSpec::max("x", "hi"),
                AggSpec::avg("x", "mean"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert_eq!(out.rows()[0][1], Value::Int(30));
        assert_eq!(out.rows()[0][2], Value::Float(63.0 / 5.0));
    }

    #[test]
    fn empty_input_global_count_is_zero() {
        let r = Relation::empty(Schema::new(vec![("x", ColumnType::Int)]));
        let out = aggregate(&r, &[], &[AggSpec::count("n"), AggSpec::sum("x", "s")]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
        assert_eq!(out.rows()[0][1], Value::Null);
    }

    #[test]
    fn nulls_ignored_by_column_aggs() {
        let mut r = Relation::empty(Schema::new(vec![("x", ColumnType::Int)]));
        r.push_values(vec![Value::Int(5)]).unwrap();
        r.push_values(vec![Value::Null]).unwrap();
        let out = aggregate(
            &r,
            &[],
            &[
                AggSpec::count("n"),
                AggSpec::new(AggFunc::Count, Some("x"), "nx"),
                AggSpec::avg("x", "m"),
            ],
        )
        .unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(2)); // COUNT(*)
        assert_eq!(out.rows()[0][1], Value::Int(1)); // COUNT(x)
        assert_eq!(out.rows()[0][2], Value::Float(5.0));
    }

    #[test]
    fn sum_without_column_errors() {
        let r = sample();
        assert!(aggregate(&r, &[], &[AggSpec::new(AggFunc::Sum, None, "s")]).is_err());
    }
}
