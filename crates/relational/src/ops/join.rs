//! Joins: generic theta join, nested-loop join, and hash equi-join.

use std::collections::HashMap;

use crate::error::Result;
use crate::expr::Expr;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// θ-join via product + selection semantics but evaluated pairwise without
/// materializing the full product. The predicate is bound against the
/// concatenated schema.
pub fn nested_loop_join(r: &Relation, s: &Relation, pred: &Expr) -> Result<Relation> {
    let schema = r.schema().concat(s.schema());
    let bound = pred.bind(&schema)?;
    let mut out = Relation::empty(schema);
    for a in r.iter() {
        for b in s.iter() {
            let joined = a.concat(b);
            if bound.eval_predicate(&joined)? {
                out.push_unchecked(joined);
            }
        }
    }
    Ok(out)
}

/// Hash equi-join on `r.left_col = s.right_col`. NULL keys never match
/// (SQL semantics).
pub fn hash_join(r: &Relation, s: &Relation, left_col: &str, right_col: &str) -> Result<Relation> {
    let li = r.schema().index_of(left_col)?;
    let ri = s.schema().index_of(right_col)?;
    let schema = r.schema().concat(s.schema());
    let mut out = Relation::empty(schema);

    // Build on the smaller side.
    if r.len() <= s.len() {
        let mut table: HashMap<&Value, Vec<&Tuple>> = HashMap::with_capacity(r.len());
        for a in r.iter() {
            let k = &a[li];
            if !k.is_null() {
                table.entry(k).or_default().push(a);
            }
        }
        for b in s.iter() {
            let k = &b[ri];
            if k.is_null() {
                continue;
            }
            if let Some(matches) = table.get(k) {
                for a in matches {
                    out.push_unchecked(a.concat(b));
                }
            }
        }
    } else {
        let mut table: HashMap<&Value, Vec<&Tuple>> = HashMap::with_capacity(s.len());
        for b in s.iter() {
            let k = &b[ri];
            if !k.is_null() {
                table.entry(k).or_default().push(b);
            }
        }
        for a in r.iter() {
            let k = &a[li];
            if k.is_null() {
                continue;
            }
            if let Some(matches) = table.get(k) {
                for b in matches {
                    out.push_unchecked(a.concat(b));
                }
            }
        }
    }
    Ok(out)
}

/// Dispatching join: uses the hash path when the predicate is a single
/// `col = col` equality across the two sides, nested loops otherwise.
pub fn theta_join(r: &Relation, s: &Relation, pred: &Expr) -> Result<Relation> {
    if let Expr::Cmp(crate::expr::CmpOp::Eq, a, b) = pred {
        if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
            let (lr, ls) = (r.schema().contains(ca), s.schema().contains(cb));
            if lr && ls && !s.schema().contains(ca) && !r.schema().contains(cb) {
                return hash_join(r, s, ca, cb);
            }
            let (rl, rs) = (r.schema().contains(cb), s.schema().contains(ca));
            if rl && rs && !s.schema().contains(cb) && !r.schema().contains(ca) {
                return hash_join(r, s, cb, ca);
            }
        }
    }
    nested_loop_join(r, s, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn left() -> Relation {
        let mut r = Relation::empty(Schema::new(vec![
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
        ]));
        r.push_values(vec![Value::Int(1), Value::str("ann")]).unwrap();
        r.push_values(vec![Value::Int(2), Value::str("bob")]).unwrap();
        r.push_values(vec![Value::Null, Value::str("ghost")]).unwrap();
        r
    }

    fn right() -> Relation {
        let mut r = Relation::empty(Schema::new(vec![
            ("pid", ColumnType::Int),
            ("city", ColumnType::Str),
        ]));
        r.push_values(vec![Value::Int(1), Value::str("nyc")]).unwrap();
        r.push_values(vec![Value::Int(1), Value::str("sfo")]).unwrap();
        r.push_values(vec![Value::Int(3), Value::str("ber")]).unwrap();
        r.push_values(vec![Value::Null, Value::str("nowhere")]).unwrap();
        r
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let h = hash_join(&left(), &right(), "id", "pid").unwrap();
        let n = nested_loop_join(&left(), &right(), &Expr::col("id").eq(Expr::col("pid"))).unwrap();
        assert_eq!(h.canonical(), n.canonical());
        assert_eq!(h.len(), 2); // ann-nyc, ann-sfo; NULLs never match
    }

    #[test]
    fn theta_join_dispatches_to_hash() {
        let t = theta_join(&left(), &right(), &Expr::col("id").eq(Expr::col("pid"))).unwrap();
        assert_eq!(t.len(), 2);
        // flipped operands also work
        let t2 = theta_join(&left(), &right(), &Expr::col("pid").eq(Expr::col("id"))).unwrap();
        assert_eq!(t2.canonical(), t.canonical());
    }

    #[test]
    fn theta_join_non_equi() {
        let t = theta_join(&left(), &right(), &Expr::col("id").lt(Expr::col("pid"))).unwrap();
        // id=1 < pid=3, id=2 < pid=3
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn join_schema_is_concat() {
        let t = hash_join(&left(), &right(), "id", "pid").unwrap();
        assert_eq!(t.schema().names(), vec!["id", "name", "pid", "city"]);
    }

    #[test]
    fn build_side_swap_same_result() {
        // force the other build side by making left bigger
        let mut l = left();
        for i in 10..30 {
            l.push_values(vec![Value::Int(i), Value::str("p")]).unwrap();
        }
        let h = hash_join(&l, &right(), "id", "pid").unwrap();
        let n = nested_loop_join(&l, &right(), &Expr::col("id").eq(Expr::col("pid"))).unwrap();
        assert_eq!(h.canonical(), n.canonical());
    }
}
