//! Sorting.

use crate::error::Result;
use crate::relation::Relation;

/// Sorted copy using the total tuple order.
pub fn sort(r: &Relation) -> Relation {
    let mut out = r.clone();
    out.sort_in_place();
    out
}

/// Sorted copy by the given columns (ascending flags per column).
pub fn sort_by(r: &Relation, cols: &[(&str, bool)]) -> Result<Relation> {
    let keys: Vec<(usize, bool)> = cols
        .iter()
        .map(|(c, asc)| r.schema().index_of(c).map(|i| (i, *asc)))
        .collect::<Result<_>>()?;
    let mut rows = r.rows().to_vec();
    rows.sort_by(|a, b| {
        for &(i, asc) in &keys {
            let ord = a[i].cmp(&b[i]);
            let ord = if asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::from_rows_unchecked(r.schema().clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::value::Value;

    fn sample() -> Relation {
        let mut r = Relation::empty(Schema::new(vec![
            ("a", ColumnType::Int),
            ("b", ColumnType::Str),
        ]));
        for (a, b) in [(2, "x"), (1, "z"), (1, "a"), (3, "m")] {
            r.push_values(vec![Value::Int(a), Value::str(b)]).unwrap();
        }
        r
    }

    #[test]
    fn sort_total_order() {
        let out = sort(&sample());
        let firsts: Vec<i64> = out.iter().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(firsts, vec![1, 1, 2, 3]);
    }

    #[test]
    fn sort_by_desc_then_asc() {
        let out = sort_by(&sample(), &[("a", false), ("b", true)]).unwrap();
        let pairs: Vec<(i64, String)> = out
            .iter()
            .map(|t| (t[0].as_i64().unwrap(), t[1].to_string()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                (3, "m".into()),
                (2, "x".into()),
                (1, "a".into()),
                (1, "z".into())
            ]
        );
    }

    #[test]
    fn sort_by_missing_column_errors() {
        assert!(sort_by(&sample(), &[("zzz", true)]).is_err());
    }
}
