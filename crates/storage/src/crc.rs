//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! framing every page and WAL record, hand-rolled with a compile-time
//! lookup table so the crate stays dependency-free.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_seeded(0, data)
}

/// Continues a CRC computed by [`crc32`] — `crc32_seeded(crc32(a), b)`
/// equals `crc32(a ++ b)`, which lets page checksums cover a header and a
/// payload without concatenating them.
pub fn crc32_seeded(seed: u32, data: &[u8]) -> u32 {
    let mut c = !seed;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn seeding_composes() {
        let whole = crc32(b"hello world");
        let split = crc32_seeded(crc32(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"some page payload".to_vec();
        let good = crc32(&data);
        data[3] ^= 1;
        assert_ne!(crc32(&data), good);
    }
}
