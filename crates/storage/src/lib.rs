//! # maybms-storage
//!
//! The durable storage engine of MayBMS-rs: before this crate, a
//! world-set decomposition lived only in RAM — every session started from
//! CSV loads and died with the process. This crate makes a database
//! survive its process with three small, dependency-free pieces (all
//! binary formats are hand-rolled, little-endian, and versioned behind
//! magic headers):
//!
//! * [`pager`] — fixed-size **checksummed pages** over a file. Every page
//!   carries a CRC-32 of its index + payload, so bit rot, torn writes and
//!   transplanted pages are detected on read.
//! * [`snapshot`] — the **snapshot file** (`*.maybms`): one opaque
//!   payload (the encoded WSD, see `maybms_core::codec`) chunked across
//!   pages behind a preamble with magic, format version, generation and a
//!   whole-payload CRC. Snapshots are replaced atomically (write-new +
//!   rename).
//! * [`wal`] — the **write-ahead log** (`*.maybms.wal`): CRC-framed
//!   append-only records of committed logical mutations. A torn tail is
//!   truncated on open; replay sees exactly the committed prefix.
//!
//! [`db::Database`] ties them together with a generation counter so that
//! recovery never replays a record twice and never loses a committed one,
//! whichever instant the process died at. The payloads themselves are
//! opaque here: `maybms-core` encodes decompositions, `maybms-sql`
//! encodes statements (both on top of [`bytes`]), and the session layer
//! wires `Session::open` / `CHECKPOINT` to this crate.

pub mod bytes;
pub mod crc;
pub mod db;
pub mod pager;
pub mod snapshot;
pub mod wal;

pub use bytes::{Reader, Writer};
pub use db::{wal_path_for, Database, Recovered};
pub use pager::{Pager, DEFAULT_PAGE_SIZE, PAGE_HEADER_LEN};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotMeta};
pub use wal::{Wal, WAL_HEADER_LEN};
