//! # maybms-storage
//!
//! The durable storage engine of MayBMS-rs: before this crate, a
//! world-set decomposition lived only in RAM — every session started from
//! CSV loads and died with the process. This crate makes a database
//! survive its process with three small, dependency-free pieces (all
//! binary formats are hand-rolled, little-endian, and versioned behind
//! magic headers):
//!
//! * [`pager`] — fixed-size **checksummed pages** over a file. Every page
//!   carries a CRC-32 of its index + payload, so bit rot, torn writes and
//!   transplanted pages are detected on read.
//! * [`snapshot`] — the **snapshot file** (`*.maybms`): one opaque
//!   payload (the encoded WSD, see `maybms_core::codec`) chunked across
//!   pages behind a preamble with magic, format version, generation and a
//!   whole-payload CRC. Snapshots are replaced atomically (write-new +
//!   rename).
//! * [`wal`] — the **write-ahead log** (`*.maybms.wal`): CRC-framed
//!   append-only records of committed logical mutations. A torn tail is
//!   truncated on open; replay sees exactly the committed prefix.
//!
//! * [`delta`] — **incremental snapshots**: a page-diff overlay file
//!   (`*.maybms.inc`) holding only the pages that changed since the base
//!   snapshot, plus a checksummed page map. Loading overlays and verifies
//!   the combined payload, so a damaged overlay fails loudly instead of
//!   assembling a wrong database.
//! * [`ship`] — the **WAL shipping protocol**: CRC-framed
//!   `Hello`/`Snapshot`/`Record`/`Heartbeat` messages over any byte
//!   stream, used by the replication layer (`maybms_sql::replication`) to
//!   stream committed records from a primary to read replicas.
//!
//! * [`vfs`] — the **virtual filesystem boundary**: every file operation
//!   above goes through a [`vfs::Vfs`], so tests swap the production
//!   [`vfs::StdVfs`] for the deterministic [`vfs::FaultVfs`] and inject
//!   scripted fsync failures, torn writes, `ENOSPC`, rename failures and
//!   read bit-flips. The failure semantics built on it (fsync poisoning,
//!   read-only degradation) are described in the "Failure model" section
//!   of `docs/ARCHITECTURE.md`.
//!
//! [`db::Database`] ties them together with a generation counter and
//! monotone WAL **LSNs** so that recovery never replays a record twice
//! and never loses a committed one, whichever instant the process died
//! at — and so a replica can name its position with a single integer.
//! The payloads themselves are opaque here: `maybms-core` encodes
//! decompositions, `maybms-sql` encodes statements (both on top of
//! [`bytes`]), and the session layer wires `Session::open` /
//! `CHECKPOINT` to this crate.
//!
//! The layer-by-layer picture (and the invariants each layer's tests
//! enforce) is in `docs/ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod bytes;
pub mod crc;
pub mod db;
pub mod delta;
pub mod pager;
pub mod ship;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use bytes::{Reader, Writer};
pub use db::{
    read_snapshot_state, read_snapshot_state_with_vfs, wal_path_for, CheckpointKind, Database,
    Recovered,
};
pub use delta::{delta_path_for, DeltaMeta};
pub use pager::{Pager, DEFAULT_PAGE_SIZE, PAGE_HEADER_LEN};
pub use ship::{recv_msg, send_msg, Msg};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotMeta};
pub use vfs::{std_vfs, Fault, FaultOp, FaultSpec, FaultVfs, OpenMode, StdVfs, Vfs, VfsFile};
pub use wal::{Wal, WalCursor, WalHead, WAL_HEADER_LEN};
