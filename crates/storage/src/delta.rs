//! Incremental snapshots: a **page-diff overlay** next to the base
//! snapshot file.
//!
//! A full checkpoint rewrites every page of the database state. When only
//! a few pages changed since the last full snapshot, that is wasted I/O —
//! the pager already checksums each page, so changed pages can be found
//! by comparing checksums. An incremental checkpoint writes a **delta
//! file** (`<db>.maybms.inc`) holding only the pages that differ from the
//! **base** snapshot, plus a page map saying where each one belongs:
//!
//! ```text
//! preamble := magic "MAYBMSD\0" (8) | version u32 | page_size u32
//!           | generation u64 | base_generation u64 | last_lsn u64
//!           | payload_len u64 | payload_crc u32 | npages u32
//!           | preamble_crc u32                       (60 bytes)
//! page map := npages × page_index u32 | map_crc u32
//! pages    := npages pages (see crate::pager), stored densely but each
//!             checksummed by its *logical* page index
//! ```
//!
//! Loading overlays the delta's pages onto the base snapshot's and
//! verifies the whole-payload CRC of the combined result, so a wrong or
//! damaged overlay can never produce a silently wrong database: a corrupt
//! page map (or any corrupt page) fails **loudly** on read instead of
//! assembling a frankenstein snapshot.
//!
//! Like full snapshots, deltas are replaced atomically (write-new
//! `.tmp` + rename + dir fsync) and the base file is never touched, so a
//! crash mid-incremental-checkpoint leaves either the old overlay or the
//! new one — never a half-written state. Each delta diffs against the
//! *base* (not the previous delta), so one overlay file is all there ever
//! is; a full checkpoint collapses base + overlay into a fresh base and
//! removes the delta file. `base_generation` pairs an overlay with the
//! exact base it patches: an overlay left behind by a newer full
//! checkpoint no longer matches and is discarded as a checkpoint
//! artifact, not an error (see [`crate::db`]).

use std::path::{Path, PathBuf};

use maybms_relational::{Error, Result};

use crate::crc::crc32;
use crate::pager::{io_err, page_crc, Pager, PAGE_HEADER_LEN};
use crate::vfs::{std_vfs, OpenMode, Vfs};

const MAGIC: &[u8; 8] = b"MAYBMSD\0";
const VERSION: u32 = 1;

/// Raw preamble length of a delta file, before the page map.
pub const DELTA_PREAMBLE_LEN: usize = 60;

/// Metadata decoded from a delta (incremental snapshot) preamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaMeta {
    /// The checkpoint generation this overlay represents.
    pub generation: u64,
    /// The generation of the base snapshot this overlay patches.
    pub base_generation: u64,
    /// LSN of the last WAL record the combined state captures.
    pub last_lsn: u64,
    /// Page size (must match the base snapshot's).
    pub page_size: usize,
    /// Length of the *combined* (base + overlay) payload.
    pub payload_len: u64,
    /// CRC-32 of the combined payload.
    pub payload_crc: u32,
    /// How many changed pages the overlay carries.
    pub pages: u32,
}

/// The `(logical_index, chunk)` pairs an overlay stores.
pub type DeltaPages = Vec<(u32, Vec<u8>)>;

/// The delta (incremental snapshot) path for a snapshot path:
/// `<path>.inc`.
pub fn delta_path_for(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".inc");
    PathBuf::from(s)
}

fn encode_preamble(meta: &DeltaMeta) -> [u8; DELTA_PREAMBLE_LEN] {
    let mut p = [0u8; DELTA_PREAMBLE_LEN];
    p[0..8].copy_from_slice(MAGIC);
    p[8..12].copy_from_slice(&VERSION.to_le_bytes());
    p[12..16].copy_from_slice(&(meta.page_size as u32).to_le_bytes());
    p[16..24].copy_from_slice(&meta.generation.to_le_bytes());
    p[24..32].copy_from_slice(&meta.base_generation.to_le_bytes());
    p[32..40].copy_from_slice(&meta.last_lsn.to_le_bytes());
    p[40..48].copy_from_slice(&meta.payload_len.to_le_bytes());
    p[48..52].copy_from_slice(&meta.payload_crc.to_le_bytes());
    p[52..56].copy_from_slice(&meta.pages.to_le_bytes());
    let crc = crc32(&p[0..56]);
    p[56..60].copy_from_slice(&crc.to_le_bytes());
    p
}

fn decode_preamble(p: &[u8]) -> Result<DeltaMeta> {
    if p.len() < DELTA_PREAMBLE_LEN {
        return Err(Error::Storage(format!(
            "incremental snapshot too short: {} bytes, preamble needs {DELTA_PREAMBLE_LEN}",
            p.len()
        )));
    }
    if &p[0..8] != MAGIC {
        return Err(Error::Storage(
            "not a MayBMS incremental snapshot (bad magic)".into(),
        ));
    }
    let stored = u32::from_le_bytes(p[56..60].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if crc32(&p[0..56]) != stored {
        return Err(Error::Storage(
            "incremental snapshot preamble checksum mismatch".into(),
        ));
    }
    let version = u32::from_le_bytes(p[8..12].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if version != VERSION {
        return Err(Error::Storage(format!(
            "unsupported incremental snapshot version {version} (this build reads {VERSION})"
        )));
    }
    Ok(DeltaMeta {
        page_size: u32::from_le_bytes(p[12..16].try_into().expect("4 bytes")) as usize, // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        generation: u64::from_le_bytes(p[16..24].try_into().expect("8 bytes")), // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        base_generation: u64::from_le_bytes(p[24..32].try_into().expect("8 bytes")), // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        last_lsn: u64::from_le_bytes(p[32..40].try_into().expect("8 bytes")), // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        payload_len: u64::from_le_bytes(p[40..48].try_into().expect("8 bytes")), // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        payload_crc: u32::from_le_bytes(p[48..52].try_into().expect("4 bytes")), // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        pages: u32::from_le_bytes(p[52..56].try_into().expect("4 bytes")), // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    })
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".tmp");
    PathBuf::from(s)
}

/// Writes the overlay at `path` (atomically): the changed pages of a new
/// payload relative to a base snapshot. `pages` holds `(logical_index,
/// chunk)` pairs, each chunk at most `page_size - PAGE_HEADER_LEN` bytes;
/// `payload_len`/`payload_crc` describe the **combined** payload the
/// overlay reconstructs.
pub fn write_delta(path: &Path, meta: &DeltaMeta, pages: &[(u32, &[u8])]) -> Result<()> {
    write_delta_with_vfs(&*std_vfs(), path, meta, pages)
}

/// As [`write_delta`], on an explicit [`Vfs`].
pub fn write_delta_with_vfs(
    vfs: &dyn Vfs,
    path: &Path,
    meta: &DeltaMeta,
    pages: &[(u32, &[u8])],
) -> Result<()> {
    debug_assert_eq!(meta.pages as usize, pages.len());
    let tmp = tmp_sibling(path);
    {
        let mut file = vfs
            .open(&tmp, OpenMode::CreateTruncate)
            .map_err(|e| io_err("create incremental snapshot temp file", e))?;
        file.write_all(&encode_preamble(meta))
            .map_err(|e| io_err("write incremental snapshot preamble", e))?;
        // the page map, with its own checksum
        let mut map = Vec::with_capacity(pages.len() * 4);
        for (idx, _) in pages {
            map.extend_from_slice(&idx.to_le_bytes());
        }
        let map_crc = crc32(&map);
        map.extend_from_slice(&map_crc.to_le_bytes());
        file.write_all(&map).map_err(|e| io_err("write page map", e))?;
        // the changed pages, densely packed, checksummed by logical index
        let base = (DELTA_PREAMBLE_LEN + map.len()) as u64;
        let mut pager = Pager::new(file, base, meta.page_size)?;
        for (slot, (idx, chunk)) in pages.iter().enumerate() {
            pager.write_page_as(slot as u32, *idx, chunk)?;
        }
        pager.sync()?;
    }
    vfs.rename(&tmp, path)
        .map_err(|e| io_err("publish incremental snapshot (rename)", e))?;
    // a failed directory fsync means the rename may not survive power
    // loss — and a later WAL rotation that *does* survive would strand
    // commits. Propagate it: the checkpoint fails before the WAL moves,
    // which is a crash window recovery already handles.
    vfs.sync_parent_dir(path).map_err(|e| io_err("sync overlay directory", e))?;
    Ok(())
}

/// Reads and fully verifies the overlay at `path`: preamble, page map
/// checksum, and every page checksum. Returns the metadata and the
/// `(logical_index, chunk)` pairs.
pub fn read_delta(path: &Path) -> Result<(DeltaMeta, DeltaPages)> {
    read_delta_with_vfs(&*std_vfs(), path)
}

/// As [`read_delta`], on an explicit [`Vfs`].
pub fn read_delta_with_vfs(vfs: &dyn Vfs, path: &Path) -> Result<(DeltaMeta, DeltaPages)> {
    let mut file =
        vfs.open(path, OpenMode::Read).map_err(|e| io_err("open incremental snapshot", e))?;
    let mut preamble = [0u8; DELTA_PREAMBLE_LEN];
    file.read_exact(&mut preamble)
        .map_err(|e| io_err("read incremental snapshot preamble", e))?;
    let meta = decode_preamble(&preamble)?;
    let map_len = meta.pages as usize * 4;
    let mut map = vec![0u8; map_len + 4];
    file.read_exact(&mut map).map_err(|e| io_err("read page map", e))?;
    let stored = u32::from_le_bytes(map[map_len..].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if crc32(&map[..map_len]) != stored {
        return Err(Error::Storage(
            "incremental snapshot page map checksum mismatch".into(),
        ));
    }
    let indices: Vec<u32> = map[..map_len]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))) // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        .collect();
    let base = (DELTA_PREAMBLE_LEN + map_len + 4) as u64;
    let mut pager = Pager::new(file, base, meta.page_size)?;
    let mut pages = Vec::with_capacity(indices.len());
    for (slot, idx) in indices.into_iter().enumerate() {
        pages.push((idx, pager.read_page_as(slot as u32, idx)?));
    }
    Ok((meta, pages))
}

/// Splits a payload into the per-page chunks a snapshot stores — the unit
/// the incremental diff compares. Always at least one (possibly empty)
/// chunk, matching `Pager::write_payload`.
pub fn payload_chunks(payload: &[u8], page_size: usize) -> Vec<&[u8]> {
    let cap = page_size - PAGE_HEADER_LEN;
    if payload.is_empty() {
        return vec![&[]];
    }
    payload.chunks(cap).collect()
}

/// The per-page checksums of a payload — what the diff compares between
/// the base snapshot and a new state.
pub fn chunk_crcs(payload: &[u8], page_size: usize) -> Vec<u32> {
    payload_chunks(payload, page_size)
        .iter()
        .enumerate()
        .map(|(i, c)| page_crc(i as u32, c))
        .collect()
}

/// Reconstructs the combined payload: the base snapshot's chunks with the
/// overlay's pages substituted (and appended, when the payload grew),
/// truncated to the overlay's `payload_len`, and verified against its
/// whole-payload CRC. Any inconsistency — an out-of-range page index, a
/// missing appended page, a checksum mismatch — is a loud error.
pub fn overlay(base_payload: &[u8], meta: &DeltaMeta, pages: &[(u32, Vec<u8>)]) -> Result<Vec<u8>> {
    let cap = meta.page_size - PAGE_HEADER_LEN;
    let total = (meta.payload_len as usize).max(1).div_ceil(cap);
    let base_chunks = payload_chunks(base_payload, meta.page_size);
    let mut chunks: Vec<&[u8]> = Vec::with_capacity(total);
    chunks.extend(base_chunks.iter().take(total).copied());
    // the payload grew: pages past the base must all come from the overlay
    while chunks.len() < total {
        chunks.push(&[]);
    }
    for (idx, page) in pages {
        let slot = *idx as usize;
        if slot >= chunks.len() {
            return Err(Error::Storage(format!(
                "incremental snapshot patches page {idx}, but the combined \
                 payload has only {} page(s)",
                chunks.len()
            )));
        }
        chunks[slot] = page;
    }
    let mut out = Vec::with_capacity(meta.payload_len as usize);
    for c in &chunks {
        out.extend_from_slice(c);
    }
    if out.len() as u64 != meta.payload_len {
        return Err(Error::Storage(format!(
            "incremental snapshot payload length mismatch: reassembled {} bytes, \
             preamble declares {}",
            out.len(),
            meta.payload_len
        )));
    }
    if crc32(&out) != meta.payload_crc {
        return Err(Error::Storage(
            "incremental snapshot combined payload checksum mismatch \
             (refusing to load a half-patched database)"
                .into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    // tests corrupt bytes on disk and clean temp files directly
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-delta-{}-{name}.inc", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// Diffs `old` → `new` the way `Database::checkpoint` does and writes
    /// the overlay, returning what `overlay` reconstructs.
    fn round_trip(path: &Path, old: &[u8], new: &[u8], page_size: usize) -> Vec<u8> {
        let old_crcs = chunk_crcs(old, page_size);
        let new_chunks = payload_chunks(new, page_size);
        let changed: Vec<(u32, &[u8])> = new_chunks
            .iter()
            .enumerate()
            .filter(|(i, c)| old_crcs.get(*i) != Some(&page_crc(*i as u32, c)))
            .map(|(i, c)| (i as u32, *c))
            .collect();
        let meta = DeltaMeta {
            generation: 2,
            base_generation: 1,
            last_lsn: 7,
            page_size,
            payload_len: new.len() as u64,
            payload_crc: crc32(new),
            pages: changed.len() as u32,
        };
        write_delta(path, &meta, &changed).unwrap();
        let (back_meta, pages) = read_delta(path).unwrap();
        assert_eq!(back_meta, meta);
        overlay(old, &back_meta, &pages).unwrap()
    }

    #[test]
    fn diff_and_overlay_round_trips() {
        let path = tmp("roundtrip");
        let page_size = 32; // 24-byte chunks
        let old: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        // change one byte mid-payload: exactly one page should differ
        let mut new = old.clone();
        new[100] ^= 0xFF;
        assert_eq!(round_trip(&path, &old, &new, page_size), new);
        let (meta, _) = read_delta(&path).unwrap();
        assert_eq!(meta.pages, 1, "one changed byte is one changed page");

        // growth and shrinkage both reconstruct exactly
        let mut grown = old.clone();
        grown.extend_from_slice(b"tail bytes beyond the old payload end");
        assert_eq!(round_trip(&path, &old, &grown, page_size), grown);
        let shrunk = old[..50].to_vec();
        assert_eq!(round_trip(&path, &old, &shrunk, page_size), shrunk);
        // identical payloads need zero pages
        assert_eq!(round_trip(&path, &old, &old, page_size), old);
        let (meta, pages) = read_delta(&path).unwrap();
        assert_eq!(meta.pages, 0);
        assert!(pages.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_page_map_fails_loudly() {
        let path = tmp("badmap");
        let page_size = 32;
        let old: Vec<u8> = vec![7u8; 100];
        let mut new = old.clone();
        new[0] = 8;
        new[40] = 9; // two changed pages, so the map has two entries
        round_trip(&path, &old, &new, page_size);
        let pristine = std::fs::read(&path).unwrap();

        // flip a byte inside the page map (after the preamble)
        let mut bad = pristine.clone();
        bad[DELTA_PREAMBLE_LEN + 1] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = read_delta(&path).unwrap_err();
        assert!(err.to_string().contains("page map checksum"), "{err}");

        // flip a byte inside a stored page
        let mut bad_page = pristine.clone();
        let page_at = DELTA_PREAMBLE_LEN + 2 * 4 + 4 + PAGE_HEADER_LEN + 1;
        bad_page[page_at] ^= 0x01;
        std::fs::write(&path, &bad_page).unwrap();
        assert!(read_delta(&path).is_err());

        // point a map entry at the wrong page index: the page checksum
        // (seeded by logical index) no longer matches
        let mut bad_idx = pristine.clone();
        bad_idx[DELTA_PREAMBLE_LEN..DELTA_PREAMBLE_LEN + 4]
            .copy_from_slice(&2u32.to_le_bytes());
        // keep the map checksum valid so only the page check can object
        let map_end = DELTA_PREAMBLE_LEN + 2 * 4;
        let crc = crc32(&bad_idx[DELTA_PREAMBLE_LEN..map_end]);
        bad_idx[map_end..map_end + 4].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bad_idx).unwrap();
        assert!(read_delta(&path).is_err());

        // pristine still reads
        std::fs::write(&path, &pristine).unwrap();
        assert!(read_delta(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overlay_refuses_inconsistent_combination() {
        let page_size = 32;
        let base = vec![1u8; 100];
        let good = {
            let mut n = base.clone();
            n[0] = 2;
            n
        };
        let meta = DeltaMeta {
            generation: 2,
            base_generation: 1,
            last_lsn: 3,
            page_size,
            payload_len: good.len() as u64,
            payload_crc: crc32(&good),
            pages: 1,
        };
        let chunk = &good[..24];
        // overlaying onto the WRONG base payload trips the combined CRC
        let wrong_base = vec![9u8; 100];
        let err = overlay(&wrong_base, &meta, &[(0, chunk.to_vec())]).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // out-of-range page index is rejected before any assembly
        assert!(overlay(&base, &meta, &[(99, chunk.to_vec())]).is_err());
        // the right base works
        assert_eq!(overlay(&base, &meta, &[(0, chunk.to_vec())]).unwrap(), good);
    }
}
