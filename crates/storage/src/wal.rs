//! The write-ahead log: an append-only file of CRC-framed records.
//!
//! ```text
//! header := magic "MAYBMSW\0" (8) | version u32 | generation u64
//!         | header_crc u32                       (24 bytes total)
//! record := payload_len u32 | payload_crc u32 | payload bytes
//! ```
//!
//! Records are opaque payloads (the SQL layer stores binary-encoded
//! mutating statements). Appends go to the end of the file and are
//! fsynced by default, so a record that [`Wal::append`] acknowledged
//! survives a crash. On open, the log is scanned front to back; the scan
//! stops at the first incomplete or checksum-failing record — a **torn
//! tail** from a crash mid-append — and the file is truncated back to the
//! last complete record, so replay sees exactly the committed prefix.
//!
//! `generation` pairs the log with the snapshot it extends: a checkpoint
//! bumps the snapshot generation and swaps in a fresh, empty log of the
//! same generation (see [`crate::db`]). A log whose generation does not
//! match the snapshot's is stale (crash between the two steps of a
//! checkpoint) and is discarded instead of replayed twice.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use maybms_relational::{Error, Result};

use crate::crc::crc32;
use crate::pager::io_err;

const MAGIC: &[u8; 8] = b"MAYBMSW\0";
const VERSION: u32 = 1;

/// Length of the WAL file header.
pub const WAL_HEADER_LEN: u64 = 24;

const RECORD_HEADER_LEN: usize = 8;

/// An open write-ahead log positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    generation: u64,
    /// Offset of the end of the last complete record.
    end: u64,
    /// fsync every append (on by default; benches may disable it).
    sync: bool,
    /// fsyncs issued by appends on this handle — lets tests assert the
    /// group-commit contract (one fsync per committed transaction).
    sync_count: u64,
}

fn encode_header(generation: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[0..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&h[0..20]);
    h[20..24].copy_from_slice(&crc.to_le_bytes());
    h
}

fn decode_header(h: &[u8]) -> Result<u64> {
    if h.len() < WAL_HEADER_LEN as usize || &h[0..8] != MAGIC {
        return Err(Error::Storage("not a MayBMS WAL (bad magic)".into()));
    }
    let stored = u32::from_le_bytes(h[20..24].try_into().expect("4 bytes"));
    if crc32(&h[0..20]) != stored {
        return Err(Error::Storage("WAL header checksum mismatch".into()));
    }
    let version = u32::from_le_bytes(h[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(Error::Storage(format!(
            "unsupported WAL format version {version} (this build reads {VERSION})"
        )));
    }
    Ok(u64::from_le_bytes(h[12..20].try_into().expect("8 bytes")))
}

impl Wal {
    /// Creates a fresh, empty log for `generation` at `path`, atomically
    /// replacing whatever was there (write temp sibling + rename).
    pub fn create(path: &Path, generation: u64) -> Result<Wal> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err("create WAL temp file", e))?;
            f.write_all(&encode_header(generation))
                .map_err(|e| io_err("write WAL header", e))?;
            f.sync_all().map_err(|e| io_err("sync new WAL", e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err("publish WAL (rename)", e))?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("reopen WAL", e))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            generation,
            end: WAL_HEADER_LEN,
            sync: true,
            sync_count: 0,
        })
    }

    /// Opens an existing log, returning the complete records in append
    /// order. A torn tail (incomplete or checksum-failing final record)
    /// is detected and truncated away; everything before it is kept.
    pub fn open(path: &Path) -> Result<(Wal, Vec<Vec<u8>>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("open WAL", e))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw).map_err(|e| io_err("read WAL", e))?;
        let generation = decode_header(&raw)?;

        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        let mut end = pos;
        while raw.len() - pos >= RECORD_HEADER_LEN {
            let len =
                u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let stored =
                u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_at = pos + RECORD_HEADER_LEN;
            if raw.len() - body_at < len {
                break; // torn: the record body was cut short
            }
            let body = &raw[body_at..body_at + len];
            if crc32(body) != stored {
                break; // torn or corrupt: drop this record and the rest
            }
            records.push(body.to_vec());
            pos = body_at + len;
            end = pos;
        }
        if end as u64 != raw.len() as u64 {
            // drop the torn tail so later appends start on a clean frame
            file.set_len(end as u64)
                .map_err(|e| io_err("truncate torn WAL tail", e))?;
            file.sync_all().map_err(|e| io_err("sync truncated WAL", e))?;
        }
        file.seek(SeekFrom::Start(end as u64))
            .map_err(|e| io_err("seek WAL end", e))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                generation,
                end: end as u64,
                sync: true,
                sync_count: 0,
            },
            records,
        ))
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of committed log (header + complete records).
    pub fn len(&self) -> u64 {
        self.end
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.end == WAL_HEADER_LEN
    }

    /// Disables (or re-enables) the per-append fsync. With sync off, a
    /// record may be lost on power failure — only benches and tests that
    /// measure something else should turn this off.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// How many fsyncs appends on this handle have issued.
    pub fn sync_count(&self) -> u64 {
        self.sync_count
    }

    /// Appends one record and (by default) fsyncs. On return the record
    /// is committed: replay after a crash will include it.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .seek(SeekFrom::Start(self.end))
            .map_err(|e| io_err("seek WAL end", e))?;
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append WAL record", e))?;
        if self.sync {
            self.file.sync_data().map_err(|e| io_err("sync WAL append", e))?;
            self.sync_count += 1;
        }
        self.end += frame.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-wal-{}-{name}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("replay");
        {
            let mut wal = Wal::create(&path, 7).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"").unwrap();
            wal.append(b"third record, a bit longer").unwrap();
        }
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(wal.generation(), 7);
        assert_eq!(
            records,
            vec![b"first".to_vec(), b"".to_vec(), b"third record, a bit longer".to_vec()]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let path = tmp("torn");
        {
            let mut wal = Wal::create(&path, 1).unwrap();
            wal.append(b"committed one").unwrap();
            wal.append(b"committed two").unwrap();
            wal.append(b"the torn one").unwrap();
        }
        // cut the last record short by 5 bytes — a crash mid-append
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"committed one".to_vec(), b"committed two".to_vec()]);
        // the torn frame is gone from disk; new appends land cleanly
        wal.append(b"after recovery").unwrap();
        drop(wal);
        let (_, records2) = Wal::open(&path).unwrap();
        assert_eq!(records2.len(), 3);
        assert_eq!(records2[2], b"after recovery");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_drops_suffix() {
        let path = tmp("corrupt");
        {
            let mut wal = Wal::create(&path, 1).unwrap();
            wal.append(b"good record").unwrap();
            wal.append(b"bad record!").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        // flip a byte in the second record's body
        let second_body = WAL_HEADER_LEN as usize + 8 + 11 + 8 + 2;
        raw[second_body] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"good record".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_replaces_existing_log() {
        let path = tmp("recreate");
        {
            let mut wal = Wal::create(&path, 1).unwrap();
            wal.append(b"old stuff").unwrap();
        }
        let wal = Wal::create(&path, 2).unwrap();
        assert!(wal.is_empty());
        drop(wal);
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(wal.generation(), 2);
        assert!(records.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_header_rejected() {
        let path = tmp("badheader");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
