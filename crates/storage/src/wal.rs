//! The write-ahead log: an append-only file of CRC-framed records with
//! monotone log sequence numbers.
//!
//! ```text
//! header := magic "MAYBMSW\0" (8) | version u32 | generation u64
//!         | base_lsn u64 | header_crc u32        (32 bytes total)
//! record := payload_len u32 | payload_crc u32 | payload bytes
//! ```
//!
//! Records are opaque payloads (the SQL layer stores binary-encoded
//! mutating statements). Appends go to the end of the file and are
//! fsynced by default, so a record that [`Wal::append`] acknowledged
//! survives a crash. On open, the log is scanned front to back; the scan
//! stops at the first incomplete or checksum-failing record — a **torn
//! tail** from a crash mid-append — and the file is truncated back to the
//! last complete record, so replay sees exactly the committed prefix.
//!
//! # Log sequence numbers
//!
//! Every record carries an implicit **LSN**: `base_lsn` names the LSN of
//! the last record *before* this log (0 for a fresh database), and the
//! *i*-th record of the file (0-based) has LSN `base_lsn + i + 1`. LSNs
//! are monotone across the whole life of a database — a checkpoint swaps
//! in an empty log whose `base_lsn` is the previous log's last LSN, so
//! the numbering continues rather than restarting. This is what lets a
//! replica name its position with one integer: "I have applied everything
//! up to LSN x; send me what follows" ([`Wal::records_from`],
//! [`WalCursor`]).
//!
//! `generation` pairs the log with the snapshot it extends: a checkpoint
//! bumps the snapshot generation and swaps in a fresh, empty log of the
//! same generation (see [`crate::db`]). A log whose generation does not
//! match the snapshot's is stale (crash between the two steps of a
//! checkpoint) and is discarded instead of replayed twice.

use std::collections::HashMap;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use maybms_obs::Counter;
use maybms_relational::{Error, Result};

use crate::crc::crc32;
use crate::pager::io_err;
use crate::vfs::{std_vfs, OpenMode, Vfs, VfsFile};

const MAGIC: &[u8; 8] = b"MAYBMSW\0";
const VERSION: u32 = 2;

/// Process-wide WAL counters, resolved once and shared by every handle.
struct WalMetrics {
    appends: Arc<Counter>,
    fsyncs: Arc<Counter>,
    bytes: Arc<Counter>,
    notify_fallback_polls: Arc<Counter>,
}

fn metrics() -> &'static WalMetrics {
    static M: OnceLock<WalMetrics> = OnceLock::new();
    M.get_or_init(|| WalMetrics {
        appends: maybms_obs::counter("wal.appends"),
        fsyncs: maybms_obs::counter("wal.fsyncs"),
        bytes: maybms_obs::counter("wal.bytes"),
        notify_fallback_polls: maybms_obs::counter("wal.notify_fallback_polls"),
    })
}

/// Process-wide commit-notification handle for one WAL path: a commit
/// counter guarded by a mutex, paired with a condvar that
/// [`Wal::append`] signals after each durable record. Tailers block on
/// it via [`wait_for_commit`] instead of sleeping a fixed interval, so
/// same-process shipping reacts to a commit immediately; the counter
/// only ever increases, never resets, so a stale `seen` value can only
/// cause a spurious (cheap) wakeup, never a missed one.
pub type CommitNotify = Arc<(Mutex<u64>, Condvar)>;

/// Handles keyed by canonicalized WAL path, shared by every [`Wal`] and
/// waiter in the process. Entries are tiny and never removed — a
/// process touches a bounded set of database paths.
fn notify_registry() -> &'static Mutex<HashMap<PathBuf, CommitNotify>> {
    static REGISTRY: OnceLock<Mutex<HashMap<PathBuf, CommitNotify>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The commit-notification handle for the WAL at `path` (created on
/// first use). Cheap to call; clones share the underlying counter.
/// Canonicalizes through the production VFS so an appender and a tailer
/// naming the same file through different spellings share a handle.
pub fn commit_notify(path: &Path) -> CommitNotify {
    commit_notify_in(&*std_vfs(), path)
}

/// As [`commit_notify`], canonicalizing through an explicit [`Vfs`] —
/// the handle a [`Wal`] opened on that VFS registers under. For virtual
/// filesystems the canonical key is the raw path, which [`commit_notify`]
/// also falls back to, so in-process appenders and tailers always meet.
pub fn commit_notify_in(vfs: &dyn Vfs, path: &Path) -> CommitNotify {
    // maybms-lint: allow(no-panic-in-prod) -- registry mutex poisoning means a sibling thread already crashed mid-insert; fail-stop
    let mut reg = notify_registry().lock().expect("notify registry lock");
    Arc::clone(reg.entry(vfs.canonicalize(path)).or_default())
}

/// The handle's current commit counter — pass it to [`wait_for_commit`]
/// as the position already observed.
pub fn commit_seq(handle: &CommitNotify) -> u64 {
    *handle.0.lock().expect("commit notify lock") // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
}

/// Blocks until the handle's commit counter moves past `seen` or
/// `timeout` elapses, returning the counter's current value. Returns
/// immediately when `seen` is already stale, so callers can never miss
/// a commit that landed between polling the log and blocking here.
pub fn wait_for_commit(handle: &CommitNotify, seen: u64, timeout: Duration) -> u64 {
    let (counter, condvar) = &**handle;
    let deadline = Instant::now() + timeout;
    let mut n = counter.lock().expect("commit notify lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
    while *n == seen {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        let (guard, result) =
            condvar.wait_timeout(n, remaining).expect("commit notify lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        n = guard;
        if result.timed_out() {
            break;
        }
    }
    *n
}

/// Wakes every [`wait_for_commit`] waiter on `handle` by advancing the
/// notification counter without any commit behind it. Woken tailers
/// poll the log, find nothing new, and re-check their own stop
/// conditions — this is how a shutdown interrupts serve loops parked on
/// long idle intervals instead of letting them sleep the interval out.
/// Must not be called on a handle whose tailers are mid-shutdown only;
/// a spurious wake is always safe (an empty poll is a no-op).
pub fn wake_commit_waiters(handle: &CommitNotify) {
    let (counter, condvar) = &**handle;
    let mut n = counter.lock().expect("commit notify lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
    *n += 1;
    condvar.notify_all();
}

/// Records one **fallback poll**: a tailer's [`wait_for_commit`] timed
/// out with no signal, yet the subsequent log poll *did* find new
/// records — the notification path failed to carry the wakeup. That
/// happens exactly when the appender lives in another process (this
/// registry is per-process), so the counter (`wal.notify_fallback_polls`)
/// measures how much of the tailing traffic rides the polling fallback
/// instead of the in-process signal; an in-process primary/server pair
/// must keep it at 0. Idle timeouts (heartbeat cadence with nothing to
/// ship) are *not* fallback polls and are not counted.
pub fn note_fallback_poll() {
    metrics().notify_fallback_polls.inc();
}

/// Length of the WAL file header.
pub const WAL_HEADER_LEN: u64 = 32;

const RECORD_HEADER_LEN: usize = 8;

/// An open write-ahead log positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn VfsFile>,
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    generation: u64,
    /// LSN of the last record before this log (continues across
    /// checkpoints; 0 for a fresh database).
    base_lsn: u64,
    /// Complete records in this log; the last one has LSN
    /// `base_lsn + count`.
    count: u64,
    /// Offset of the end of the last complete record.
    end: u64,
    /// fsync every append (on by default; benches may disable it).
    sync: bool,
    /// fsyncs issued by appends on this handle — lets tests assert the
    /// group-commit contract (one fsync per committed transaction).
    sync_count: u64,
    /// Signalled after every durable append so same-process tailers
    /// (the replication primary) wake without waiting out a poll
    /// interval. See [`commit_notify`].
    notify: CommitNotify,
}

fn encode_header(generation: u64, base_lsn: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[0..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&generation.to_le_bytes());
    h[20..28].copy_from_slice(&base_lsn.to_le_bytes());
    let crc = crc32(&h[0..28]);
    h[28..32].copy_from_slice(&crc.to_le_bytes());
    h
}

fn decode_header(h: &[u8]) -> Result<(u64, u64)> {
    if h.len() < WAL_HEADER_LEN as usize || &h[0..8] != MAGIC {
        return Err(Error::Storage("not a MayBMS WAL (bad magic)".into()));
    }
    let stored = u32::from_le_bytes(h[28..32].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if crc32(&h[0..28]) != stored {
        return Err(Error::Storage("WAL header checksum mismatch".into()));
    }
    let version = u32::from_le_bytes(h[8..12].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if version != VERSION {
        return Err(Error::Storage(format!(
            "unsupported WAL format version {version} (this build reads {VERSION})"
        )));
    }
    let generation = u64::from_le_bytes(h[12..20].try_into().expect("8 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    let base_lsn = u64::from_le_bytes(h[20..28].try_into().expect("8 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    Ok((generation, base_lsn))
}

/// Scans `raw` (a whole WAL file) for complete records starting at the
/// header end. Returns the records and the offset just past the last
/// complete one — anything beyond that offset is a torn tail.
fn scan_records(raw: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut end = pos;
    while raw.len().saturating_sub(pos) >= RECORD_HEADER_LEN {
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize; // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        let stored = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        let body_at = pos + RECORD_HEADER_LEN;
        if raw.len() - body_at < len {
            break; // torn: the record body was cut short
        }
        let body = &raw[body_at..body_at + len];
        if crc32(body) != stored {
            break; // torn or corrupt: drop this record and the rest
        }
        records.push(body.to_vec());
        pos = body_at + len;
        end = pos;
    }
    (records, end)
}

impl Wal {
    /// Creates a fresh, empty log for `generation` at `path`, atomically
    /// replacing whatever was there (write temp sibling + rename).
    /// `base_lsn` is the LSN of the last record already captured by the
    /// paired snapshot — the first record appended here gets
    /// `base_lsn + 1`.
    pub fn create(path: &Path, generation: u64, base_lsn: u64) -> Result<Wal> {
        Wal::create_with_vfs(std_vfs(), path, generation, base_lsn)
    }

    /// As [`Wal::create`], on an explicit [`Vfs`].
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        generation: u64,
        base_lsn: u64,
    ) -> Result<Wal> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = vfs
                .open(&tmp, OpenMode::CreateTruncate)
                .map_err(|e| io_err("create WAL temp file", e))?;
            f.write_all(&encode_header(generation, base_lsn))
                .map_err(|e| io_err("write WAL header", e))?;
            f.sync_all().map_err(|e| io_err("sync new WAL", e))?;
        }
        vfs.rename(&tmp, path).map_err(|e| io_err("publish WAL (rename)", e))?;
        let file = vfs.open(path, OpenMode::ReadWrite).map_err(|e| io_err("reopen WAL", e))?;
        let notify = commit_notify_in(&*vfs, path);
        Ok(Wal {
            file,
            vfs,
            path: path.to_path_buf(),
            generation,
            base_lsn,
            count: 0,
            end: WAL_HEADER_LEN,
            sync: true,
            sync_count: 0,
            notify,
        })
    }

    /// Opens an existing log, returning the complete records in append
    /// order (the first has LSN `base_lsn() + 1`). A torn tail
    /// (incomplete or checksum-failing final record) is detected and
    /// truncated away; everything before it is kept.
    pub fn open(path: &Path) -> Result<(Wal, Vec<Vec<u8>>)> {
        Wal::open_with_vfs(std_vfs(), path)
    }

    /// As [`Wal::open`], on an explicit [`Vfs`].
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, path: &Path) -> Result<(Wal, Vec<Vec<u8>>)> {
        let mut file =
            vfs.open(path, OpenMode::ReadWrite).map_err(|e| io_err("open WAL", e))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw).map_err(|e| io_err("read WAL", e))?;
        let (generation, base_lsn) = decode_header(&raw)?;

        let (records, end) = scan_records(&raw);
        if end as u64 != raw.len() as u64 {
            // drop the torn tail so later appends start on a clean frame
            file.set_len(end as u64)
                .map_err(|e| io_err("truncate torn WAL tail", e))?;
            file.sync_all().map_err(|e| io_err("sync truncated WAL", e))?;
        }
        file.seek(SeekFrom::Start(end as u64))
            .map_err(|e| io_err("seek WAL end", e))?;
        let notify = commit_notify_in(&*vfs, path);
        Ok((
            Wal {
                file,
                vfs,
                path: path.to_path_buf(),
                generation,
                base_lsn,
                count: records.len() as u64,
                end: end as u64,
                sync: true,
                sync_count: 0,
                notify,
            },
            records,
        ))
    }

    /// The checkpoint generation this log extends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// LSN of the last record *before* this log (what the paired snapshot
    /// already contains); 0 for a fresh database.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// LSN of the last record in this log (equals [`Wal::base_lsn`] when
    /// the log is empty).
    pub fn last_lsn(&self) -> u64 {
        self.base_lsn + self.count
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of committed log (header + complete records).
    pub fn len(&self) -> u64 {
        self.end
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.end == WAL_HEADER_LEN
    }

    /// Disables (or re-enables) the per-append fsync. With sync off, a
    /// record may be lost on power failure — only benches and tests that
    /// measure something else should turn this off.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// How many fsyncs appends on this handle have issued.
    pub fn sync_count(&self) -> u64 {
        self.sync_count
    }

    /// Appends one record and (by default) fsyncs, returning the LSN the
    /// record was assigned. On return the record is committed: replay
    /// after a crash will include it.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .seek(SeekFrom::Start(self.end))
            .map_err(|e| io_err("seek WAL end", e))?;
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append WAL record", e))?;
        if self.sync {
            self.file.sync_data().map_err(|e| io_err("sync WAL append", e))?;
            self.sync_count += 1;
            metrics().fsyncs.inc();
        }
        metrics().appends.inc();
        metrics().bytes.add(frame.len() as u64);
        self.end += frame.len() as u64;
        self.count += 1;
        // the record is durable (or as durable as this handle promises):
        // wake same-process tailers blocked in `wait_for_commit`
        let (counter, condvar) = &*self.notify;
        *counter.lock().expect("commit notify lock") += 1; // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        condvar.notify_all();
        Ok(self.base_lsn + self.count)
    }

    /// Appends `records` as consecutive WAL records under a **single**
    /// fsync, returning the LSN of the last one — the group-commit
    /// batch path: N concurrently submitted commit groups cost one
    /// durable write instead of N.
    ///
    /// All frames are written with one `write_all`, then one
    /// `sync_data`; on success every record is committed. On failure
    /// nothing can be assumed durable (the caller poisons the store,
    /// exactly as for [`Wal::append`]); after a crash, torn-tail
    /// truncation keeps whatever *prefix* of the batch reached disk —
    /// safe, because no record in the batch was acknowledged unless the
    /// shared fsync returned. Same-process tailers are woken once for
    /// the whole batch.
    pub fn append_many(&mut self, records: &[Vec<u8>]) -> Result<u64> {
        if records.is_empty() {
            return Ok(self.base_lsn + self.count);
        }
        let total: usize = records.iter().map(|r| RECORD_HEADER_LEN + r.len()).sum();
        let mut frame = Vec::with_capacity(total);
        for payload in records {
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&crc32(payload).to_le_bytes());
            frame.extend_from_slice(payload);
        }
        self.file
            .seek(SeekFrom::Start(self.end))
            .map_err(|e| io_err("seek WAL end", e))?;
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append WAL batch", e))?;
        if self.sync {
            self.file.sync_data().map_err(|e| io_err("sync WAL batch", e))?;
            self.sync_count += 1;
            metrics().fsyncs.inc();
        }
        metrics().appends.add(records.len() as u64);
        metrics().bytes.add(frame.len() as u64);
        self.end += frame.len() as u64;
        self.count += records.len() as u64;
        // one wakeup for the whole batch: tailers drain every new record
        // from a single poll
        let (counter, condvar) = &*self.notify;
        *counter.lock().expect("commit notify lock") += records.len() as u64; // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        condvar.notify_all();
        Ok(self.base_lsn + self.count)
    }

    /// The committed records with LSN strictly greater than `after`, as
    /// `(lsn, payload)` pairs — the pull side of WAL shipping ("send me
    /// everything since x"). Returns an error when `after` precedes this
    /// log's `base_lsn` (those records live in the snapshot, not the log;
    /// the caller must fall back to a snapshot transfer).
    ///
    /// Reads through a fresh handle on the file, so it can run while the
    /// log is being appended to; it only ever sees fully framed records.
    pub fn records_from(&self, after: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        if after < self.base_lsn {
            return Err(Error::Storage(format!(
                "LSN {after} predates this log (base LSN {}); a snapshot transfer is needed",
                self.base_lsn
            )));
        }
        let raw = self.vfs.read(&self.path).map_err(|e| io_err("read WAL", e))?;
        let (generation, base_lsn) = decode_header(&raw)?;
        if generation != self.generation || base_lsn != self.base_lsn {
            return Err(Error::Storage(
                "WAL was swapped while reading (checkpoint in progress); retry".into(),
            ));
        }
        let (records, _) = scan_records(&raw);
        Ok(records
            .into_iter()
            .enumerate()
            .map(|(i, payload)| (base_lsn + i as u64 + 1, payload))
            .filter(|(lsn, _)| *lsn > after)
            .collect())
    }
}

/// A summary of a WAL file's position, read without opening it for
/// writes (and without truncating a torn tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHead {
    /// The checkpoint generation the log extends.
    pub generation: u64,
    /// LSN of the last record before this log (covered by the snapshot).
    pub base_lsn: u64,
    /// LSN of the last complete record in the log.
    pub last_lsn: u64,
}

/// Reads the head summary of the WAL at `path` — what a replication
/// primary consults to decide between shipping log records and falling
/// back to a snapshot transfer.
pub fn head(path: &Path) -> Result<WalHead> {
    head_with_vfs(&*std_vfs(), path)
}

/// As [`head`], on an explicit [`Vfs`].
pub fn head_with_vfs(vfs: &dyn Vfs, path: &Path) -> Result<WalHead> {
    let raw = vfs.read(path).map_err(|e| io_err("read WAL", e))?;
    let (generation, base_lsn) = decode_header(&raw)?;
    let (records, _) = scan_records(&raw);
    Ok(WalHead { generation, base_lsn, last_lsn: base_lsn + records.len() as u64 })
}

/// A read-only cursor over a WAL *file*, for tailing committed records
/// from another thread or process (the primary's shipping loop). The
/// cursor remembers its byte offset, so polling only reads what was
/// appended since the last call; a checkpoint swapping in a fresh log
/// (different generation / base LSN) is detected and surfaced as
/// [`WalCursor::poll`] returning `Reset`.
#[derive(Debug)]
pub struct WalCursor {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    generation: u64,
    base_lsn: u64,
    /// Byte offset just past the last complete record already returned.
    offset: u64,
    /// LSN of the last record already returned.
    lsn: u64,
}

/// What one [`WalCursor::poll`] observed.
#[derive(Debug)]
pub enum Polled {
    /// New committed records, in order, as `(lsn, payload)` pairs (empty
    /// when nothing new was appended).
    Records(Vec<(u64, Vec<u8>)>),
    /// The log was swapped by a checkpoint: its `base_lsn` no longer
    /// covers the cursor position. The caller must restart from the
    /// snapshot (the cursor itself is repositioned at the new log start).
    Reset {
        /// The new log's generation.
        generation: u64,
        /// The new log's base LSN (covered by the paired snapshot).
        base_lsn: u64,
    },
}

impl WalCursor {
    /// Opens a cursor positioned **after** LSN `after` on the log at
    /// `path`. Fails when `after` predates the log's base LSN (the
    /// records before it live in the snapshot).
    pub fn open(path: &Path, after: u64) -> Result<WalCursor> {
        WalCursor::open_with_vfs(std_vfs(), path, after)
    }

    /// As [`WalCursor::open`], on an explicit [`Vfs`].
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, path: &Path, after: u64) -> Result<WalCursor> {
        let raw = vfs.read(path).map_err(|e| io_err("read WAL", e))?;
        let (generation, base_lsn) = decode_header(&raw)?;
        if after < base_lsn {
            return Err(Error::Storage(format!(
                "LSN {after} predates this log (base LSN {base_lsn}); \
                 a snapshot transfer is needed"
            )));
        }
        // walk forward to the requested position
        let (records, _) = scan_records(&raw);
        let mut offset = WAL_HEADER_LEN;
        let mut lsn = base_lsn;
        for (i, payload) in records.iter().enumerate() {
            let rec_lsn = base_lsn + i as u64 + 1;
            if rec_lsn > after {
                break;
            }
            offset += (RECORD_HEADER_LEN + payload.len()) as u64;
            lsn = rec_lsn;
        }
        if lsn < after {
            return Err(Error::Storage(format!(
                "LSN {after} is past the end of the log (last LSN {lsn})"
            )));
        }
        Ok(WalCursor { vfs, path: path.to_path_buf(), generation, base_lsn, offset, lsn })
    }

    /// LSN of the last record this cursor has returned.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// The generation of the log the cursor is positioned in.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Reads any records appended since the last poll. Cheap when nothing
    /// changed (one header read). See [`Polled`] for the checkpoint-swap
    /// case.
    pub fn poll(&mut self) -> Result<Polled> {
        let mut file =
            self.vfs.open(&self.path, OpenMode::Read).map_err(|e| io_err("open WAL", e))?;
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        file.read_exact(&mut header).map_err(|e| io_err("read WAL header", e))?;
        let (generation, base_lsn) = decode_header(&header)?;
        if generation != self.generation || base_lsn != self.base_lsn {
            // a checkpoint swapped the log under us
            self.generation = generation;
            self.base_lsn = base_lsn;
            self.offset = WAL_HEADER_LEN;
            self.lsn = base_lsn;
            return Ok(Polled::Reset { generation, base_lsn });
        }
        file.seek(SeekFrom::Start(self.offset)).map_err(|e| io_err("seek WAL", e))?;
        let mut tail = Vec::new();
        file.read_to_end(&mut tail).map_err(|e| io_err("read WAL tail", e))?;

        let mut out = Vec::new();
        let mut pos = 0usize;
        while tail.len().saturating_sub(pos) >= RECORD_HEADER_LEN {
            let len = u32::from_le_bytes(tail[pos..pos + 4].try_into().expect("4 bytes")) as usize; // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
            let stored = u32::from_le_bytes(tail[pos + 4..pos + 8].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
            let body_at = pos + RECORD_HEADER_LEN;
            if tail.len() - body_at < len {
                break; // incomplete (a concurrent append in flight)
            }
            let body = &tail[body_at..body_at + len];
            if crc32(body) != stored {
                // Appends write a frame front to back, so a frame whose
                // whole body is on disk can only fail its checksum through
                // corruption — never a write in flight. Silently stopping
                // here would stall shipping forever while every follower
                // believes it is caught up; surface it instead.
                return Err(Error::Storage(format!(
                    "WAL record at LSN {} failed its checksum mid-log                      (on-disk corruption; shipping cannot proceed past it)",
                    self.lsn + 1
                )));
            }
            pos = body_at + len;
            self.lsn += 1;
            self.offset += (RECORD_HEADER_LEN + len) as u64;
            out.push((self.lsn, body.to_vec()));
        }
        Ok(Polled::Records(out))
    }
}

#[cfg(test)]
mod tests {
    // tests corrupt bytes on disk and clean temp files directly
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-wal-{}-{name}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("replay");
        {
            let mut wal = Wal::create(&path, 7, 0).unwrap();
            assert_eq!(wal.append(b"first").unwrap(), 1);
            assert_eq!(wal.append(b"").unwrap(), 2);
            assert_eq!(wal.append(b"third record, a bit longer").unwrap(), 3);
            assert_eq!(wal.last_lsn(), 3);
        }
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(wal.generation(), 7);
        assert_eq!(wal.base_lsn(), 0);
        assert_eq!(wal.last_lsn(), 3);
        assert_eq!(
            records,
            vec![b"first".to_vec(), b"".to_vec(), b"third record, a bit longer".to_vec()]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lsns_continue_across_checkpoint_logs() {
        let path = tmp("lsn-continue");
        {
            let mut wal = Wal::create(&path, 1, 41).unwrap();
            assert_eq!(wal.base_lsn(), 41);
            assert_eq!(wal.last_lsn(), 41);
            assert_eq!(wal.append(b"a").unwrap(), 42);
            assert_eq!(wal.append(b"b").unwrap(), 43);
        }
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(wal.last_lsn(), 43);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_from_filters_by_lsn() {
        let path = tmp("records-from");
        let mut wal = Wal::create(&path, 1, 10).unwrap();
        wal.append(b"eleven").unwrap();
        wal.append(b"twelve").unwrap();
        wal.append(b"thirteen").unwrap();
        let all = wal.records_from(10).unwrap();
        assert_eq!(
            all,
            vec![
                (11, b"eleven".to_vec()),
                (12, b"twelve".to_vec()),
                (13, b"thirteen".to_vec())
            ]
        );
        assert_eq!(wal.records_from(12).unwrap(), vec![(13, b"thirteen".to_vec())]);
        assert!(wal.records_from(13).unwrap().is_empty());
        assert!(wal.records_from(99).unwrap().is_empty());
        // a position before base_lsn means the records live in the snapshot
        let err = wal.records_from(9).unwrap_err();
        assert!(err.to_string().contains("snapshot transfer"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cursor_tails_appends_and_detects_swap() {
        let path = tmp("cursor");
        let mut wal = Wal::create(&path, 1, 0).unwrap();
        wal.append(b"one").unwrap();
        let mut cur = WalCursor::open(&path, 0).unwrap();
        let Polled::Records(r) = cur.poll().unwrap() else { panic!("expected records") };
        assert_eq!(r, vec![(1, b"one".to_vec())]);
        // nothing new: empty poll
        let Polled::Records(r) = cur.poll().unwrap() else { panic!() };
        assert!(r.is_empty());
        // appends show up incrementally
        wal.append(b"two").unwrap();
        wal.append(b"three").unwrap();
        let Polled::Records(r) = cur.poll().unwrap() else { panic!() };
        assert_eq!(r, vec![(2, b"two".to_vec()), (3, b"three".to_vec())]);
        assert_eq!(cur.lsn(), 3);
        // a checkpoint swaps in a fresh log: the cursor reports the reset
        let _swapped = Wal::create(&path, 2, 3).unwrap();
        match cur.poll().unwrap() {
            Polled::Reset { generation, base_lsn } => {
                assert_eq!(generation, 2);
                assert_eq!(base_lsn, 3);
            }
            other => panic!("expected reset, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cursor_errors_on_mid_log_corruption() {
        // a complete-by-length record failing its CRC is corruption, not
        // an in-flight append — polling must surface it, not stall
        let path = tmp("cursor-corrupt");
        let mut wal = Wal::create(&path, 1, 0).unwrap();
        wal.append(b"first record").unwrap();
        wal.append(b"second record").unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let first_body = WAL_HEADER_LEN as usize + RECORD_HEADER_LEN + 3;
        raw[first_body] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let mut cur = WalCursor::open(&path, 0).unwrap();
        let err = cur.poll().unwrap_err();
        assert!(err.to_string().contains("corruption"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cursor_open_mid_log() {
        let path = tmp("cursor-mid");
        let mut wal = Wal::create(&path, 1, 0).unwrap();
        for payload in [b"a".as_slice(), b"bb", b"ccc"] {
            wal.append(payload).unwrap();
        }
        let mut cur = WalCursor::open(&path, 2).unwrap();
        let Polled::Records(r) = cur.poll().unwrap() else { panic!() };
        assert_eq!(r, vec![(3, b"ccc".to_vec())]);
        // past-the-end and pre-base positions are rejected
        assert!(WalCursor::open(&path, 9).is_err());
        let behind = Wal::create(&tmp("cursor-mid2"), 2, 5).unwrap();
        assert!(WalCursor::open(behind.path(), 2).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let path = tmp("torn");
        {
            let mut wal = Wal::create(&path, 1, 0).unwrap();
            wal.append(b"committed one").unwrap();
            wal.append(b"committed two").unwrap();
            wal.append(b"the torn one").unwrap();
        }
        // cut the last record short by 5 bytes — a crash mid-append
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"committed one".to_vec(), b"committed two".to_vec()]);
        assert_eq!(wal.last_lsn(), 2, "the torn record must not claim an LSN");
        // the torn frame is gone from disk; new appends land cleanly
        assert_eq!(wal.append(b"after recovery").unwrap(), 3);
        drop(wal);
        let (_, records2) = Wal::open(&path).unwrap();
        assert_eq!(records2.len(), 3);
        assert_eq!(records2[2], b"after recovery");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_drops_suffix() {
        let path = tmp("corrupt");
        {
            let mut wal = Wal::create(&path, 1, 0).unwrap();
            wal.append(b"good record").unwrap();
            wal.append(b"bad record!").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        // flip a byte in the second record's body
        let second_body = WAL_HEADER_LEN as usize + 8 + 11 + 8 + 2;
        raw[second_body] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"good record".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_replaces_existing_log() {
        let path = tmp("recreate");
        {
            let mut wal = Wal::create(&path, 1, 0).unwrap();
            wal.append(b"old stuff").unwrap();
        }
        let wal = Wal::create(&path, 2, 1).unwrap();
        assert!(wal.is_empty());
        drop(wal);
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(wal.generation(), 2);
        assert_eq!(wal.base_lsn(), 1);
        assert!(records.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_wakes_commit_waiters() {
        let path = tmp("notify");
        let mut wal = Wal::create(&path, 1, 0).unwrap();
        let handle = commit_notify(&path);
        let seen = commit_seq(&handle);
        let waiter = {
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || {
                // generous timeout: the signal, not the deadline, must end
                // this wait
                wait_for_commit(&handle, seen, Duration::from_secs(30))
            })
        };
        wal.append(b"wake up").unwrap();
        let woken = waiter.join().unwrap();
        assert!(woken > seen, "append must advance the commit counter");
        // a stale `seen` returns immediately with the current counter
        assert_eq!(wait_for_commit(&handle, seen, Duration::from_secs(30)), woken);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wait_for_commit_times_out_when_idle() {
        let handle = commit_notify(Path::new("maybms-wal-test-no-such-file"));
        let seen = commit_seq(&handle);
        let start = std::time::Instant::now();
        assert_eq!(wait_for_commit(&handle, seen, Duration::from_millis(15)), seen);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn bad_header_rejected() {
        let path = tmp("badheader");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
