//! WAL shipping: the wire protocol between a replication primary and its
//! followers.
//!
//! The protocol is deliberately tiny — four message kinds over any
//! ordered byte stream (an in-process pipe, a unix socket, TCP):
//!
//! * [`Msg::Hello`] — follower → primary, once per connection: "my state
//!   is at generation *g*, I have applied everything up to LSN *x*".
//! * [`Msg::Snapshot`] — primary → follower: a full state transfer (the
//!   effective snapshot payload), sent when the follower's position
//!   predates the log (the records it needs were compacted into a
//!   checkpoint) or is from a different timeline. The follower replaces
//!   its whole state and resumes from `last_lsn`.
//! * [`Msg::Record`] — primary → follower: one committed WAL record (a
//!   single autocommitted statement or a whole transaction's commit
//!   group) with its LSN. Records are shipped strictly in LSN order;
//!   only fsynced records are ever shipped, so a follower can never get
//!   ahead of the primary's durable state.
//! * [`Msg::Heartbeat`] — primary → follower when idle: names the
//!   primary's last durable LSN so a caught-up follower can know it.
//!
//! Every message is framed like a WAL record — `len u32 | crc u32 |
//! payload` — so a **torn stream** (connection cut mid-frame, bit flips
//! in transit) is detected by [`recv_msg`] and surfaced as an error
//! rather than a half-applied message; the follower drops the connection
//! and reconnects with a fresh `Hello`, and the primary resumes from the
//! follower's LSN. Applying a record is idempotent-by-LSN on the
//! follower side (a record at or below the applied LSN is skipped), so
//! resending across a reconnect is harmless.

use std::io::{Read, Write};

use maybms_relational::{Error, Result};

use crate::bytes::{Reader, Writer};
use crate::crc::crc32;
use crate::pager::io_err;

/// Version of the shipping protocol; a mismatch fails the handshake.
pub const SHIP_VERSION: u8 = 1;

/// Upper bound on one frame's payload. The frame length field is not
/// covered by the payload CRC, so a bit flip there must not be able to
/// trigger an unbounded allocation or swallow gigabytes of good frames —
/// anything larger than the biggest legitimate message (a full snapshot
/// transfer) is rejected as corruption.
pub const MAX_FRAME_LEN: usize = 1 << 30;

const TAG_HELLO: u8 = 1;
const TAG_SNAPSHOT: u8 = 2;
const TAG_RECORD: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;

/// One replication protocol message — see the module docs for the flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Follower → primary: the follower's current position.
    Hello {
        /// The snapshot generation of the follower's state (0 for a
        /// fresh follower).
        generation: u64,
        /// LSN of the last record the follower has applied.
        last_lsn: u64,
    },
    /// Primary → follower: a full state transfer.
    Snapshot {
        /// The generation of the shipped state.
        generation: u64,
        /// The LSN the shipped state covers; the follower resumes here.
        last_lsn: u64,
        /// The encoded database state (an effective snapshot payload).
        payload: Vec<u8>,
    },
    /// Primary → follower: one committed WAL record.
    Record {
        /// The record's log sequence number.
        lsn: u64,
        /// The WAL record payload (statement or commit group).
        payload: Vec<u8>,
    },
    /// Primary → follower: nothing new; the primary's last LSN.
    Heartbeat {
        /// The primary's snapshot generation.
        generation: u64,
        /// The primary's last durable LSN.
        last_lsn: u64,
    },
}

fn encode_msg(msg: &Msg) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(SHIP_VERSION);
    match msg {
        Msg::Hello { generation, last_lsn } => {
            w.put_u8(TAG_HELLO);
            w.put_u64(*generation);
            w.put_u64(*last_lsn);
        }
        Msg::Snapshot { generation, last_lsn, payload } => {
            w.put_u8(TAG_SNAPSHOT);
            w.put_u64(*generation);
            w.put_u64(*last_lsn);
            w.put_u32(payload.len() as u32);
            w.put_bytes(payload);
        }
        Msg::Record { lsn, payload } => {
            w.put_u8(TAG_RECORD);
            w.put_u64(*lsn);
            w.put_u32(payload.len() as u32);
            w.put_bytes(payload);
        }
        Msg::Heartbeat { generation, last_lsn } => {
            w.put_u8(TAG_HEARTBEAT);
            w.put_u64(*generation);
            w.put_u64(*last_lsn);
        }
    }
    w.into_inner()
}

fn decode_msg(bytes: &[u8]) -> Result<Msg> {
    let mut r = Reader::new(bytes);
    let version = r.get_u8()?;
    if version != SHIP_VERSION {
        return Err(Error::Storage(format!(
            "unsupported shipping protocol version {version} (this build speaks {SHIP_VERSION})"
        )));
    }
    let msg = match r.get_u8()? {
        TAG_HELLO => Msg::Hello { generation: r.get_u64()?, last_lsn: r.get_u64()? },
        TAG_SNAPSHOT => {
            let generation = r.get_u64()?;
            let last_lsn = r.get_u64()?;
            let len = r.get_len()?;
            let payload = r.get_bytes(len)?.to_vec();
            Msg::Snapshot { generation, last_lsn, payload }
        }
        TAG_RECORD => {
            let lsn = r.get_u64()?;
            let len = r.get_len()?;
            let payload = r.get_bytes(len)?.to_vec();
            Msg::Record { lsn, payload }
        }
        TAG_HEARTBEAT => Msg::Heartbeat { generation: r.get_u64()?, last_lsn: r.get_u64()? },
        t => return Err(Error::Storage(format!("unknown shipping message tag {t}"))),
    };
    r.expect_end()?;
    Ok(msg)
}

/// Writes one framed message to the stream and flushes it.
pub fn send_msg<W: Write>(stream: &mut W, msg: &Msg) -> Result<()> {
    let payload = encode_msg(msg);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    stream
        .write_all(&frame)
        .map_err(|e| io_err("ship message", e))?;
    stream.flush().map_err(|e| io_err("flush shipped message", e))
}

/// Reads one framed message from the stream, verifying its checksum. A
/// stream cut mid-frame, or a frame whose bytes were damaged in transit,
/// is an error — the caller should drop the connection and re-handshake.
pub fn recv_msg<R: Read>(stream: &mut R) -> Result<Msg> {
    let mut header = [0u8; 8];
    stream
        .read_exact(&mut header)
        .map_err(|e| io_err("receive message frame", e))?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize; // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if len > MAX_FRAME_LEN {
        return Err(Error::Storage(format!(
            "shipped frame declares {len} bytes (max {MAX_FRAME_LEN}): corrupt stream"
        )));
    }
    let stored = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| io_err("receive message body (torn stream?)", e))?;
    if crc32(&payload) != stored {
        return Err(Error::Storage(
            "shipped message checksum mismatch (corrupt or torn stream)".into(),
        ));
    }
    decode_msg(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) {
        let mut buf = Vec::new();
        send_msg(&mut buf, &msg).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(recv_msg(&mut cursor).unwrap(), msg);
        assert!(cursor.is_empty(), "one message, one frame");
    }

    #[test]
    fn messages_round_trip() {
        round_trip(Msg::Hello { generation: 3, last_lsn: 17 });
        round_trip(Msg::Snapshot { generation: 4, last_lsn: 20, payload: vec![1, 2, 3] });
        round_trip(Msg::Snapshot { generation: 0, last_lsn: 0, payload: vec![] });
        round_trip(Msg::Record { lsn: 21, payload: b"statement bytes".to_vec() });
        round_trip(Msg::Heartbeat { generation: 4, last_lsn: 21 });
    }

    #[test]
    fn streams_concatenate() {
        let msgs = [
            Msg::Hello { generation: 1, last_lsn: 2 },
            Msg::Record { lsn: 3, payload: b"a".to_vec() },
            Msg::Record { lsn: 4, payload: b"bb".to_vec() },
            Msg::Heartbeat { generation: 1, last_lsn: 4 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            send_msg(&mut buf, m).unwrap();
        }
        let mut cursor = &buf[..];
        for m in &msgs {
            assert_eq!(&recv_msg(&mut cursor).unwrap(), m);
        }
    }

    #[test]
    fn torn_stream_is_detected_at_every_offset() {
        let mut buf = Vec::new();
        send_msg(&mut buf, &Msg::Record { lsn: 9, payload: b"payload".to_vec() }).unwrap();
        for cut in 0..buf.len() {
            let mut cursor = &buf[..cut];
            assert!(recv_msg(&mut cursor).is_err(), "cut at {cut} must not parse");
        }
    }

    #[test]
    fn oversized_frame_length_is_rejected_without_allocating() {
        // a bit flip in the (un-checksummed) length field must error out
        // instead of allocating gigabytes and swallowing later frames
        let mut buf = Vec::new();
        send_msg(&mut buf, &Msg::Record { lsn: 9, payload: b"payload".to_vec() }).unwrap();
        buf[3] = 0xFF; // len |= 0xFF000000 — ~4 GiB
        let mut cursor = &buf[..];
        let err = recv_msg(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("corrupt stream"), "{err}");
    }

    #[test]
    fn corrupt_frame_is_detected() {
        let mut buf = Vec::new();
        send_msg(&mut buf, &Msg::Record { lsn: 9, payload: b"payload".to_vec() }).unwrap();
        for at in 8..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x01;
            let mut cursor = &bad[..];
            assert!(recv_msg(&mut cursor).is_err(), "flip at {at} must not parse");
        }
    }
}
