//! One durable database: a snapshot file plus its write-ahead log.
//!
//! For a database at `db.maybms` the engine keeps two files:
//!
//! * `db.maybms` — the latest checkpointed snapshot (see
//!   [`crate::snapshot`]); absent until the first checkpoint;
//! * `db.maybms.wal` — the log of committed mutations since that
//!   snapshot (see [`crate::wal`]).
//!
//! **Recovery** ([`Database::open`]): load the snapshot if present, then
//! replay the WAL — but only when the WAL's generation matches the
//! snapshot's. A mismatched or unreadable WAL is the footprint of a crash
//! between the two steps of a checkpoint (its records are already inside
//! the newer snapshot), so it is discarded and replaced with a fresh log
//! rather than replayed twice.
//!
//! **Checkpoint** ([`Database::checkpoint`]): write the full state as a
//! new snapshot with generation *g+1* (atomic write-new + rename), then
//! atomically swap in an empty WAL of generation *g+1*. Every crash
//! window leaves a recoverable pair:
//!
//! * before the snapshot rename — old snapshot *g* + old WAL *g*: replay;
//! * after the rename, before the WAL swap — snapshot *g+1* + stale WAL
//!   *g*: WAL discarded, nothing lost, nothing doubled;
//! * after both — snapshot *g+1* + empty WAL *g+1*.

use std::path::{Path, PathBuf};

use maybms_relational::{Error, Result};

use crate::snapshot::{read_snapshot, write_snapshot_with_page_size};
use crate::pager::DEFAULT_PAGE_SIZE;
use crate::wal::Wal;

/// The WAL path for a snapshot path: `<path>.wal`.
pub fn wal_path_for(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".wal");
    PathBuf::from(s)
}

/// An open durable database (snapshot + WAL handles).
#[derive(Debug)]
pub struct Database {
    snapshot_path: PathBuf,
    wal: Wal,
    generation: u64,
    page_size: usize,
    /// Set when a checkpoint failed between its snapshot rename and its
    /// WAL swap: the open WAL handle no longer matches the on-disk
    /// snapshot generation, so further appends would be silently
    /// discarded by the next recovery. All writes refuse until reopen.
    poisoned: bool,
}

/// What [`Database::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The open database, positioned to accept appends.
    pub db: Database,
    /// The latest snapshot payload, if one was ever checkpointed.
    pub snapshot: Option<Vec<u8>>,
    /// Committed WAL records to replay on top of the snapshot.
    pub records: Vec<Vec<u8>>,
}

impl Database {
    /// Opens (or creates) the database at `path` and returns everything
    /// needed to rebuild its state: the snapshot payload and the WAL
    /// records committed after it.
    pub fn open(path: impl AsRef<Path>) -> Result<Recovered> {
        Self::open_with_page_size(path, DEFAULT_PAGE_SIZE)
    }

    /// As [`Database::open`] with an explicit snapshot page size for new
    /// checkpoints (an existing snapshot's own page size is read from its
    /// header).
    pub fn open_with_page_size(path: impl AsRef<Path>, page_size: usize) -> Result<Recovered> {
        let path = path.as_ref();
        let (snapshot, generation) = if path.exists() {
            let (meta, payload) = read_snapshot(path)?;
            (Some(payload), meta.generation)
        } else {
            (None, 0)
        };

        let wal_path = wal_path_for(path);
        let (wal, records) = if wal_path.exists() {
            // An unreadable WAL header is genuine corruption, never a
            // checkpoint artifact (log resets go through write-temp +
            // rename, so the file on disk is always a complete old or new
            // log) — fail loudly rather than silently discard commits.
            let (wal, records) = Wal::open(&wal_path)?;
            if wal.generation() == generation {
                (wal, records)
            } else {
                // Stale pre-checkpoint log (crash between the snapshot
                // rename and the WAL swap): its records are already
                // inside the newer snapshot — start a fresh one.
                (Wal::create(&wal_path, generation)?, Vec::new())
            }
        } else {
            (Wal::create(&wal_path, generation)?, Vec::new())
        };

        Ok(Recovered {
            db: Database {
                snapshot_path: path.to_path_buf(),
                wal,
                generation,
                page_size,
                poisoned: false,
            },
            snapshot,
            records,
        })
    }

    /// The snapshot generation this database is at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Bytes of committed WAL (header included) — tests use this to
    /// assert a checkpoint emptied the log.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Whether the WAL holds no records since the last checkpoint.
    pub fn wal_is_empty(&self) -> bool {
        self.wal.is_empty()
    }

    /// Whether any state was ever checkpointed or logged.
    pub fn is_fresh(&self) -> bool {
        self.generation == 0 && self.wal.is_empty() && !self.snapshot_path.exists()
    }

    /// See [`Wal::set_sync`].
    pub fn set_sync(&mut self, sync: bool) {
        self.wal.set_sync(sync);
    }

    /// See [`Wal::sync_count`]. Resets when a checkpoint swaps in a fresh
    /// log handle.
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.sync_count()
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::Storage(
                "database is poisoned by a half-completed checkpoint \
                 (snapshot advanced, WAL swap failed); reopen it to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Commits one logical mutation record. On return it is durable.
    pub fn append(&mut self, record: &[u8]) -> Result<()> {
        self.check_poisoned()?;
        self.wal.append(record)
    }

    /// Checkpoints: writes `state` as the generation-`g+1` snapshot
    /// (write-new + rename) and swaps in a fresh WAL of that generation.
    pub fn checkpoint(&mut self, state: &[u8]) -> Result<()> {
        self.check_poisoned()?;
        let next = self.generation.checked_add(1).ok_or_else(|| {
            Error::Storage("generation counter overflow".into())
        })?;
        write_snapshot_with_page_size(&self.snapshot_path, next, state, self.page_size)?;
        // The snapshot is live from here on. If the WAL swap fails, the
        // open handle still points at the stale generation-`g` log, whose
        // records the next recovery will (correctly) discard — so poison
        // this handle rather than let appends vanish silently. Reopening
        // recovers cleanly: snapshot g+1 + stale WAL → fresh WAL.
        match Wal::create(&wal_path_for(&self.snapshot_path), next) {
            Ok(wal) => {
                self.wal = wal;
                self.generation = next;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(Error::Storage(format!(
                    "checkpoint interrupted after publishing snapshot generation {next}: {e}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-db-{}-{name}.maybms", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(wal_path_for(&p));
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
    }

    #[test]
    fn fresh_open_then_log_then_recover() {
        let path = tmp("fresh");
        {
            let r = Database::open(&path).unwrap();
            assert!(r.snapshot.is_none());
            assert!(r.records.is_empty());
            let mut db = r.db;
            assert!(db.is_fresh());
            db.append(b"stmt 1").unwrap();
            db.append(b"stmt 2").unwrap();
        }
        let r = Database::open(&path).unwrap();
        assert!(r.snapshot.is_none());
        assert_eq!(r.records, vec![b"stmt 1".to_vec(), b"stmt 2".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_compacts_and_bumps_generation() {
        let path = tmp("ckpt");
        {
            let mut db = Database::open(&path).unwrap().db;
            db.append(b"a").unwrap();
            db.checkpoint(b"state after a").unwrap();
            assert_eq!(db.generation(), 1);
            assert!(db.wal_is_empty());
            db.append(b"b").unwrap();
        }
        let r = Database::open(&path).unwrap();
        assert_eq!(r.db.generation(), 1);
        assert_eq!(r.snapshot.as_deref(), Some(&b"state after a"[..]));
        assert_eq!(r.records, vec![b"b".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn stale_wal_after_interrupted_checkpoint_is_discarded() {
        let path = tmp("stale");
        // build gen-0 WAL with records, checkpoint, then put the old WAL
        // back — simulating a crash after the snapshot rename but before
        // the WAL swap
        let old_wal = {
            let mut db = Database::open(&path).unwrap().db;
            db.append(b"pre-checkpoint").unwrap();
            let bytes = std::fs::read(wal_path_for(&path)).unwrap();
            db.checkpoint(b"checkpointed state").unwrap();
            bytes
        };
        std::fs::write(wal_path_for(&path), &old_wal).unwrap();
        let r = Database::open(&path).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&b"checkpointed state"[..]));
        assert!(
            r.records.is_empty(),
            "stale generation-0 records must not be replayed onto a generation-1 snapshot"
        );
        assert!(r.db.wal_is_empty());
        cleanup(&path);
    }

    #[test]
    fn unreadable_wal_fails_loudly() {
        // A corrupt WAL *header* is not a checkpoint artifact — it may be
        // the only copy of committed data (e.g. a never-checkpointed
        // database), so open must error instead of silently resetting it.
        let path = tmp("unreadable");
        {
            let mut db = Database::open(&path).unwrap().db;
            db.append(b"the only copy of this commit").unwrap();
        }
        let wal = wal_path_for(&path);
        let mut raw = std::fs::read(&wal).unwrap();
        raw[10] ^= 0xFF; // corrupt the header
        std::fs::write(&wal, &raw).unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // same with a snapshot present: the log could hold post-checkpoint
        // commits, so it still must not be discarded
        cleanup(&path);
        {
            let mut db = Database::open(&path).unwrap().db;
            db.checkpoint(b"good state").unwrap();
            db.append(b"post-checkpoint commit").unwrap();
        }
        std::fs::write(&wal, b"garbage").unwrap();
        assert!(Database::open(&path).is_err());
        cleanup(&path);
    }
}
