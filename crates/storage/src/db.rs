//! One durable database: a snapshot pair plus its write-ahead log.
//!
//! For a database at `db.maybms` the engine keeps up to three files:
//!
//! * `db.maybms` — the latest **full** (base) snapshot (see
//!   [`crate::snapshot`]); absent until the first checkpoint;
//! * `db.maybms.inc` — the optional **incremental** overlay: only the
//!   pages that changed since the base, plus a page map (see
//!   [`crate::delta`]);
//! * `db.maybms.wal` — the log of committed mutations since the last
//!   checkpoint (see [`crate::wal`]), with monotone LSNs.
//!
//! **Recovery** ([`Database::open`]): load the base snapshot, patch in
//! the overlay when a valid one is present (an overlay whose generation
//! is not newer than the base's, or that names a different base
//! generation, is the footprint of a crash mid-full-checkpoint — it is
//! discarded, never applied), then replay the WAL — but only when the
//! WAL's generation matches the effective snapshot's. A mismatched WAL is
//! the footprint of a crash between the two steps of a checkpoint (its
//! records are already inside the newer snapshot), so it is discarded and
//! replaced with a fresh log rather than replayed twice.
//!
//! **Checkpoint** ([`Database::checkpoint`]): write the full state with
//! generation *g+1*, then atomically swap in an empty WAL of generation
//! *g+1* whose `base_lsn` continues the numbering. The write is
//! **incremental** when a base snapshot exists and less than half its
//! pages changed (per-page CRC diff): only the changed pages go to the
//! overlay file, the base is untouched. Otherwise — first checkpoint,
//! widespread changes, or [`Database::checkpoint_full`] — the full state
//! is rewritten as a fresh base and the overlay is removed. Both paths
//! publish atomically (write-new `.tmp` + rename), so every crash window
//! leaves a recoverable pair:
//!
//! * before the snapshot/overlay rename — old state *g* + old WAL *g*:
//!   replay;
//! * after the rename, before the WAL swap — state *g+1* + stale WAL *g*:
//!   WAL discarded, nothing lost, nothing doubled;
//! * after both — state *g+1* + empty WAL *g+1*;
//! * full checkpoint only: after the base rename but before the stale
//!   overlay is deleted — base *g+1* + overlay *≤ g*: the overlay is
//!   ignored (and removed) on the next open.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use maybms_obs::registry::DURATION_US_BOUNDS;
use maybms_obs::{Counter, Histogram};
use maybms_relational::{Error, Result};

use crate::delta::{
    chunk_crcs, delta_path_for, overlay, payload_chunks, read_delta_with_vfs,
    write_delta_with_vfs, DeltaMeta,
};
use crate::pager::{page_crc, DEFAULT_PAGE_SIZE};
use crate::snapshot::{read_snapshot_with_vfs, write_snapshot_with_vfs};
use crate::crc::crc32;
use crate::vfs::{std_vfs, Vfs};
use crate::wal::Wal;

/// The WAL path for a snapshot path: `<path>.wal`.
pub fn wal_path_for(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".wal");
    PathBuf::from(s)
}

/// Process-wide database counters, resolved once.
struct DbMetrics {
    ckpt_full: Arc<Counter>,
    ckpt_incremental: Arc<Counter>,
    ckpt_unchanged: Arc<Counter>,
    ckpt_pages: Arc<Counter>,
    ckpt_duration_us: Arc<Histogram>,
    poison_events: Arc<Counter>,
}

fn metrics() -> &'static DbMetrics {
    static M: OnceLock<DbMetrics> = OnceLock::new();
    M.get_or_init(|| DbMetrics {
        ckpt_full: maybms_obs::counter("db.checkpoints.full"),
        ckpt_incremental: maybms_obs::counter("db.checkpoints.incremental"),
        ckpt_unchanged: maybms_obs::counter("db.checkpoints.unchanged"),
        ckpt_pages: maybms_obs::counter("db.checkpoint_pages"),
        ckpt_duration_us: maybms_obs::histogram("db.checkpoint_us", DURATION_US_BOUNDS),
        poison_events: maybms_obs::counter("db.poison_events"),
    })
}

/// What kind of snapshot a checkpoint wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// The whole state was rewritten as a fresh base snapshot.
    Full {
        /// Pages the new base holds.
        pages: u32,
    },
    /// Only the pages differing from the base went to the overlay file.
    Incremental {
        /// Pages whose checksum differed from the base's.
        changed_pages: u32,
        /// Pages the combined payload spans.
        total_pages: u32,
    },
    /// Nothing was committed since the last checkpoint (empty WAL, same
    /// state): no page was rewritten, no file was touched, and the
    /// generation did not advance.
    Unchanged,
}

/// The base snapshot a [`Database`] diffs incremental checkpoints against.
#[derive(Debug)]
struct BaseInfo {
    generation: u64,
    page_size: usize,
    /// Per-page checksums of the base payload, in page order.
    page_crcs: Vec<u32>,
}

/// An open durable database (snapshot + WAL handles).
#[derive(Debug)]
pub struct Database {
    snapshot_path: PathBuf,
    wal: Wal,
    /// The effective snapshot generation (overlay's when one is live).
    generation: u64,
    /// Page size for new *base* snapshots (incremental overlays always
    /// reuse the base's).
    page_size: usize,
    base: Option<BaseInfo>,
    /// CRC-32 of the effective payload of the last checkpoint (base +
    /// overlay), for the zero-mutation no-op check.
    state_crc: Option<u32>,
    /// The filesystem all I/O goes through.
    vfs: Arc<dyn Vfs>,
    /// Set (with the reason) when the durable state of this handle is no
    /// longer trustworthy: a WAL append failed (the write or its fsync —
    /// an fsync error must never be retried and reported as success), or
    /// a checkpoint failed between its snapshot rename and its WAL swap.
    /// All writes refuse until reopen; reopening recovers the last
    /// consistent durable state.
    poisoned: Option<String>,
}

/// What [`Database::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The open database, positioned to accept appends.
    pub db: Database,
    /// The latest effective snapshot payload (base + overlay), if one was
    /// ever checkpointed.
    pub snapshot: Option<Vec<u8>>,
    /// Committed WAL records to replay on top of the snapshot.
    pub records: Vec<Vec<u8>>,
}

/// The effective on-disk snapshot of the database at `path`, read through
/// a fresh handle: `(generation, last_lsn, payload)`, or `None` when no
/// checkpoint ever ran. This is the read side of a **snapshot transfer**
/// (a replication follower too far behind the log); it performs the same
/// overlay validation as recovery.
pub fn read_snapshot_state(path: &Path) -> Result<Option<(u64, u64, Vec<u8>)>> {
    read_snapshot_state_with_vfs(&*std_vfs(), path)
}

/// As [`read_snapshot_state`], on an explicit [`Vfs`].
pub fn read_snapshot_state_with_vfs(
    vfs: &dyn Vfs,
    path: &Path,
) -> Result<Option<(u64, u64, Vec<u8>)>> {
    Ok(load_snapshot_pair(vfs, path)?.map(|s| (s.generation, s.last_lsn, s.payload)))
}

struct SnapshotPair {
    /// Effective generation (the overlay's when one is live).
    generation: u64,
    /// LSN the effective state covers.
    last_lsn: u64,
    /// Effective payload (base + overlay).
    payload: Vec<u8>,
    base_generation: u64,
    base_page_size: usize,
    /// Per-page checksums of the *base* payload.
    base_page_crcs: Vec<u32>,
    /// An overlay file existed but was a checkpoint artifact to discard.
    stale_delta: bool,
}

fn load_snapshot_pair(vfs: &dyn Vfs, path: &Path) -> Result<Option<SnapshotPair>> {
    let delta_path = delta_path_for(path);
    if !vfs.exists(path) {
        if vfs.exists(&delta_path) {
            // an overlay can only ever be written next to an existing
            // base; patching nothing would fabricate state
            return Err(Error::Storage(format!(
                "incremental snapshot {} exists without its base snapshot {}",
                delta_path.display(),
                path.display()
            )));
        }
        return Ok(None);
    }
    let (meta, base_payload) = read_snapshot_with_vfs(vfs, path)?;
    let base_page_crcs = chunk_crcs(&base_payload, meta.page_size);
    if vfs.exists(&delta_path) {
        // An unreadable overlay is genuine corruption (overlays are
        // published atomically, so a crash never leaves a torn one) —
        // fail loudly rather than quietly dropping a checkpoint.
        let (dmeta, pages) = read_delta_with_vfs(vfs, &delta_path)?;
        if dmeta.generation > meta.generation && dmeta.base_generation == meta.generation {
            if dmeta.page_size != meta.page_size {
                return Err(Error::Storage(format!(
                    "incremental snapshot page size {} does not match its base's {}",
                    dmeta.page_size, meta.page_size
                )));
            }
            let payload = overlay(&base_payload, &dmeta, &pages)?;
            return Ok(Some(SnapshotPair {
                generation: dmeta.generation,
                last_lsn: dmeta.last_lsn,
                payload,
                base_generation: meta.generation,
                base_page_size: meta.page_size,
                base_page_crcs,
                stale_delta: false,
            }));
        }
        // stale overlay: a full checkpoint replaced the base after this
        // overlay was written (crash before the cleanup step) — its
        // contents are inside the newer base already
    }
    Ok(Some(SnapshotPair {
        generation: meta.generation,
        last_lsn: meta.last_lsn,
        payload: base_payload,
        base_generation: meta.generation,
        base_page_size: meta.page_size,
        base_page_crcs,
        stale_delta: vfs.exists(&delta_path),
    }))
}

impl Database {
    /// Opens (or creates) the database at `path` and returns everything
    /// needed to rebuild its state: the snapshot payload and the WAL
    /// records committed after it.
    pub fn open(path: impl AsRef<Path>) -> Result<Recovered> {
        Self::open_with_page_size(path, DEFAULT_PAGE_SIZE)
    }

    /// As [`Database::open`] with an explicit snapshot page size for new
    /// base snapshots (an existing snapshot's own page size is read from
    /// its header, and incremental overlays always reuse it).
    pub fn open_with_page_size(path: impl AsRef<Path>, page_size: usize) -> Result<Recovered> {
        Self::open_with_vfs(path, page_size, std_vfs())
    }

    /// As [`Database::open_with_page_size`], with all I/O routed through
    /// an explicit [`Vfs`] — the entry point fault-injection tests use.
    pub fn open_with_vfs(
        path: impl AsRef<Path>,
        page_size: usize,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Recovered> {
        let path = path.as_ref();
        let pair = load_snapshot_pair(&*vfs, path)?;
        let state_crc = pair.as_ref().map(|p| crc32(&p.payload));
        let (snapshot, generation, covered_lsn, base) = match pair {
            Some(p) => {
                if p.stale_delta {
                    // checkpoint artifact (see module docs) — clean it up
                    // maybms-lint: allow(poison-discipline) -- removes an overlay recovery already proved stale and ignores; failure leaves garbage, never wrong state
                    let _ = vfs.remove_file(&delta_path_for(path));
                }
                (
                    Some(p.payload),
                    p.generation,
                    p.last_lsn,
                    Some(BaseInfo {
                        generation: p.base_generation,
                        page_size: p.base_page_size,
                        page_crcs: p.base_page_crcs,
                    }),
                )
            }
            None => (None, 0, 0, None),
        };

        let wal_path = wal_path_for(path);
        let (wal, records) = if vfs.exists(&wal_path) {
            // An unreadable WAL header is genuine corruption, never a
            // checkpoint artifact (log resets go through write-temp +
            // rename, so the file on disk is always a complete old or new
            // log) — fail loudly rather than silently discard commits.
            let (wal, records) = Wal::open_with_vfs(Arc::clone(&vfs), &wal_path)?;
            if wal.generation() == generation {
                if wal.base_lsn() != covered_lsn {
                    return Err(Error::Storage(format!(
                        "WAL base LSN {} does not match the LSN {} its snapshot covers \
                         (files from different databases?)",
                        wal.base_lsn(),
                        covered_lsn
                    )));
                }
                (wal, records)
            } else {
                // Stale pre-checkpoint log (crash between the snapshot
                // rename and the WAL swap): its records are already
                // inside the newer snapshot — start a fresh one at the
                // LSN the snapshot covers.
                (
                    Wal::create_with_vfs(Arc::clone(&vfs), &wal_path, generation, covered_lsn)?,
                    Vec::new(),
                )
            }
        } else {
            (
                Wal::create_with_vfs(Arc::clone(&vfs), &wal_path, generation, covered_lsn)?,
                Vec::new(),
            )
        };

        Ok(Recovered {
            db: Database {
                snapshot_path: path.to_path_buf(),
                wal,
                generation,
                page_size,
                base,
                state_crc,
                vfs,
                poisoned: None,
            },
            snapshot,
            records,
        })
    }

    /// The snapshot generation this database is at (the overlay's when an
    /// incremental checkpoint is live).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The base snapshot path (`*.maybms`).
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The write-ahead-log path (`*.maybms.wal`).
    pub fn wal_path(&self) -> PathBuf {
        wal_path_for(&self.snapshot_path)
    }

    /// LSN of the last committed record (monotone across the database's
    /// whole life; checkpoints do not reset it).
    pub fn last_lsn(&self) -> u64 {
        self.wal.last_lsn()
    }

    /// LSN of the last record already captured by the snapshot — records
    /// with LSNs at or below this are no longer in the log. A follower
    /// positioned before this needs a snapshot transfer.
    pub fn wal_base_lsn(&self) -> u64 {
        self.wal.base_lsn()
    }

    /// The committed records with LSN strictly greater than `after` — see
    /// [`Wal::records_from`].
    pub fn records_from(&self, after: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.wal.records_from(after)
    }

    /// Bytes of committed WAL (header included) — tests use this to
    /// assert a checkpoint emptied the log.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Whether the WAL holds no records since the last checkpoint.
    pub fn wal_is_empty(&self) -> bool {
        self.wal.is_empty()
    }

    /// Whether any state was ever checkpointed or logged.
    pub fn is_fresh(&self) -> bool {
        self.generation == 0 && self.wal.is_empty() && !self.vfs.exists(&self.snapshot_path)
    }

    /// See [`Wal::set_sync`].
    pub fn set_sync(&mut self, sync: bool) {
        self.wal.set_sync(sync);
    }

    /// See [`Wal::sync_count`]. Resets when a checkpoint swaps in a fresh
    /// log handle.
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.sync_count()
    }

    fn check_poisoned(&self) -> Result<()> {
        if let Some(reason) = &self.poisoned {
            return Err(Error::Storage(format!(
                "database is poisoned ({reason}); reopen it to recover"
            )));
        }
        Ok(())
    }

    /// Whether this handle is poisoned (all writes refuse until reopen).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Why this handle is poisoned, if it is.
    pub fn poison_reason(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Commits one logical mutation record, returning its LSN. On return
    /// it is durable.
    ///
    /// A failed append **poisons** the handle: the frame may be partially
    /// on disk, and if the fsync failed the kernel may have dropped the
    /// dirty pages while keeping them visible in the page cache — so
    /// retrying the fsync and reporting success would be a lie (the
    /// fsyncgate failure mode). Every later write refuses until the
    /// database is reopened; reopening truncates any torn frame and
    /// recovers the last durable prefix.
    pub fn append(&mut self, record: &[u8]) -> Result<u64> {
        self.check_poisoned()?;
        match self.wal.append(record) {
            Ok(lsn) => Ok(lsn),
            Err(e) => {
                self.poisoned =
                    Some(format!("a WAL append failed and durability is unknown: {e}"));
                metrics().poison_events.inc();
                Err(e)
            }
        }
    }

    /// Commits a **batch** of logical mutation records under a single
    /// fsync ([`Wal::append_many`]), returning the LSN of the last one
    /// — the server's group-commit path. On return every record is
    /// durable; connections waiting on any record in the batch may be
    /// acknowledged.
    ///
    /// Failure poisons the handle exactly like [`Database::append`],
    /// and the ack discipline inverts: **no** record in the batch may
    /// be acknowledged, because the shared fsync vouched for none of
    /// them. (After a crash, recovery keeps whatever torn-tail-clean
    /// prefix of the batch reached disk — all of it unacknowledged, so
    /// no client was promised anything recovery drops.)
    pub fn append_many(&mut self, records: &[Vec<u8>]) -> Result<u64> {
        self.check_poisoned()?;
        match self.wal.append_many(records) {
            Ok(lsn) => Ok(lsn),
            Err(e) => {
                self.poisoned =
                    Some(format!("a WAL batch append failed and durability is unknown: {e}"));
                metrics().poison_events.inc();
                Err(e)
            }
        }
    }

    /// Checkpoints `state` as generation *g+1* and swaps in a fresh WAL
    /// of that generation. Writes **incrementally** (changed pages only,
    /// to the overlay file — see [`crate::delta`]) when a base snapshot
    /// exists and fewer than half its pages changed; otherwise rewrites
    /// the full base. Returns which kind ran.
    pub fn checkpoint(&mut self, state: &[u8]) -> Result<CheckpointKind> {
        self.checkpoint_inner(state, false)
    }

    /// As [`Database::checkpoint`], but always rewrites the full base
    /// snapshot (and drops any overlay) — the fallback path and the
    /// correctness oracle the incremental path is tested against.
    pub fn checkpoint_full(&mut self, state: &[u8]) -> Result<CheckpointKind> {
        self.checkpoint_inner(state, true)
    }

    fn checkpoint_inner(&mut self, state: &[u8], force_full: bool) -> Result<CheckpointKind> {
        self.check_poisoned()?;
        let began = Instant::now();
        let state_crc = crc32(state);
        // Zero mutations since the last checkpoint: nothing to write.
        // (A forced full checkpoint still runs — it is the fallback that
        // collapses an overlay into a fresh base on demand.)
        if !force_full && self.wal.is_empty() && self.state_crc == Some(state_crc) {
            metrics().ckpt_unchanged.inc();
            return Ok(CheckpointKind::Unchanged);
        }
        let next = self.generation.checked_add(1).ok_or_else(|| {
            Error::Storage("generation counter overflow".into())
        })?;
        let last_lsn = self.wal.last_lsn();

        // Diff against the base snapshot (when there is one) to decide
        // between an overlay write and a full rewrite.
        let changed: Option<Vec<(u32, &[u8])>> = match (&self.base, force_full) {
            (Some(base), false) => {
                let chunks = payload_chunks(state, base.page_size);
                let changed: Vec<(u32, &[u8])> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| base.page_crcs.get(*i) != Some(&page_crc(*i as u32, c)))
                    .map(|(i, c)| (i as u32, *c))
                    .collect();
                // more than half the pages changed: the overlay would be
                // most of a full snapshot — collapse to a fresh base
                if changed.len() * 2 < chunks.len().max(1) {
                    Some(changed)
                } else {
                    None
                }
            }
            _ => None,
        };

        let kind = match changed {
            Some(changed) => {
                let base = self.base.as_ref().expect("incremental requires a base"); // maybms-lint: allow(no-panic-in-prod) -- callers request an incremental checkpoint only when a base snapshot exists
                let total_pages = payload_chunks(state, base.page_size).len() as u32;
                let meta = DeltaMeta {
                    generation: next,
                    base_generation: base.generation,
                    last_lsn,
                    page_size: base.page_size,
                    payload_len: state.len() as u64,
                    payload_crc: crc32(state),
                    pages: changed.len() as u32,
                };
                write_delta_with_vfs(
                    &*self.vfs,
                    &delta_path_for(&self.snapshot_path),
                    &meta,
                    &changed,
                )?;
                CheckpointKind::Incremental {
                    changed_pages: changed.len() as u32,
                    total_pages,
                }
            }
            None => {
                write_snapshot_with_vfs(
                    &*self.vfs,
                    &self.snapshot_path,
                    next,
                    last_lsn,
                    state,
                    self.page_size,
                )?;
                // the overlay (if any) is now stale: its pages are inside
                // the new base; remove it (recovery would ignore it too)
                // maybms-lint: allow(poison-discipline) -- the new full base supersedes the overlay and open() ignores generation-mismatched deltas; failed cleanup is re-attempted at next open
                let _ = self.vfs.remove_file(&delta_path_for(&self.snapshot_path));
                let page_crcs = chunk_crcs(state, self.page_size);
                let pages = page_crcs.len() as u32;
                self.base = Some(BaseInfo {
                    generation: next,
                    page_size: self.page_size,
                    page_crcs,
                });
                CheckpointKind::Full { pages }
            }
        };

        // The snapshot is live from here on. If the WAL swap fails, the
        // open handle still points at the stale generation-`g` log, whose
        // records the next recovery will (correctly) discard — so poison
        // this handle rather than let appends vanish silently. Reopening
        // recovers cleanly: snapshot g+1 + stale WAL → fresh WAL.
        self.state_crc = Some(state_crc);
        match Wal::create_with_vfs(
            Arc::clone(&self.vfs),
            &wal_path_for(&self.snapshot_path),
            next,
            last_lsn,
        ) {
            Ok(wal) => {
                self.wal = wal;
                self.generation = next;
                let m = metrics();
                match kind {
                    CheckpointKind::Full { pages } => {
                        m.ckpt_full.inc();
                        m.ckpt_pages.add(pages as u64);
                    }
                    CheckpointKind::Incremental { changed_pages, .. } => {
                        m.ckpt_incremental.inc();
                        m.ckpt_pages.add(changed_pages as u64);
                    }
                    CheckpointKind::Unchanged => {}
                }
                m.ckpt_duration_us.observe_duration(began.elapsed());
                Ok(kind)
            }
            Err(e) => {
                self.poisoned = Some(format!(
                    "a checkpoint was interrupted after publishing snapshot \
                     generation {next} (the open WAL handle is stale): {e}"
                ));
                metrics().poison_events.inc();
                Err(Error::Storage(format!(
                    "checkpoint interrupted after publishing snapshot generation {next}: {e}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // tests corrupt bytes on disk and clean temp files directly
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-db-{}-{name}.maybms", std::process::id()));
        cleanup(&p);
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(wal_path_for(p));
        let _ = std::fs::remove_file(delta_path_for(p));
    }

    #[test]
    fn fresh_open_then_log_then_recover() {
        let path = tmp("fresh");
        {
            let r = Database::open(&path).unwrap();
            assert!(r.snapshot.is_none());
            assert!(r.records.is_empty());
            let mut db = r.db;
            assert!(db.is_fresh());
            assert_eq!(db.append(b"stmt 1").unwrap(), 1);
            assert_eq!(db.append(b"stmt 2").unwrap(), 2);
            assert_eq!(db.last_lsn(), 2);
        }
        let r = Database::open(&path).unwrap();
        assert!(r.snapshot.is_none());
        assert_eq!(r.records, vec![b"stmt 1".to_vec(), b"stmt 2".to_vec()]);
        assert_eq!(r.db.last_lsn(), 2);
        cleanup(&path);
    }

    #[test]
    fn checkpoint_compacts_and_bumps_generation() {
        let path = tmp("ckpt");
        {
            let mut db = Database::open(&path).unwrap().db;
            db.append(b"a").unwrap();
            let kind = db.checkpoint(b"state after a").unwrap();
            assert!(matches!(kind, CheckpointKind::Full { .. }), "first checkpoint is full");
            assert_eq!(db.generation(), 1);
            assert!(db.wal_is_empty());
            // LSNs continue across the checkpoint
            assert_eq!(db.wal_base_lsn(), 1);
            assert_eq!(db.append(b"b").unwrap(), 2);
        }
        let r = Database::open(&path).unwrap();
        assert_eq!(r.db.generation(), 1);
        assert_eq!(r.snapshot.as_deref(), Some(&b"state after a"[..]));
        assert_eq!(r.records, vec![b"b".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn incremental_checkpoint_writes_only_changed_pages() {
        let path = tmp("inc");
        let mut db = Database::open_with_page_size(&path, 64).unwrap().db;
        let state: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        assert!(matches!(db.checkpoint(&state).unwrap(), CheckpointKind::Full { .. }));
        let base_bytes = std::fs::read(&path).unwrap();

        // a point mutation: the second checkpoint must be incremental
        db.append(b"m").unwrap();
        let mut state2 = state.clone();
        state2[500] ^= 0xAA;
        let kind = db.checkpoint(&state2).unwrap();
        match kind {
            CheckpointKind::Incremental { changed_pages, total_pages } => {
                assert_eq!(changed_pages, 1, "one flipped byte is one page");
                assert!(total_pages > 10);
            }
            other => panic!("expected incremental, got {other:?}"),
        }
        assert_eq!(db.generation(), 2);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            base_bytes,
            "the base snapshot file must not be rewritten"
        );
        assert!(delta_path_for(&path).exists());

        // recovery loads base + overlay
        drop(db);
        let r = Database::open(&path).unwrap();
        assert_eq!(r.db.generation(), 2);
        assert_eq!(r.snapshot.as_deref(), Some(&state2[..]));

        // zero mutations since: the next checkpoint is a pure no-op —
        // nothing rewritten, generation untouched
        let mut db = r.db;
        let overlay_before = std::fs::read(delta_path_for(&path)).unwrap();
        let kind = db.checkpoint(&state2).unwrap();
        assert_eq!(kind, CheckpointKind::Unchanged);
        assert_eq!(db.generation(), 2);
        assert_eq!(std::fs::read(delta_path_for(&path)).unwrap(), overlay_before);
        // a forced full checkpoint still collapses the overlay
        assert!(matches!(db.checkpoint_full(&state2).unwrap(), CheckpointKind::Full { .. }));
        assert_eq!(db.generation(), 3);
        assert!(!delta_path_for(&path).exists());
        cleanup(&path);
    }

    #[test]
    fn widespread_change_falls_back_to_full() {
        let path = tmp("widespread");
        let mut db = Database::open_with_page_size(&path, 64).unwrap().db;
        let state: Vec<u8> = vec![1u8; 1000];
        db.checkpoint(&state).unwrap();
        // every byte changes: a full rewrite, and the old overlay (none
        // here) stays gone
        let state2: Vec<u8> = vec![2u8; 1000];
        assert!(matches!(db.checkpoint(&state2).unwrap(), CheckpointKind::Full { .. }));
        assert!(!delta_path_for(&path).exists());
        drop(db);
        let r = Database::open(&path).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&state2[..]));
        cleanup(&path);
    }

    #[test]
    fn checkpoint_full_collapses_overlay() {
        let path = tmp("collapse");
        let mut db = Database::open_with_page_size(&path, 64).unwrap().db;
        let state: Vec<u8> = (0..500u32).map(|i| (i % 13) as u8).collect();
        db.checkpoint(&state).unwrap();
        let mut state2 = state.clone();
        state2[10] = 99;
        assert!(matches!(
            db.checkpoint(&state2).unwrap(),
            CheckpointKind::Incremental { .. }
        ));
        assert!(delta_path_for(&path).exists());
        // forced full: overlay removed, base rewritten
        assert!(matches!(db.checkpoint_full(&state2).unwrap(), CheckpointKind::Full { .. }));
        assert!(!delta_path_for(&path).exists());
        drop(db);
        let r = Database::open(&path).unwrap();
        assert_eq!(r.db.generation(), 3);
        assert_eq!(r.snapshot.as_deref(), Some(&state2[..]));
        cleanup(&path);
    }

    #[test]
    fn stale_overlay_after_interrupted_full_checkpoint_is_discarded() {
        let path = tmp("stale-inc");
        let mut db = Database::open_with_page_size(&path, 64).unwrap().db;
        let state: Vec<u8> = vec![5u8; 300];
        db.checkpoint(&state).unwrap();
        let mut state2 = state.clone();
        state2[0] = 6;
        db.checkpoint(&state2).unwrap(); // incremental, overlay live
        let overlay_bytes = std::fs::read(delta_path_for(&path)).unwrap();
        let mut state3 = vec![7u8; 300];
        state3[1] = 8;
        db.checkpoint_full(&state3).unwrap(); // gen 3, overlay removed
        drop(db);
        // simulate the crash window: the gen-2 overlay resurfaces next to
        // the gen-3 base (full checkpoint died before the cleanup step)
        std::fs::write(delta_path_for(&path), &overlay_bytes).unwrap();
        let r = Database::open(&path).unwrap();
        assert_eq!(r.db.generation(), 3);
        assert_eq!(
            r.snapshot.as_deref(),
            Some(&state3[..]),
            "a stale overlay must never be applied to a newer base"
        );
        assert!(!delta_path_for(&path).exists(), "the artifact is cleaned up");
        cleanup(&path);
    }

    #[test]
    fn corrupt_overlay_fails_loudly() {
        let path = tmp("corrupt-inc");
        let mut db = Database::open_with_page_size(&path, 64).unwrap().db;
        let state: Vec<u8> = (0..500u32).map(|i| (i % 7) as u8).collect();
        db.checkpoint(&state).unwrap();
        let mut state2 = state.clone();
        state2[100] = 77;
        db.checkpoint(&state2).unwrap();
        drop(db);
        let dpath = delta_path_for(&path);
        let mut raw = std::fs::read(&dpath).unwrap();
        let at = raw.len() - 3; // inside the stored page
        raw[at] ^= 0x10;
        std::fs::write(&dpath, &raw).unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        cleanup(&path);
    }

    #[test]
    fn overlay_without_base_is_rejected() {
        let path = tmp("orphan-inc");
        std::fs::write(delta_path_for(&path), b"whatever").unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(err.to_string().contains("without its base"), "{err}");
        cleanup(&path);
    }

    #[test]
    fn stale_wal_after_interrupted_checkpoint_is_discarded() {
        let path = tmp("stale");
        // build gen-0 WAL with records, checkpoint, then put the old WAL
        // back — simulating a crash after the snapshot rename but before
        // the WAL swap
        let old_wal = {
            let mut db = Database::open(&path).unwrap().db;
            db.append(b"pre-checkpoint").unwrap();
            let bytes = std::fs::read(wal_path_for(&path)).unwrap();
            db.checkpoint(b"checkpointed state").unwrap();
            bytes
        };
        std::fs::write(wal_path_for(&path), &old_wal).unwrap();
        let r = Database::open(&path).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(&b"checkpointed state"[..]));
        assert!(
            r.records.is_empty(),
            "stale generation-0 records must not be replayed onto a generation-1 snapshot"
        );
        assert!(r.db.wal_is_empty());
        assert_eq!(
            r.db.wal_base_lsn(),
            1,
            "the fresh log must continue from the LSN the snapshot covers"
        );
        cleanup(&path);
    }

    #[test]
    fn read_snapshot_state_sees_base_plus_overlay() {
        let path = tmp("readstate");
        assert!(read_snapshot_state(&path).unwrap().is_none());
        let mut db = Database::open_with_page_size(&path, 64).unwrap().db;
        db.append(b"x").unwrap();
        db.checkpoint(b"base state").unwrap();
        let (generation, lsn, payload) = read_snapshot_state(&path).unwrap().unwrap();
        assert_eq!((generation, lsn, payload.as_slice()), (1, 1, &b"base state"[..]));
        db.append(b"y").unwrap();
        // one byte differs, but a single-page payload always collapses to
        // a full rewrite (the overlay would be the whole snapshot)
        db.checkpoint(b"base statf").unwrap();
        let (generation, lsn, payload) = read_snapshot_state(&path).unwrap().unwrap();
        assert_eq!((generation, lsn, payload.as_slice()), (2, 2, &b"base statf"[..]));
        cleanup(&path);
    }

    #[test]
    fn unreadable_wal_fails_loudly() {
        // A corrupt WAL *header* is not a checkpoint artifact — it may be
        // the only copy of committed data (e.g. a never-checkpointed
        // database), so open must error instead of silently resetting it.
        let path = tmp("unreadable");
        {
            let mut db = Database::open(&path).unwrap().db;
            db.append(b"the only copy of this commit").unwrap();
        }
        let wal = wal_path_for(&path);
        let mut raw = std::fs::read(&wal).unwrap();
        raw[10] ^= 0xFF; // corrupt the header
        std::fs::write(&wal, &raw).unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // same with a snapshot present: the log could hold post-checkpoint
        // commits, so it still must not be discarded
        cleanup(&path);
        {
            let mut db = Database::open(&path).unwrap().db;
            db.checkpoint(b"good state").unwrap();
            db.append(b"post-checkpoint commit").unwrap();
        }
        std::fs::write(&wal, b"garbage").unwrap();
        assert!(Database::open(&path).is_err());
        cleanup(&path);
    }
}
