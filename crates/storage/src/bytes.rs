//! Hand-rolled binary encoding primitives shared by every on-disk format
//! (and by the higher layers' payload codecs: the WSD snapshot codec in
//! `maybms-core` and the statement codec in `maybms-sql`).
//!
//! All integers are little-endian and fixed-width; strings are a `u32`
//! length followed by UTF-8 bytes; floats are stored as their exact IEEE
//! 754 bit pattern so round trips are bit-identical. No varints: the
//! formats here trade a few bytes for trivially auditable framing.

use maybms_relational::{Error, Result, Value};

/// An append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// An empty writer with `n` bytes preallocated.
    pub fn with_capacity(n: usize) -> Writer {
        Writer { buf: Vec::with_capacity(n) }
    }

    /// The encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Exact bit pattern: `get_f64` returns a bit-identical float.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes (no length prefix — pair with [`Reader::get_bytes`]).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Encodes a scalar [`Value`] with a one-byte tag.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_u8(*b as u8);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(3);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
        }
    }
}

/// A cursor over an encoded byte slice. Every read is bounds-checked and
/// fails with [`Error::Storage`] instead of panicking, so a corrupt or
/// truncated input surfaces as a recoverable error.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Storage(format!(
                "truncated input: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes"))) // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes"))) // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes"))) // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    }

    /// Reads the exact bit pattern written by [`Writer::put_f64`].
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed count, sanity-capped so a corrupt length
    /// cannot trigger a huge allocation before the data runs out.
    pub fn get_len(&mut self) -> Result<usize> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(Error::Storage(format!(
                "corrupt length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a string written by [`Writer::put_str`].
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_len()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| Error::Storage(format!("invalid UTF-8 string: {e}")))
    }

    /// Decodes a scalar [`Value`] written by [`Writer::put_value`].
    pub fn get_value(&mut self) -> Result<Value> {
        Ok(match self.get_u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.get_u8()? != 0),
            2 => Value::Int(self.get_i64()?),
            3 => Value::Float(self.get_f64()?),
            4 => Value::Str(self.get_str()?.into()),
            t => return Err(Error::Storage(format!("unknown value tag {t}"))),
        })
    }

    /// Fails unless the cursor consumed the whole input.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(Error::Storage(format!(
                "{} trailing bytes after decoded payload",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(0.1 + 0.2);
        w.put_str("héllo");
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn values_round_trip_bit_identically() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::str("möbius"),
        ];
        let mut w = Writer::new();
        for v in &vals {
            w.put_value(v);
        }
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        for v in &vals {
            let back = r.get_value().unwrap();
            match (v, &back) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, &back),
            }
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_bad_tags_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
        let mut r2 = Reader::new(&[9]);
        assert!(r2.get_value().is_err());
        // corrupt length larger than the buffer
        let mut w = Writer::new();
        w.put_u32(1000);
        let buf = w.into_inner();
        assert!(Reader::new(&buf).get_len().is_err());
        // trailing garbage detected
        let r3 = Reader::new(&[0]);
        assert!(r3.expect_end().is_err());
    }
}
