//! The snapshot file: an opaque payload (the encoded WSD) stored as
//! checksummed pages behind a versioned magic header.
//!
//! ```text
//! offset 0                                48
//! ┌─────────────────────────────────────┬──────────────────────────┐
//! │ preamble (raw, fixed 48 bytes)      │ pages (see crate::pager) │
//! └─────────────────────────────────────┴──────────────────────────┘
//!
//! preamble := magic "MAYBMS1\0" (8) | version u32 | page_size u32
//!           | generation u64 | last_lsn u64 | payload_len u64
//!           | payload_crc u32 | preamble_crc u32   (all little-endian)
//! ```
//!
//! `generation` is the checkpoint counter used to pair a snapshot with
//! its write-ahead log (see [`crate::db`]); `last_lsn` is the log
//! sequence number of the last record the snapshot captures, so recovery
//! (and a replication follower) can name the exact log position the
//! snapshot stands for. Snapshots are written
//! **atomically**: the new file goes to `<path>.tmp`, is fsynced, and is
//! then renamed over the old snapshot, so a crash mid-checkpoint leaves
//! either the old snapshot or the new one — never a hybrid.

use std::path::Path;

use maybms_relational::{Error, Result};

use crate::crc::crc32;
use crate::pager::{io_err, Pager, DEFAULT_PAGE_SIZE};
use crate::vfs::{std_vfs, OpenMode, Vfs};

const MAGIC: &[u8; 8] = b"MAYBMS1\0";
const VERSION: u32 = 2;

/// Raw preamble length before the paged region.
pub const PREAMBLE_LEN: usize = 48;

/// Metadata decoded from a snapshot preamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The checkpoint generation this snapshot represents.
    pub generation: u64,
    /// LSN of the last WAL record the snapshot captures.
    pub last_lsn: u64,
    /// Page size of the paged region.
    pub page_size: usize,
    /// Length of the stored payload.
    pub payload_len: u64,
}

fn encode_preamble(
    page_size: u32,
    generation: u64,
    last_lsn: u64,
    payload: &[u8],
) -> [u8; PREAMBLE_LEN] {
    let mut p = [0u8; PREAMBLE_LEN];
    p[0..8].copy_from_slice(MAGIC);
    p[8..12].copy_from_slice(&VERSION.to_le_bytes());
    p[12..16].copy_from_slice(&page_size.to_le_bytes());
    p[16..24].copy_from_slice(&generation.to_le_bytes());
    p[24..32].copy_from_slice(&last_lsn.to_le_bytes());
    p[32..40].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    p[40..44].copy_from_slice(&crc32(payload).to_le_bytes());
    let crc = crc32(&p[0..44]);
    p[44..48].copy_from_slice(&crc.to_le_bytes());
    p
}

fn decode_preamble(p: &[u8]) -> Result<(SnapshotMeta, u32)> {
    if p.len() < PREAMBLE_LEN {
        return Err(Error::Storage(format!(
            "snapshot too short: {} bytes, preamble needs {PREAMBLE_LEN}",
            p.len()
        )));
    }
    if &p[0..8] != MAGIC {
        return Err(Error::Storage("not a MayBMS snapshot (bad magic)".into()));
    }
    let stored = u32::from_le_bytes(p[44..48].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if crc32(&p[0..44]) != stored {
        return Err(Error::Storage("snapshot preamble checksum mismatch".into()));
    }
    let version = u32::from_le_bytes(p[8..12].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    if version != VERSION {
        return Err(Error::Storage(format!(
            "unsupported snapshot format version {version} (this build reads {VERSION})"
        )));
    }
    let page_size = u32::from_le_bytes(p[12..16].try_into().expect("4 bytes")) as usize; // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    let generation = u64::from_le_bytes(p[16..24].try_into().expect("8 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    let last_lsn = u64::from_le_bytes(p[24..32].try_into().expect("8 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    let payload_len = u64::from_le_bytes(p[32..40].try_into().expect("8 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    let payload_crc = u32::from_le_bytes(p[40..44].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
    Ok((SnapshotMeta { generation, last_lsn, page_size, payload_len }, payload_crc))
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".tmp");
    std::path::PathBuf::from(s)
}

/// Writes `payload` as a generation-`generation` snapshot at `path`,
/// covering the log through `last_lsn`: write-new to a temp sibling,
/// fsync, rename over the old file.
pub fn write_snapshot(path: &Path, generation: u64, last_lsn: u64, payload: &[u8]) -> Result<()> {
    write_snapshot_with_page_size(path, generation, last_lsn, payload, DEFAULT_PAGE_SIZE)
}

/// As [`write_snapshot`] with an explicit page size (tests use tiny pages
/// to exercise multi-page payloads cheaply).
pub fn write_snapshot_with_page_size(
    path: &Path,
    generation: u64,
    last_lsn: u64,
    payload: &[u8],
    page_size: usize,
) -> Result<()> {
    write_snapshot_with_vfs(&*std_vfs(), path, generation, last_lsn, payload, page_size)
}

/// As [`write_snapshot_with_page_size`], on an explicit [`Vfs`].
pub fn write_snapshot_with_vfs(
    vfs: &dyn Vfs,
    path: &Path,
    generation: u64,
    last_lsn: u64,
    payload: &[u8],
    page_size: usize,
) -> Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut file = vfs
            .open(&tmp, OpenMode::CreateTruncate)
            .map_err(|e| io_err("create snapshot temp file", e))?;
        file.write_all(&encode_preamble(page_size as u32, generation, last_lsn, payload))
            .map_err(|e| io_err("write snapshot preamble", e))?;
        let mut pager = Pager::new(file, PREAMBLE_LEN as u64, page_size)?;
        pager.write_payload(payload)?;
        pager.sync()?;
    }
    vfs.rename(&tmp, path).map_err(|e| io_err("publish snapshot (rename)", e))?;
    // a failed directory fsync means the rename may not survive power
    // loss — and a later WAL rotation that *does* survive would strand
    // commits. Propagate it: the checkpoint fails before the WAL moves,
    // which is a crash window recovery already handles.
    vfs.sync_parent_dir(path).map_err(|e| io_err("sync snapshot directory", e))?;
    Ok(())
}

/// Reads and fully verifies the snapshot at `path`: preamble magic,
/// version and checksum, every page checksum, and the whole-payload CRC.
pub fn read_snapshot(path: &Path) -> Result<(SnapshotMeta, Vec<u8>)> {
    read_snapshot_with_vfs(&*std_vfs(), path)
}

/// As [`read_snapshot`], on an explicit [`Vfs`].
pub fn read_snapshot_with_vfs(vfs: &dyn Vfs, path: &Path) -> Result<(SnapshotMeta, Vec<u8>)> {
    let mut file = vfs.open(path, OpenMode::Read).map_err(|e| io_err("open snapshot", e))?;
    let mut preamble = [0u8; PREAMBLE_LEN];
    file.read_exact(&mut preamble)
        .map_err(|e| io_err("read snapshot preamble", e))?;
    let (meta, payload_crc) = decode_preamble(&preamble)?;
    let mut pager = Pager::new(file, PREAMBLE_LEN as u64, meta.page_size)?;
    let payload = pager.read_payload(meta.payload_len)?;
    if crc32(&payload) != payload_crc {
        return Err(Error::Storage("snapshot payload checksum mismatch".into()));
    }
    Ok((meta, payload))
}

#[cfg(test)]
mod tests {
    // tests corrupt bytes on disk and clean temp files directly
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-snap-{}-{name}.maybms", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn round_trip_multi_page() {
        let path = tmp("roundtrip");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 253) as u8).collect();
        write_snapshot_with_page_size(&path, 3, 9, &payload, 64).unwrap();
        let (meta, back) = read_snapshot(&path).unwrap();
        assert_eq!(meta.generation, 3);
        assert_eq!(meta.last_lsn, 9);
        assert_eq!(meta.page_size, 64);
        assert_eq!(back, payload);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_payload_round_trips() {
        let path = tmp("empty");
        write_snapshot(&path, 1, 0, &[]).unwrap();
        let (meta, back) = read_snapshot(&path).unwrap();
        assert_eq!(meta.payload_len, 0);
        assert!(back.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let path = tmp("rewrite");
        write_snapshot_with_page_size(&path, 1, 1, b"old state", 32).unwrap();
        write_snapshot_with_page_size(&path, 2, 5, b"new state, longer than before", 32).unwrap();
        let (meta, back) = read_snapshot(&path).unwrap();
        assert_eq!(meta.generation, 2);
        assert_eq!(back, b"new state, longer than before");
        // no temp file left behind
        assert!(!tmp_sibling(&path).exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_rejected() {
        let path = tmp("corrupt");
        write_snapshot_with_page_size(&path, 1, 0, b"payload bytes here", 32).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // a payload byte inside the first page (after preamble + page header)
        let payload_at = PREAMBLE_LEN + crate::pager::PAGE_HEADER_LEN + 3;

        let mut flipped = pristine.clone();
        flipped[payload_at] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(read_snapshot(&path).is_err());

        // corrupt the preamble instead (version field)
        let mut bad_version = pristine.clone();
        bad_version[9] ^= 1;
        std::fs::write(&path, &bad_version).unwrap();
        assert!(read_snapshot(&path).is_err());

        // bad magic
        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // pristine bytes still read fine
        std::fs::write(&path, &pristine).unwrap();
        assert!(read_snapshot(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
