//! The virtual filesystem boundary: every byte the storage engine reads
//! or writes goes through a [`Vfs`].
//!
//! Production code uses [`StdVfs`] (a thin veneer over `std::fs`).
//! Tests use [`FaultVfs`], an in-memory filesystem with a *page-cache
//! model* — each file has **volatile** contents (what reads observe) and
//! **durable** contents (what survives [`FaultVfs::crash`], i.e. what a
//! successful fsync has promoted) — plus a deterministic, scripted
//! fault schedule (a list of [`FaultSpec`]s) that injects failures at
//! exact I/O operations:
//!
//! - fsync failure (and fsync **that lies**: reports success without
//!   making anything durable — the "fsyncgate" failure mode),
//! - short / torn writes cut at any byte offset,
//! - `ENOSPC` (disk full),
//! - rename failure,
//! - read bit-flips (silent media corruption).
//!
//! Faults are addressed by *operation kind* and *occurrence index*
//! ("fail the 3rd sync"), so a test can first run a workload cleanly,
//! read the per-kind operation counters, and then sweep a fault across
//! every occurrence — the style `tests/fault_injection.rs` uses.
//!
//! The `FaultVfs` durability model is deliberately strict but fair:
//!
//! - `write_all` / `set_len` touch only the volatile image;
//! - `sync_data` / `sync_all` promote the file's volatile image to its
//!   durable image;
//! - `rename` and `remove_file` are metadata operations and are modeled
//!   as journaled (immediately durable) — but a renamed file carries its
//!   *durable* image across the crash, so code that renames a temp file
//!   into place **without fsyncing it first** loses the file on crash.
//!   This validates the write → fsync → rename discipline instead of
//!   papering over its absence.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// How a file is opened through [`Vfs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only; the file must exist.
    Read,
    /// Read + write; the file must exist and is not truncated.
    ReadWrite,
    /// Read + write; created if missing, never truncated.
    ReadWriteCreate,
    /// Write-only; created if missing, truncated if present.
    CreateTruncate,
}

/// An open file handle behind the VFS boundary.
///
/// The methods mirror the `std::io` traits (plus `set_len` and the two
/// syncs) so `std::fs::File` implements this trait directly and call
/// sites keep their `io::Error` mapping.
pub trait VfsFile: Send + fmt::Debug {
    /// Moves the file cursor.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
    /// Fills `buf` exactly or fails.
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()>;
    /// Reads from the cursor to end-of-file.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;
    /// Writes all of `buf` at the cursor.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Truncates or extends the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Flushes file *data* to durable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes file data and metadata to durable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A filesystem: opens, reads, renames, and removes files by path.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Opens `path` in `mode`.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file (the `std::fs::read` convenience).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
    /// fsyncs the directory *containing* `path`, so a rename that
    /// published a file there survives power loss.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
    /// Resolves `path` to a canonical spelling, so two names for the
    /// same file (relative vs absolute, through symlinks) key shared
    /// state — the WAL commit-notification registry uses this. The
    /// default returns the path unchanged, which is exact for virtual
    /// filesystems whose paths are plain map keys.
    fn canonicalize(&self, path: &Path) -> PathBuf {
        path.to_path_buf()
    }
}

// ---------------------------------------------------------------------
// StdVfs: the production implementation over std::fs
// ---------------------------------------------------------------------

impl VfsFile for std::fs::File {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        io::Seek::seek(self, pos)
    }
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        io::Read::read_exact(self, buf)
    }
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        io::Read::read_to_end(self, buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }
}

/// The production [`Vfs`]: plain `std::fs` calls, no indirection beyond
/// one vtable hop per operation (measured ≈0 in `BENCH_e9.json`).
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

// the one place production code may touch std::fs: the boundary itself
#[allow(clippy::disallowed_methods)]
impl Vfs for StdVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        let mut opts = std::fs::OpenOptions::new();
        match mode {
            OpenMode::Read => {
                opts.read(true);
            }
            OpenMode::ReadWrite => {
                opts.read(true).write(true);
            }
            OpenMode::ReadWriteCreate => {
                opts.read(true).write(true).create(true).truncate(false);
            }
            OpenMode::CreateTruncate => {
                opts.write(true).create(true).truncate(true);
            }
        }
        Ok(Box::new(opts.open(path)?))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let dir = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        std::fs::File::open(dir)?.sync_all()
    }
    fn canonicalize(&self, path: &Path) -> PathBuf {
        // a path that cannot be resolved (not created yet) keys by its
        // raw form; commit notification is an optimization, the poll
        // fallback still covers it
        std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf())
    }
}

/// The shared production VFS handle.
pub fn std_vfs() -> Arc<dyn Vfs> {
    static STD: OnceLock<Arc<StdVfs>> = OnceLock::new();
    STD.get_or_init(|| Arc::new(StdVfs)).clone()
}

// ---------------------------------------------------------------------
// FaultVfs: deterministic in-memory filesystem with scripted faults
// ---------------------------------------------------------------------

/// The operation classes a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `read_exact`, `read_to_end`, and whole-file [`Vfs::read`].
    Read,
    /// `write_all` and `set_len`.
    Write,
    /// `sync_data`, `sync_all`, and [`Vfs::sync_parent_dir`].
    Sync,
    /// [`Vfs::rename`].
    Rename,
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an injected I/O error and has no effect.
    Error,
    /// The operation fails with "no space left on device" and has no
    /// effect (writes only, in practice).
    Enospc,
    /// A sync reports success **without** making anything durable — the
    /// fsyncgate lie. Only meaningful for [`FaultOp::Sync`].
    SyncLie,
    /// A write persists only its first `n` bytes, then fails — a torn
    /// write cut at any offset.
    ShortWrite(usize),
    /// A read succeeds but the returned bytes have one bit flipped
    /// (`bit` is taken modulo the number of bits read) — silent media
    /// corruption the checksums must catch.
    BitFlip(usize),
}

/// One scheduled fault: fire `fault` on the `nth` (0-based) occurrence
/// of operation class `op`, counted across all files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Operation class the fault targets.
    pub op: FaultOp,
    /// 0-based occurrence index within that class.
    pub nth: u64,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultSpec {
    /// Fail the `nth` sync with an I/O error.
    pub fn fail_sync(nth: u64) -> FaultSpec {
        FaultSpec { op: FaultOp::Sync, nth, fault: Fault::Error }
    }
    /// Make the `nth` sync lie: report success, persist nothing.
    pub fn lie_sync(nth: u64) -> FaultSpec {
        FaultSpec { op: FaultOp::Sync, nth, fault: Fault::SyncLie }
    }
    /// Fail the `nth` write with an I/O error (nothing written).
    pub fn fail_write(nth: u64) -> FaultSpec {
        FaultSpec { op: FaultOp::Write, nth, fault: Fault::Error }
    }
    /// Fail the `nth` write with `ENOSPC` (nothing written).
    pub fn enospc_write(nth: u64) -> FaultSpec {
        FaultSpec { op: FaultOp::Write, nth, fault: Fault::Enospc }
    }
    /// Tear the `nth` write after `keep` bytes.
    pub fn short_write(nth: u64, keep: usize) -> FaultSpec {
        FaultSpec { op: FaultOp::Write, nth, fault: Fault::ShortWrite(keep) }
    }
    /// Fail the `nth` rename.
    pub fn fail_rename(nth: u64) -> FaultSpec {
        FaultSpec { op: FaultOp::Rename, nth, fault: Fault::Error }
    }
    /// Fail the `nth` read with an I/O error.
    pub fn fail_read(nth: u64) -> FaultSpec {
        FaultSpec { op: FaultOp::Read, nth, fault: Fault::Error }
    }
    /// Flip bit `bit` (mod bits read) in the `nth` read's result.
    pub fn flip_read_bit(nth: u64, bit: usize) -> FaultSpec {
        FaultSpec { op: FaultOp::Read, nth, fault: Fault::BitFlip(bit) }
    }
}

#[derive(Debug, Default, Clone)]
struct FileImage {
    /// What a crash preserves: `None` until the first successful sync.
    durable: Option<Vec<u8>>,
    /// What reads and writes observe (the "page cache").
    volatile: Vec<u8>,
}

#[derive(Debug, Default)]
struct FaultState {
    files: HashMap<PathBuf, FileImage>,
    counters: HashMap<FaultOp, u64>,
    schedule: Vec<FaultSpec>,
    log: Vec<String>,
}

impl FaultState {
    /// Counts one `op` occurrence and returns the fault scheduled for it,
    /// if any, logging the hit.
    fn take_fault(&mut self, op: FaultOp, detail: &str) -> Option<Fault> {
        let n = self.counters.entry(op).or_insert(0);
        let this = *n;
        *n += 1;
        let hit = self.schedule.iter().find(|s| s.op == op && s.nth == this).map(|s| s.fault);
        if let Some(f) = hit {
            self.log.push(format!("{op:?}[{this}] -> {f:?} ({detail})"));
        }
        hit
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected fault: {kind}"))
}

fn enospc() -> io::Error {
    io::Error::other("injected fault: No space left on device")
}

fn flip_bit(buf: &mut [u8], bit: usize) {
    if !buf.is_empty() {
        let b = bit % (buf.len() * 8);
        buf[b / 8] ^= 1 << (b % 8);
    }
}

/// A deterministic in-memory filesystem with scripted fault injection.
///
/// Cloning shares the filesystem and schedule, so a test can keep a
/// handle while a `Database` owns another (via `Arc<dyn Vfs>`).
#[derive(Debug, Default, Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// An empty filesystem with no scheduled faults.
    pub fn new() -> FaultVfs {
        FaultVfs::default()
    }

    /// An empty filesystem with the given fault schedule.
    pub fn with_schedule(schedule: Vec<FaultSpec>) -> FaultVfs {
        let v = FaultVfs::new();
        v.state.lock().expect("fault vfs lock").schedule = schedule; // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        v
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault vfs lock") // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
    }

    /// Adds one fault to the schedule.
    pub fn push_fault(&self, spec: FaultSpec) {
        self.lock().schedule.push(spec);
    }

    /// Drops all scheduled faults (recovery phases run fault-free).
    pub fn clear_schedule(&self) {
        self.lock().schedule.clear();
    }

    /// Simulates power loss: every file reverts to its durable image;
    /// files never successfully synced disappear.
    pub fn crash(&self) {
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        st.files.retain(|_, img| img.durable.is_some());
        for img in st.files.values_mut() {
            img.volatile = img.durable.clone().expect("retained files are durable"); // maybms-lint: allow(no-panic-in-prod) -- the crash simulation retains only files that have a durable image
        }
        st.log.push("crash".into());
    }

    /// How many operations of class `op` have run so far.
    pub fn op_count(&self, op: FaultOp) -> u64 {
        self.lock().counters.get(&op).copied().unwrap_or(0)
    }

    /// The log of faults that actually fired (for CI artifacts).
    pub fn fault_log(&self) -> Vec<String> {
        self.lock().log.clone()
    }

    /// Installs a file as both volatile and durable content (test setup
    /// and bench image restore).
    pub fn install(&self, path: &Path, bytes: Vec<u8>) {
        self.lock()
            .files
            .insert(path.to_path_buf(), FileImage { durable: Some(bytes.clone()), volatile: bytes });
    }

    /// The durable image of `path`, if any.
    pub fn durable_contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).and_then(|img| img.durable.clone())
    }

    /// All files with a durable image, with their durable contents.
    pub fn durable_files(&self) -> Vec<(PathBuf, Vec<u8>)> {
        self.lock()
            .files
            .iter()
            .filter_map(|(p, img)| img.durable.clone().map(|d| (p.clone(), d)))
            .collect()
    }
}

/// An open handle into a [`FaultVfs`] file.
#[derive(Debug)]
pub struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
    pos: u64,
    readable: bool,
    writable: bool,
}

impl VfsFile for FaultFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let new = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::Current(d) => self.pos as i128 + d as i128,
            SeekFrom::End(d) => {
                let st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
                let len = st.files.get(&self.path).map(|i| i.volatile.len()).unwrap_or(0);
                len as i128 + d as i128
            }
        };
        if new < 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "seek before byte 0"));
        }
        self.pos = new as u64;
        Ok(self.pos)
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        if !self.readable {
            return Err(io::Error::new(io::ErrorKind::PermissionDenied, "not opened for read"));
        }
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault = st.take_fault(FaultOp::Read, &format!("read_exact {}", self.path.display()));
        if matches!(fault, Some(Fault::Error | Fault::Enospc | Fault::ShortWrite(_))) {
            return Err(injected("read error"));
        }
        let img = st
            .files
            .get(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        let start = self.pos as usize;
        let end = start + buf.len();
        if end > img.volatile.len() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "failed to fill whole buffer"));
        }
        buf.copy_from_slice(&img.volatile[start..end]);
        if let Some(Fault::BitFlip(bit)) = fault {
            flip_bit(buf, bit);
        }
        self.pos = end as u64;
        Ok(())
    }

    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        if !self.readable {
            return Err(io::Error::new(io::ErrorKind::PermissionDenied, "not opened for read"));
        }
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault = st.take_fault(FaultOp::Read, &format!("read_to_end {}", self.path.display()));
        if matches!(fault, Some(Fault::Error | Fault::Enospc | Fault::ShortWrite(_))) {
            return Err(injected("read error"));
        }
        let img = st
            .files
            .get(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        let start = (self.pos as usize).min(img.volatile.len());
        let mut tail = img.volatile[start..].to_vec();
        if let Some(Fault::BitFlip(bit)) = fault {
            flip_bit(&mut tail, bit);
        }
        let n = tail.len();
        buf.extend_from_slice(&tail);
        self.pos = img.volatile.len() as u64;
        Ok(n)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if !self.writable {
            return Err(io::Error::new(io::ErrorKind::PermissionDenied, "not opened for write"));
        }
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault = st.take_fault(
            FaultOp::Write,
            &format!("write_all {} bytes at {} in {}", buf.len(), self.pos, self.path.display()),
        );
        let keep = match fault {
            Some(Fault::Error) => return Err(injected("write error")),
            Some(Fault::Enospc) => return Err(enospc()),
            Some(Fault::ShortWrite(k)) => k.min(buf.len()),
            _ => buf.len(),
        };
        let img = st
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        let start = self.pos as usize;
        let end = start + keep;
        if img.volatile.len() < end {
            img.volatile.resize(end, 0);
        }
        img.volatile[start..end].copy_from_slice(&buf[..keep]);
        self.pos = end as u64;
        if matches!(fault, Some(Fault::ShortWrite(_))) {
            return Err(injected("short write"));
        }
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if !self.writable {
            return Err(io::Error::new(io::ErrorKind::PermissionDenied, "not opened for write"));
        }
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault = st
            .take_fault(FaultOp::Write, &format!("set_len {len} on {}", self.path.display()));
        match fault {
            Some(Fault::Error | Fault::ShortWrite(_)) => return Err(injected("set_len error")),
            Some(Fault::Enospc) => return Err(enospc()),
            _ => {}
        }
        let img = st
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        img.volatile.resize(len as usize, 0);
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.sync_all()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault = st.take_fault(FaultOp::Sync, &format!("sync {}", self.path.display()));
        match fault {
            Some(Fault::Error | Fault::ShortWrite(_)) => return Err(injected("fsync failed")),
            Some(Fault::Enospc) => return Err(enospc()),
            Some(Fault::SyncLie) => return Ok(()), // reports success, persists nothing
            _ => {}
        }
        let img = st
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed while open"))?;
        img.durable = Some(img.volatile.clone());
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        match mode {
            OpenMode::Read | OpenMode::ReadWrite => {
                if !st.files.contains_key(path) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such file: {}", path.display()),
                    ));
                }
            }
            OpenMode::ReadWriteCreate => {
                st.files.entry(path.to_path_buf()).or_default();
            }
            OpenMode::CreateTruncate => {
                // truncation is a data operation: volatile only, the
                // durable image survives until the next successful sync
                let img = st.files.entry(path.to_path_buf()).or_default();
                img.volatile.clear();
            }
        }
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
            pos: 0,
            readable: !matches!(mode, OpenMode::CreateTruncate),
            writable: !matches!(mode, OpenMode::Read),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault = st.take_fault(FaultOp::Read, &format!("read {}", path.display()));
        if matches!(fault, Some(Fault::Error | Fault::Enospc | Fault::ShortWrite(_))) {
            return Err(injected("read error"));
        }
        let img = st.files.get(path).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
        })?;
        let mut bytes = img.volatile.clone();
        if let Some(Fault::BitFlip(bit)) = fault {
            flip_bit(&mut bytes, bit);
        }
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault = st
            .take_fault(FaultOp::Rename, &format!("rename {} -> {}", from.display(), to.display()));
        if fault.is_some() {
            return Err(injected("rename failed"));
        }
        let img = st.files.remove(from).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", from.display()))
        })?;
        // metadata is journaled: the rename itself survives a crash, but
        // the file carries only its durable *data* image across one
        st.files.insert(to.to_path_buf(), img);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        st.files.remove(path).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
        })?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault vfs lock"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        let fault =
            st.take_fault(FaultOp::Sync, &format!("sync_parent_dir {}", path.display()));
        match fault {
            Some(Fault::Error | Fault::ShortWrite(_)) => Err(injected("dir fsync failed")),
            Some(Fault::Enospc) => Err(enospc()),
            // lie or no fault: renames are already durable in this model
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    // tests clean their own std temp files directly
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_and_sync(vfs: &FaultVfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = vfs.open(path, OpenMode::CreateTruncate)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    #[test]
    fn unsynced_data_is_lost_on_crash() {
        let vfs = FaultVfs::new();
        write_and_sync(&vfs, &p("a"), b"durable").unwrap();
        let mut f = vfs.open(&p("a"), OpenMode::ReadWrite).unwrap();
        f.seek(SeekFrom::End(0)).unwrap();
        f.write_all(b" plus tail").unwrap(); // never synced
        let mut g = vfs.open(&p("b"), OpenMode::CreateTruncate).unwrap();
        g.write_all(b"never synced at all").unwrap();
        assert_eq!(vfs.read(&p("a")).unwrap(), b"durable plus tail");

        vfs.crash();
        assert_eq!(vfs.read(&p("a")).unwrap(), b"durable");
        assert!(!vfs.exists(&p("b")));
    }

    #[test]
    fn failed_sync_persists_nothing() {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::fail_sync(0)]);
        let err = write_and_sync(&vfs, &p("a"), b"data").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        vfs.crash();
        assert!(!vfs.exists(&p("a")));
    }

    #[test]
    fn lying_sync_reports_ok_but_crash_loses_data() {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::lie_sync(0)]);
        write_and_sync(&vfs, &p("a"), b"data").unwrap(); // the lie: Ok(())
        vfs.crash();
        assert!(!vfs.exists(&p("a")));
        // a later honest sync does persist
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::lie_sync(0)]);
        write_and_sync(&vfs, &p("a"), b"data").unwrap();
        let mut f = vfs.open(&p("a"), OpenMode::ReadWrite).unwrap();
        f.sync_all().unwrap();
        vfs.crash();
        assert_eq!(vfs.read(&p("a")).unwrap(), b"data");
    }

    #[test]
    fn short_write_tears_at_offset() {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::short_write(0, 3)]);
        let mut f = vfs.open(&p("a"), OpenMode::CreateTruncate).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(vfs.read(&p("a")).unwrap(), b"abc");
    }

    #[test]
    fn enospc_write_has_no_effect() {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::enospc_write(1)]);
        let mut f = vfs.open(&p("a"), OpenMode::CreateTruncate).unwrap();
        f.write_all(b"first ").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert!(err.to_string().contains("No space left"), "{err}");
        assert_eq!(vfs.read(&p("a")).unwrap(), b"first ");
    }

    #[test]
    fn rename_fault_and_durability_model() {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::fail_rename(0)]);
        write_and_sync(&vfs, &p("t.tmp"), b"new").unwrap();
        assert!(vfs.rename(&p("t.tmp"), &p("t")).is_err());
        assert!(vfs.exists(&p("t.tmp")) && !vfs.exists(&p("t")));
        // second rename (no fault) succeeds and survives a crash
        vfs.rename(&p("t.tmp"), &p("t")).unwrap();
        vfs.crash();
        assert_eq!(vfs.read(&p("t")).unwrap(), b"new");

        // renaming an *unsynced* temp loses the file on crash — and
        // replaces the old target, as a real journaled rename would
        let vfs = FaultVfs::new();
        write_and_sync(&vfs, &p("t"), b"old").unwrap();
        let mut f = vfs.open(&p("t.tmp"), OpenMode::CreateTruncate).unwrap();
        f.write_all(b"new, never synced").unwrap();
        drop(f);
        vfs.rename(&p("t.tmp"), &p("t")).unwrap();
        vfs.crash();
        assert!(!vfs.exists(&p("t")));
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::flip_read_bit(0, 9)]);
        write_and_sync(&vfs, &p("a"), &[0u8, 0, 0]).unwrap();
        let got = vfs.read(&p("a")).unwrap();
        assert_eq!(got, vec![0u8, 2, 0]); // bit 9 = byte 1, bit 1
        // next read is clean
        assert_eq!(vfs.read(&p("a")).unwrap(), vec![0u8, 0, 0]);
    }

    #[test]
    fn counters_count_and_faults_log() {
        let vfs = FaultVfs::with_schedule(vec![FaultSpec::fail_write(2)]);
        let mut f = vfs.open(&p("a"), OpenMode::CreateTruncate).unwrap();
        f.write_all(b"one").unwrap();
        f.write_all(b"two").unwrap();
        assert!(f.write_all(b"three").is_err());
        f.write_all(b"four").unwrap();
        assert_eq!(vfs.op_count(FaultOp::Write), 4);
        assert_eq!(vfs.op_count(FaultOp::Sync), 0);
        let log = vfs.fault_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].contains("Write[2]"), "{log:?}");
    }

    #[test]
    fn create_truncate_keeps_durable_until_sync() {
        let vfs = FaultVfs::new();
        write_and_sync(&vfs, &p("a"), b"old old old").unwrap();
        let mut f = vfs.open(&p("a"), OpenMode::CreateTruncate).unwrap();
        f.write_all(b"new").unwrap();
        drop(f); // truncate + rewrite, never synced
        assert_eq!(vfs.read(&p("a")).unwrap(), b"new");
        vfs.crash();
        assert_eq!(vfs.read(&p("a")).unwrap(), b"old old old");
    }

    #[test]
    fn std_vfs_round_trips() {
        let vfs = std_vfs();
        let path = std::env::temp_dir()
            .join(format!("maybms-vfs-std-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.open(&path, OpenMode::CreateTruncate).unwrap();
        f.write_all(b"hello vfs").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert!(vfs.exists(&path));
        assert_eq!(vfs.read(&path).unwrap(), b"hello vfs");
        let mut f = vfs.open(&path, OpenMode::ReadWrite).unwrap();
        f.seek(SeekFrom::Start(6)).unwrap();
        let mut buf = [0u8; 3];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"vfs");
        f.set_len(5).unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        vfs.sync_parent_dir(&path).unwrap();
        vfs.remove_file(&path).unwrap();
        assert!(!vfs.exists(&path));
    }
}
