//! The pager: fixed-size, checksummed pages over a file.
//!
//! A paged region of a file is a sequence of `page_size`-byte pages
//! starting at a base offset. Each page is:
//!
//! ```text
//! ┌──────────┬──────────────┬────────────────────────────┬─────────┐
//! │ crc  u32 │ payload_len  │ payload (≤ page_size − 8)  │ zero    │
//! │          │ u32          │                            │ padding │
//! └──────────┴──────────────┴────────────────────────────┴─────────┘
//! ```
//!
//! The CRC-32 covers the page *index* (little-endian `u32`) followed by
//! the payload bytes, so a page that is bit-rotted, torn, or transplanted
//! from another position in the file fails verification. Large payloads
//! are chunked across consecutive pages by [`Pager::write_payload`] /
//! [`Pager::read_payload`].

use std::io::SeekFrom;
use std::sync::{Arc, OnceLock};

use maybms_obs::Counter;
use maybms_relational::{Error, Result};

use crate::crc::{crc32, crc32_seeded};
use crate::vfs::VfsFile;

/// Process-wide pager counters, resolved once.
struct PagerMetrics {
    page_reads: Arc<Counter>,
    crc_failures: Arc<Counter>,
}

fn metrics() -> &'static PagerMetrics {
    static M: OnceLock<PagerMetrics> = OnceLock::new();
    M.get_or_init(|| PagerMetrics {
        page_reads: maybms_obs::counter("pager.page_reads"),
        crc_failures: maybms_obs::counter("pager.crc_failures"),
    })
}

/// Bytes of per-page framing: CRC-32 plus the payload length.
pub const PAGE_HEADER_LEN: usize = 8;

/// Default page size for snapshot files.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

pub(crate) fn io_err(ctx: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("{ctx}: {e}"))
}

/// The checksum a page with logical index `idx` and payload `payload`
/// carries: CRC-32 over the little-endian index followed by the payload.
/// Exposed so the incremental-checkpoint diff ([`crate::delta`]) can
/// compare page contents by checksum without materializing page frames.
pub fn page_crc(idx: u32, payload: &[u8]) -> u32 {
    crc32_seeded(crc32(&idx.to_le_bytes()), payload)
}

/// Reads and writes checksummed fixed-size pages of one open file.
#[derive(Debug)]
pub struct Pager {
    file: Box<dyn VfsFile>,
    base: u64,
    page_size: usize,
}

impl Pager {
    /// Wraps an open [`VfsFile`] whose paged region starts at `base`.
    pub fn new(file: Box<dyn VfsFile>, base: u64, page_size: usize) -> Result<Pager> {
        if page_size <= PAGE_HEADER_LEN {
            return Err(Error::Storage(format!(
                "page size {page_size} does not fit the {PAGE_HEADER_LEN}-byte page header"
            )));
        }
        Ok(Pager { file, base, page_size })
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Payload bytes one page can carry.
    pub fn capacity(&self) -> usize {
        self.page_size - PAGE_HEADER_LEN
    }

    /// Pages needed for a payload of `len` bytes (at least one).
    pub fn pages_for(&self, len: usize) -> u32 {
        (len.max(1)).div_ceil(self.capacity()) as u32
    }

    fn offset_of(&self, idx: u32) -> u64 {
        self.base + idx as u64 * self.page_size as u64
    }

    /// Writes one page. The payload must fit in [`Pager::capacity`].
    pub fn write_page(&mut self, idx: u32, payload: &[u8]) -> Result<()> {
        self.write_page_as(idx, idx, payload)
    }

    /// Writes a page at file position `slot` whose checksum is seeded
    /// with the *logical* index `idx`. Incremental snapshots store a
    /// sparse subset of a base snapshot's pages densely (slot 0, 1, 2, …)
    /// while each page keeps the checksum of its real position, so a page
    /// transplanted between files still fails verification.
    pub fn write_page_as(&mut self, slot: u32, idx: u32, payload: &[u8]) -> Result<()> {
        if payload.len() > self.capacity() {
            return Err(Error::Storage(format!(
                "payload of {} bytes exceeds page capacity {}",
                payload.len(),
                self.capacity()
            )));
        }
        let mut page = vec![0u8; self.page_size];
        let crc = page_crc(idx, payload);
        page[0..4].copy_from_slice(&crc.to_le_bytes());
        page[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        page[PAGE_HEADER_LEN..PAGE_HEADER_LEN + payload.len()].copy_from_slice(payload);
        self.file
            .seek(SeekFrom::Start(self.offset_of(slot)))
            .map_err(|e| io_err("seek to page", e))?;
        self.file.write_all(&page).map_err(|e| io_err("write page", e))
    }

    /// Reads and verifies one page, returning its payload.
    pub fn read_page(&mut self, idx: u32) -> Result<Vec<u8>> {
        self.read_page_as(idx, idx)
    }

    /// Reads the page at file position `slot`, verifying it against the
    /// *logical* index `idx` (see [`Pager::write_page_as`]).
    pub fn read_page_as(&mut self, slot: u32, idx: u32) -> Result<Vec<u8>> {
        metrics().page_reads.inc();
        self.file
            .seek(SeekFrom::Start(self.offset_of(slot)))
            .map_err(|e| io_err("seek to page", e))?;
        let mut page = vec![0u8; self.page_size];
        self.file
            .read_exact(&mut page)
            .map_err(|e| io_err(&format!("read page {idx}"), e))?;
        let stored_crc = u32::from_le_bytes(page[0..4].try_into().expect("4 bytes")); // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        let len = u32::from_le_bytes(page[4..8].try_into().expect("4 bytes")) as usize; // maybms-lint: allow(no-panic-in-prod) -- the index range fixes the slice length, so try_into cannot fail
        if len > self.capacity() {
            return Err(Error::Storage(format!(
                "page {idx} declares {len} payload bytes, capacity is {}",
                self.capacity()
            )));
        }
        let payload = &page[PAGE_HEADER_LEN..PAGE_HEADER_LEN + len];
        let crc = page_crc(idx, payload);
        if crc != stored_crc {
            metrics().crc_failures.inc();
            return Err(Error::Storage(format!(
                "checksum mismatch on page {idx}: stored {stored_crc:#010x}, computed {crc:#010x}"
            )));
        }
        Ok(payload.to_vec())
    }

    /// Chunks `payload` across consecutive pages starting at page 0 and
    /// returns the number of pages written.
    pub fn write_payload(&mut self, payload: &[u8]) -> Result<u32> {
        let cap = self.capacity();
        let mut idx = 0u32;
        let mut rest = payload;
        loop {
            let take = rest.len().min(cap);
            self.write_page(idx, &rest[..take])?;
            rest = &rest[take..];
            idx += 1;
            if rest.is_empty() {
                return Ok(idx);
            }
        }
    }

    /// Reassembles a payload of exactly `len` bytes written by
    /// [`Pager::write_payload`], verifying every page checksum.
    pub fn read_payload(&mut self, len: u64) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len as usize);
        let mut idx = 0u32;
        while (out.len() as u64) < len || (len == 0 && idx == 0) {
            let page = self.read_page(idx)?;
            if page.is_empty() && len > 0 {
                return Err(Error::Storage(format!(
                    "payload ends early: page {idx} is empty with {} of {len} bytes read",
                    out.len()
                )));
            }
            out.extend_from_slice(&page);
            idx += 1;
        }
        if out.len() as u64 != len {
            return Err(Error::Storage(format!(
                "payload length mismatch: read {} bytes, header declares {len}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// fsyncs the underlying file.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all().map_err(|e| io_err("sync", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{std_vfs, OpenMode};
    use std::path::{Path, PathBuf};

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir()
            .join(format!("maybms-pager-{}-{name}", std::process::id()));
        let _ = std_vfs().remove_file(&p);
        p
    }

    fn open_rw(p: &Path) -> Box<dyn VfsFile> {
        std_vfs().open(p, OpenMode::ReadWriteCreate).unwrap()
    }

    fn rewrite(p: &Path, bytes: &[u8]) {
        let mut f = std_vfs().open(p, OpenMode::CreateTruncate).unwrap();
        f.write_all(bytes).unwrap();
    }

    #[test]
    fn single_page_round_trip() {
        let path = tmp("single");
        let mut pager = Pager::new(open_rw(&path), 0, 64).unwrap();
        pager.write_page(0, b"hello").unwrap();
        pager.write_page(1, b"world").unwrap();
        assert_eq!(pager.read_page(0).unwrap(), b"hello");
        assert_eq!(pager.read_page(1).unwrap(), b"world");
        let _ = std_vfs().remove_file(&path);
    }

    #[test]
    fn multi_page_payload_round_trip() {
        let path = tmp("multi");
        let mut pager = Pager::new(open_rw(&path), 16, 32).unwrap();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let pages = pager.write_payload(&payload).unwrap();
        assert_eq!(pages, pager.pages_for(payload.len()));
        assert_eq!(pager.read_payload(payload.len() as u64).unwrap(), payload);
        let _ = std_vfs().remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt");
        {
            let mut pager = Pager::new(open_rw(&path), 0, 64).unwrap();
            pager.write_page(0, b"precious data").unwrap();
        }
        // flip one payload byte on disk
        let mut raw = std_vfs().read(&path).unwrap();
        raw[PAGE_HEADER_LEN + 2] ^= 0xFF;
        rewrite(&path, &raw);
        let mut pager = Pager::new(open_rw(&path), 0, 64).unwrap();
        let err = pager.read_page(0).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = std_vfs().remove_file(&path);
    }

    #[test]
    fn transplanted_pages_are_detected() {
        let path = tmp("swap");
        {
            let mut pager = Pager::new(open_rw(&path), 0, 32).unwrap();
            pager.write_page(0, b"page zero").unwrap();
            pager.write_page(1, b"page one!").unwrap();
        }
        // swap the two pages wholesale: checksums are internally intact,
        // but each now sits at the wrong index
        let mut raw = std_vfs().read(&path).unwrap();
        let (a, b) = raw.split_at_mut(32);
        a.swap_with_slice(&mut b[..32]);
        rewrite(&path, &raw);
        let mut pager = Pager::new(open_rw(&path), 0, 32).unwrap();
        assert!(pager.read_page(0).is_err());
        assert!(pager.read_page(1).is_err());
        let _ = std_vfs().remove_file(&path);
    }

    #[test]
    fn oversized_payload_rejected() {
        let path = tmp("oversize");
        let mut pager = Pager::new(open_rw(&path), 0, 16).unwrap();
        assert!(pager.write_page(0, &[0u8; 9]).is_err());
        assert!(Pager::new(open_rw(&path), 0, 8).is_err());
        let _ = std_vfs().remove_file(&path);
    }
}
