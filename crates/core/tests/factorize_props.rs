//! Property tests for component factorization: splits must be lossless and
//! true products must actually split.

use proptest::prelude::*;

use maybms_core::factorize::factorize_component;
use maybms_core::{Cell, CompRow, Component, Field, Tid};
use maybms_relational::Value;

fn f(i: u32) -> Field {
    Field::attr(Tid(1), i)
}

/// A random single-column component with 1–3 weighted rows.
fn arb_factor(col: u32) -> impl Strategy<Value = Component> {
    prop::collection::vec((0i64..4, 1u32..5), 1..4).prop_map(move |alts| {
        let total: u32 = alts.iter().map(|(_, w)| w).sum();
        let mut rows: Vec<CompRow> = Vec::new();
        for (v, w) in alts {
            let cell = Cell::Val(Value::Int(v));
            let p = w as f64 / total as f64;
            match rows.iter_mut().find(|r| r.cells[0] == cell) {
                Some(r) => r.p += p,
                None => rows.push(CompRow::new(vec![cell], p)),
            }
        }
        Component::new(vec![f(col)], rows)
    })
}

/// A random correlated 2-column component (generic joint distribution).
fn arb_correlated() -> impl Strategy<Value = Component> {
    prop::collection::vec(((0i64..3, 0i64..3), 1u32..5), 1..5).prop_map(|cells| {
        let total: u32 = cells.iter().map(|(_, w)| w).sum();
        let mut rows: Vec<CompRow> = Vec::new();
        for ((a, b), w) in cells {
            let cs = vec![Cell::Val(Value::Int(a)), Cell::Val(Value::Int(b))];
            let p = w as f64 / total as f64;
            match rows.iter_mut().find(|r| r.cells == cs) {
                Some(r) => r.p += p,
                None => rows.push(CompRow::new(cs, p)),
            }
        }
        Component::new(vec![f(0), f(1)], rows)
    })
}

/// Joint distribution of a component over its full width.
fn joint(c: &Component) -> Vec<(Vec<Cell>, f64)> {
    let mut out: Vec<(Vec<Cell>, f64)> = Vec::new();
    for r in c.rows() {
        match out.iter_mut().find(|(cells, _)| *cells == r.cells) {
            Some((_, p)) => *p += r.p,
            None => out.push((r.cells.clone(), r.p)),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Reconstructs the product of factor components in the original column
/// order described by `blocks`.
fn reconstruct(blocks: &[Vec<usize>], parts: &[Component], width: usize) -> Vec<(Vec<Cell>, f64)> {
    // odometer over parts' rows
    let mut out: Vec<(Vec<Cell>, f64)> = Vec::new();
    let widths: Vec<usize> = parts.iter().map(Component::num_rows).collect();
    let mut idx = vec![0usize; parts.len()];
    loop {
        let mut cells = vec![Cell::Bottom; width];
        let mut p = 1.0;
        for (k, part) in parts.iter().enumerate() {
            let row = &part.rows()[idx[k]];
            p *= row.p;
            for (pos, &col) in blocks[k].iter().enumerate() {
                cells[col] = row.cells[pos].clone();
            }
        }
        match out.iter_mut().find(|(cs, _)| *cs == cells) {
            Some((_, q)) => *q += p,
            None => out.push((cells, p)),
        }
        let mut k = parts.len();
        loop {
            if k == 0 {
                out.sort_by(|a, b| a.0.cmp(&b.0));
                return out;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < widths[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

fn assert_lossless(c: &Component) {
    let (blocks, parts) = factorize_component(c, 1e-9);
    for p in &parts {
        p.validate().expect("factors are valid components");
    }
    let original = joint(c);
    let rebuilt = reconstruct(&blocks, &parts, c.num_fields());
    assert_eq!(original.len(), rebuilt.len(), "support must match");
    for ((ca, pa), (cb, pb)) in original.iter().zip(&rebuilt) {
        assert_eq!(ca, cb);
        assert!((pa - pb).abs() < 1e-9, "probability drift {pa} vs {pb}");
    }
}

proptest! {
    /// Factorizing any product of independent columns is lossless and
    /// recovers (at least) the factors.
    #[test]
    fn product_components_split_losslessly(
        a in arb_factor(0),
        b in arb_factor(1),
        c in arb_factor(2),
    ) {
        let prod = a.product(&b).product(&c);
        let (blocks, parts) = factorize_component(&prod, 1e-9);
        // distinct-valued factors with >1 row must separate
        let nontrivial =
            [&a, &b, &c].iter().filter(|x| x.num_rows() > 1).count();
        prop_assert!(parts.len() >= nontrivial.max(1) || nontrivial <= 1,
            "expected ≥{nontrivial} parts, got {} (blocks {blocks:?})", parts.len());
        assert_lossless(&prod);
    }

    /// Factorization of arbitrary correlated components never changes the
    /// joint distribution (it may refuse to split — that is fine).
    #[test]
    fn arbitrary_components_factor_losslessly(c in arb_correlated()) {
        assert_lossless(&c);
    }

    /// A correlated pair glued to an independent factor splits the factor
    /// off but keeps the pair together.
    #[test]
    fn correlation_is_kept_together(ind in arb_factor(2)) {
        let corr = Component::new(
            vec![f(0), f(1)],
            vec![
                CompRow::new(vec![Cell::Val(Value::Int(0)), Cell::Val(Value::Int(0))], 0.5),
                CompRow::new(vec![Cell::Val(Value::Int(1)), Cell::Val(Value::Int(1))], 0.5),
            ],
        );
        let prod = corr.product(&ind);
        let (blocks, _) = factorize_component(&prod, 1e-9);
        // columns 0 and 1 always share a block
        let block_of = |col: usize| blocks.iter().position(|b| b.contains(&col)).expect("col");
        prop_assert_eq!(block_of(0), block_of(1));
        assert_lossless(&prod);
    }
}
