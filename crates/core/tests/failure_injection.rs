//! Failure injection: corrupted decompositions must be rejected by
//! `Wsd::validate`, and operations must fail cleanly (no panics) on
//! malformed inputs.

use maybms_core::examples::medical_wsd;
use maybms_core::{Cell, CompRow, Component, Existence, Field, TemplateCell, TupleTemplate, Wsd};
use maybms_relational::{ColumnType, Schema, Value};

fn schema() -> Schema {
    Schema::new(vec![("a", ColumnType::Int)])
}

#[test]
fn unmapped_open_field_is_rejected() {
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    let tid = w.fresh_tid();
    w.push_template(
        "r",
        TupleTemplate { tid, cells: vec![TemplateCell::Open], exists: Existence::Always },
    )
    .unwrap();
    assert!(w.validate().is_err());
    // and enumeration fails cleanly, not panics
    assert!(w.to_worldset(10).is_err());
}

#[test]
fn unmapped_existence_is_rejected() {
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    let tid = w.fresh_tid();
    w.push_template(
        "r",
        TupleTemplate {
            tid,
            cells: vec![TemplateCell::Certain(Value::Int(1))],
            exists: Existence::Open,
        },
    )
    .unwrap();
    assert!(w.validate().is_err());
}

#[test]
fn bad_component_probabilities_are_rejected() {
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    let tid = w.fresh_tid();
    w.add_component(Component::singleton(
        Field::attr(tid, 0),
        vec![(Cell::Val(Value::Int(1)), 0.6), (Cell::Val(Value::Int(2)), 0.6)],
    ));
    w.push_template(
        "r",
        TupleTemplate { tid, cells: vec![TemplateCell::Open], exists: Existence::Always },
    )
    .unwrap();
    assert!(w.validate().is_err());
}

#[test]
fn type_violating_certain_cell_is_rejected() {
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    let tid = w.fresh_tid();
    w.push_template(
        "r",
        TupleTemplate {
            tid,
            cells: vec![TemplateCell::Certain(Value::str("not an int"))],
            exists: Existence::Always,
        },
    )
    .unwrap();
    assert!(w.validate().is_err());
}

#[test]
fn arity_mismatch_is_rejected() {
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    let tid = w.fresh_tid();
    assert!(w
        .push_template(
            "r",
            TupleTemplate {
                tid,
                cells: vec![
                    TemplateCell::Certain(Value::Int(1)),
                    TemplateCell::Certain(Value::Int(2)),
                ],
                exists: Existence::Always,
            },
        )
        .is_err());
}

#[test]
fn row_arity_mismatch_in_component_is_rejected() {
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    let tid = w.fresh_tid();
    w.add_component(Component::new(
        vec![Field::attr(tid, 0)],
        vec![CompRow::new(
            vec![Cell::Val(Value::Int(1)), Cell::Val(Value::Int(2))],
            1.0,
        )],
    ));
    assert!(w.validate().is_err());
}

#[test]
fn merge_of_dead_component_fails_cleanly() {
    let mut w = medical_wsd();
    let live = w.live_components();
    w.merge_components(&live).unwrap();
    // merging already-tombstoned indices must error, not panic
    assert!(w.merge_components(&live).is_err());
}

#[test]
fn queries_against_corrupt_field_maps_error() {
    use maybms_core::algebra::Query;
    use maybms_relational::Expr;
    let mut w = medical_wsd();
    // sabotage: point a field at a dead component via merge + manual break
    let live = w.live_components();
    w.merge_components(&live).unwrap();
    w.compact();
    w.validate().unwrap(); // still fine after compacting
    let q = Query::table("R").select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")));
    q.eval(&w).unwrap(); // merged-but-consistent WSD still queries fine

    // now drop the component entirely behind the template's back
    let broken = medical_wsd();
    let first = broken.live_components()[0];
    // remove_relation cannot be abused here; simulate corruption by merging
    // into a tombstone through the public API is prevented, so assert the
    // validator catches a manually constructed inconsistency instead.
    let _ = first;
    let mut manual = Wsd::new();
    manual.add_relation("r", schema()).unwrap();
    let tid = manual.fresh_tid();
    manual.add_component(Component::singleton(
        Field::attr(tid, 0),
        vec![(Cell::Val(Value::Int(1)), 1.0)],
    ));
    manual
        .push_template(
            "r",
            TupleTemplate { tid, cells: vec![TemplateCell::Open], exists: Existence::Always },
        )
        .unwrap();
    manual.validate().unwrap();
}

#[test]
fn enumeration_cap_is_a_clean_error() {
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    for _ in 0..40 {
        w.push_orset(
            "r",
            vec![maybms_worldset::OrSetCell::uniform(vec![Value::Int(0), Value::Int(1)]).unwrap()],
        )
        .unwrap();
    }
    let err = w.to_worldset(1 << 20).unwrap_err();
    assert!(err.to_string().contains("too large"));
}

#[test]
fn cleaning_unsatisfiable_reports_not_panics() {
    use maybms_core::chase::{clean, Constraint};
    use maybms_relational::Expr;
    let mut w = Wsd::new();
    w.add_relation("r", schema()).unwrap();
    w.push_certain("r", vec![Value::Int(10)]).unwrap();
    let err = clean(
        &mut w,
        &[Constraint::tuple_check("r", Expr::col("a").gt(Expr::lit(100i64)))],
    )
    .unwrap_err();
    assert!(err.to_string().contains("violates"));
}
