//! Seeded interleaving exploration for the worker pool.
//!
//! `exec::pool::fuzz` injects a deterministic pseudo-random choice of
//! nothing / yield / short-sleep at every scheduling decision point
//! (push, pop, steal, chunk claim, latch signal), keyed by a global
//! seed. Sweeping seeds makes the pool's races — shutdown vs. steal,
//! latch vs. panic propagation, nested and concurrent maps — play out
//! under many distinct thread orderings, *reproducibly*: a failing seed
//! replays the same decision sequence. The sanitizer CI jobs run this
//! same sweep so TSan/ASan observe more than one execution.
//!
//! The fuzz seed is process-global, so everything lives in one `#[test]`
//! to keep the libtest harness from racing two sweeps.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use maybms_core::exec::pool::{fuzz, WorkerPool};

/// Every scenario the pool's unit tests cover, replayed under one seed.
fn scenarios(seed: u64) {
    // map correctness: in input order, bit-identical at any worker count
    let items: Vec<usize> = (0..300).collect();
    let expect: Vec<usize> = items.iter().map(|x| x * 7 + 1).collect();
    for workers in [2, 3, 4] {
        let pool = WorkerPool::new(workers);
        let got = pool.map(&items, |_, &x| x * 7 + 1);
        assert_eq!(got, expect, "seed {seed}, workers {workers}");
        // dropping the pool here exercises shutdown vs. idle workers
    }

    // map_mut: disjoint exclusive access per element
    let pool = WorkerPool::new(4);
    let mut vals: Vec<u64> = (0..257).collect();
    let flags = pool.map_mut(&mut vals, |_, x| {
        *x += 1;
        *x % 2 == 0
    });
    assert_eq!(vals[256], 257, "seed {seed}");
    assert!(!flags[0], "seed {seed}");

    // panic propagation, then reuse of the same pool
    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.map(&items, |_, &x| {
            if x == 13 {
                panic!("boom");
            }
            x
        })
    }));
    assert!(r.is_err(), "seed {seed}: worker panic must propagate");
    let ok = pool.map(&items, |_, &x| x + 1);
    assert_eq!(ok[299], 300, "seed {seed}: pool must survive a panic");

    // concurrent maps from several threads against one shared pool
    let shared = Arc::new(WorkerPool::new(3));
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let p = Arc::clone(&shared);
        joins.push(std::thread::spawn(move || {
            let items: Vec<u64> = (0..200).collect();
            let out = p.map(&items, |_, &x| x + t);
            assert_eq!(out[199], 199 + t);
        }));
    }
    for j in joins {
        j.join().expect("no deadlock, no panic");
    }
    // dropping `shared` here races close() against the last pop_blocking
}

#[test]
fn seeded_schedule_sweep() {
    for seed in 1..=16u64 {
        fuzz::set_seed(seed);
        scenarios(seed);
    }
    fuzz::clear();

    // and once with the hook off, as a control
    scenarios(0);
}
