//! Property tests for the from-scratch BigUint against u128 arithmetic.

use proptest::prelude::*;

use maybms_core::BigUint;

fn big(v: u128) -> BigUint {
    BigUint::from_u64((v >> 64) as u64)
        .mul(&BigUint::pow(2, 64))
        .add(&BigUint::from_u64(v as u64))
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = big(a as u128 + b as u128);
        prop_assert_eq!(BigUint::from_u64(a).add(&BigUint::from_u64(b)), sum);
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = big(a as u128 * b as u128);
        prop_assert_eq!(BigUint::from_u64(a).mul(&BigUint::from_u64(b)), prod.clone());
        prop_assert_eq!(BigUint::from_u64(a).mul_u64(b), prod);
    }

    #[test]
    fn decimal_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let v = a as u128 * b as u128;
        prop_assert_eq!(big(v).to_decimal(), v.to_string());
        prop_assert_eq!(big(v).decimal_digits(), v.to_string().len());
    }

    #[test]
    fn ordering_matches_u128(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), d in any::<u64>()) {
        let (x, y) = (a as u128 * b as u128, c as u128 * d as u128);
        prop_assert_eq!(big(x).cmp(&big(y)), x.cmp(&y));
    }

    #[test]
    fn mul_is_commutative_and_associative(a in any::<u64>(), b in any::<u64>(), c in 0u64..1000) {
        let (x, y, z) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        prop_assert_eq!(x.mul(&y).mul(&z), x.mul(&y.mul(&z)));
    }

    #[test]
    fn log2_tracks_pow(exp in 1u64..5000) {
        let p = BigUint::pow(2, exp);
        prop_assert!((p.log2() - exp as f64).abs() < 1e-6);
    }

    #[test]
    fn pow_agrees_with_repeated_mul(base in 2u64..6, exp in 0u64..12) {
        let mut acc = BigUint::one();
        for _ in 0..exp {
            acc = acc.mul_u64(base);
        }
        prop_assert_eq!(BigUint::pow(base, exp), acc);
    }
}
