//! Conversions between explicit world-sets and decompositions.
//!
//! [`from_worldset`] performs *exact decomposition*: any finite world-set
//! (with probabilities) is representable as a WSD — the completeness claim
//! of the paper — by building one component holding the existence fields of
//! every possible tuple, one row per distinct world, and then factorizing
//! it into independent parts.

use std::collections::BTreeMap;

use maybms_relational::{Error, Result, Schema, Tuple};
use maybms_worldset::WorldSet;

use crate::cell::Cell;
use crate::component::{CompRow, Component};
use crate::field::{Field, Tid};
use crate::normalize;
use crate::wsd::{Existence, TemplateCell, TupleTemplate, Wsd};

/// Builds a WSD representing exactly the given world-set.
///
/// Every distinct tuple appearing in any world becomes a template tuple
/// with *certain* attribute values and an open existence field; a single
/// component enumerates the merged worlds as rows of existence flags.
/// `normalize_full` then splits that component into independent factors
/// (e.g. fully independent tuples each get their own tiny component) and
/// inlines certain tuples.
pub fn from_worldset(ws: &WorldSet) -> Result<Wsd> {
    if ws.is_empty() {
        return Err(Error::InvalidExpr("empty world-set has no decomposition".into()));
    }
    ws.validate()?;

    // Gather schemas and the universe of tuples per relation.
    let mut schemas: BTreeMap<String, Schema> = BTreeMap::new();
    for (w, _) in ws.worlds() {
        for (name, r) in w.relations() {
            match schemas.get(name) {
                Some(s) => {
                    if s != r.schema() {
                        return Err(Error::SchemaMismatch(format!(
                            "relation {name} has differing schemas across worlds"
                        )));
                    }
                }
                None => {
                    schemas.insert(name.to_string(), r.schema().clone());
                }
            }
        }
    }
    let mut universe: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
    for (w, _) in ws.worlds() {
        for (name, r) in w.relations() {
            let entry = universe.entry(name.to_string()).or_default();
            for t in r.canonical().rows() {
                if !entry.contains(t) {
                    entry.push(t.clone());
                }
            }
        }
    }
    for tuples in universe.values_mut() {
        tuples.sort();
    }

    let mut wsd = Wsd::new();
    let mut tids: BTreeMap<String, Vec<Tid>> = BTreeMap::new();
    for (name, schema) in &schemas {
        wsd.add_relation(name.clone(), schema.clone())?;
        let empty = Vec::new();
        let tuples = universe.get(name).unwrap_or(&empty);
        let mut ids = Vec::with_capacity(tuples.len());
        for t in tuples {
            let tid = wsd.fresh_tid();
            ids.push(tid);
            wsd.push_template(
                name,
                TupleTemplate {
                    tid,
                    cells: t.values().iter().cloned().map(TemplateCell::Certain).collect(),
                    exists: Existence::Open,
                },
            )?;
        }
        tids.insert(name.clone(), ids);
    }

    // One big component: a row per merged world, a column per tuple's ∃.
    let mut fields: Vec<Field> = Vec::new();
    let mut field_index: Vec<(String, usize)> = Vec::new(); // (rel, tuple idx)
    for (name, ids) in &tids {
        for (i, &tid) in ids.iter().enumerate() {
            fields.push(Field::exists(tid));
            field_index.push((name.clone(), i));
        }
    }

    let merged = ws.merged();
    let mut rows: Vec<CompRow> = Vec::with_capacity(merged.len());
    for (world_key, p) in &merged {
        let cells: Vec<Cell> = field_index
            .iter()
            .map(|(rel, i)| {
                let present = world_key
                    .iter()
                    .find(|(name, _)| name == rel)
                    .map(|(_, tuples)| tuples.contains(&universe[rel][*i]))
                    .unwrap_or(false);
                if present {
                    Cell::Val(maybms_relational::Value::Bool(true))
                } else {
                    Cell::Bottom
                }
            })
            .collect();
        rows.push(CompRow::new(cells, *p));
    }

    if fields.is_empty() {
        // no tuples anywhere: the world-set of the empty database
        return Ok(wsd);
    }
    wsd.add_component(Component::new(fields, rows));
    normalize::normalize_full(&mut wsd);
    wsd.validate()?;
    Ok(wsd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::{ColumnType, Relation, Value};
    use maybms_worldset::{World, WorldSet};

    fn rel(vals: &[i64]) -> Relation {
        let mut r = Relation::empty(Schema::new(vec![("a", ColumnType::Int)]));
        for v in vals {
            r.push_values(vec![Value::Int(*v)]).unwrap();
        }
        r
    }

    #[test]
    fn round_trip_two_worlds() {
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1, 2])), 0.4),
            (World::single("r", rel(&[2])), 0.6),
        ]);
        let wsd = from_worldset(&ws).unwrap();
        let back = wsd.to_worldset(100).unwrap();
        assert!(ws.equivalent(&back, 1e-9));
    }

    #[test]
    fn independent_tuples_are_factorized_apart() {
        // tuples 1 and 2 appear independently with p=1/2 each: 4 worlds
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1, 2])), 0.25),
            (World::single("r", rel(&[1])), 0.25),
            (World::single("r", rel(&[2])), 0.25),
            (World::single("r", rel(&[])), 0.25),
        ]);
        let wsd = from_worldset(&ws).unwrap();
        // factorization should split the 4-row component into two 2-row ones
        assert_eq!(wsd.num_components(), 2);
        assert_eq!(wsd.stats().component_rows, 4);
        let back = wsd.to_worldset(100).unwrap();
        assert!(ws.equivalent(&back, 1e-9));
    }

    #[test]
    fn certain_world_set_needs_no_components() {
        let ws = WorldSet::certain(World::single("r", rel(&[5, 6])));
        let wsd = from_worldset(&ws).unwrap();
        assert_eq!(wsd.num_components(), 0);
        let back = wsd.to_worldset(10).unwrap();
        assert!(ws.equivalent(&back, 1e-9));
    }

    #[test]
    fn correlated_tuples_stay_together() {
        // tuples 1 and 2 always appear together or not at all
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1, 2])), 0.5),
            (World::single("r", rel(&[])), 0.5),
        ]);
        let wsd = from_worldset(&ws).unwrap();
        assert_eq!(wsd.num_components(), 1);
        assert_eq!(
            wsd.component(wsd.live_components()[0]).unwrap().num_rows(),
            2
        );
        let back = wsd.to_worldset(100).unwrap();
        assert!(ws.equivalent(&back, 1e-9));
    }

    #[test]
    fn multi_relation_worlds() {
        let mut w1 = World::new();
        w1.put("r", rel(&[1]));
        w1.put("s", rel(&[10]));
        let mut w2 = World::new();
        w2.put("r", rel(&[1]));
        w2.put("s", rel(&[]));
        let ws = WorldSet::new(vec![(w1, 0.7), (w2, 0.3)]);
        let wsd = from_worldset(&ws).unwrap();
        let back = wsd.to_worldset(100).unwrap();
        assert!(ws.equivalent(&back, 1e-9));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut other = Relation::empty(Schema::new(vec![("b", ColumnType::Str)]));
        other.push_values(vec![Value::str("x")]).unwrap();
        let ws = WorldSet::new(vec![
            (World::single("r", rel(&[1])), 0.5),
            (World::single("r", other), 0.5),
        ]);
        assert!(from_worldset(&ws).is_err());
    }

    #[test]
    fn empty_worldset_rejected() {
        assert!(from_worldset(&WorldSet::default()).is_err());
    }
}
