//! Minimal arbitrary-precision unsigned integers for world counting.
//!
//! The paper's census world-sets have more than 2^624449 worlds — "10^10^6
//! worlds and beyond" — so world counts overflow every machine integer.
//! This is a small from-scratch BigUint (base 2^64 limbs) supporting exactly
//! what the experiments need: multiplication by machine words, addition,
//! comparison, decimal rendering and digit counting. Building it here keeps
//! the crate dependency-free (see DESIGN.md §6).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer. Little-endian 64-bit limbs,
/// no leading zero limbs (zero is the empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint::from_u64(1)
    }

    pub fn from_u64(v: u64) -> BigUint {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// The value as u64 if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self * m` for a machine word.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let prod = l as u128 * m as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u128 = 0;
        for (i, &l) in long.iter().enumerate() {
            let sum = l as u128 + short.get(i).copied().unwrap_or(0) as u128 + carry;
            out.push(sum as u64);
            carry = sum >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Full multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// `base^exp` by repeated squaring.
    pub fn pow(base: u64, mut exp: u64) -> BigUint {
        let mut result = BigUint::one();
        let mut b = BigUint::from_u64(base);
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul(&b);
            }
            b = b.mul(&b);
            exp >>= 1;
        }
        result
    }

    /// Divides by a machine word in place, returning the remainder.
    fn div_rem_u64(&mut self, d: u64) -> u64 {
        debug_assert!(d != 0);
        let mut rem: u128 = 0;
        for l in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | *l as u128;
            *l = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        self.trim();
        rem as u64
    }

    /// Decimal representation.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Peel off 19 decimal digits at a time.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks: Vec<u64> = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            chunks.push(n.div_rem_u64(CHUNK));
        }
        let mut s = chunks.last().expect("nonzero has chunks").to_string(); // maybms-lint: allow(no-panic-in-prod) -- the zero case returned early above, so chunks is nonempty
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:019}"));
        }
        s
    }

    /// Number of decimal digits.
    pub fn decimal_digits(&self) -> usize {
        if self.is_zero() {
            1
        } else {
            self.to_decimal().len()
        }
    }

    /// Approximate log2 (good to ~1e-9 relative); 0 for zero by convention.
    pub fn log2(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => (self.limbs[0] as f64).log2(),
            n => {
                // use the top two limbs for the mantissa
                let hi = self.limbs[n - 1] as f64;
                let lo = self.limbs[n - 2] as f64;
                (hi + lo / 2f64.powi(64)).log2() + 64.0 * (n - 1) as f64
            }
        }
    }

    /// Approximate log10.
    pub fn log10(&self) -> f64 {
        self.log2() * std::f64::consts::LN_2 / std::f64::consts::LN_10
    }

    /// Scientific-notation-ish summary for experiment tables, e.g.
    /// `"~10^187923"` for huge counts, exact decimal for small ones.
    pub fn summary(&self) -> String {
        if let Some(v) = self.to_u64() {
            v.to_string()
        } else if self.decimal_digits_cheap() <= 30 {
            self.to_decimal()
        } else {
            format!("~10^{}", self.log10().floor() as u64)
        }
    }

    fn decimal_digits_cheap(&self) -> usize {
        (self.log10().floor() as usize) + 1
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            o => o,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::one().to_u64(), Some(1));
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::zero().to_decimal(), "0");
    }

    #[test]
    fn mul_u64_with_carry() {
        let big = BigUint::from_u64(u64::MAX).mul_u64(u64::MAX);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(big.to_decimal(), "340282366920938463426481119284349108225");
        assert_eq!(big.mul_u64(0), BigUint::zero());
    }

    #[test]
    fn add_with_carry() {
        let a = BigUint::from_u64(u64::MAX);
        let b = a.add(&BigUint::one());
        assert_eq!(b.to_decimal(), "18446744073709551616"); // 2^64
        assert_eq!(BigUint::zero().add(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn pow_of_two_matches_known_values() {
        assert_eq!(BigUint::pow(2, 10).to_u64(), Some(1024));
        assert_eq!(BigUint::pow(2, 64).to_decimal(), "18446744073709551616");
        assert_eq!(BigUint::pow(10, 20).to_decimal(), "100000000000000000000");
        assert_eq!(BigUint::pow(7, 0).to_u64(), Some(1));
        assert_eq!(BigUint::pow(0, 5), BigUint::zero());
    }

    #[test]
    fn decimal_round_trip_against_u128_arithmetic() {
        // 12345678901234567890123456789 = 12345678901234567890123456789
        let mut n = BigUint::zero();
        for d in "12345678901234567890123456789".bytes() {
            n = n.mul_u64(10).add(&BigUint::from_u64((d - b'0') as u64));
        }
        assert_eq!(n.to_decimal(), "12345678901234567890123456789");
        assert_eq!(n.decimal_digits(), 29);
    }

    #[test]
    fn log2_is_accurate() {
        assert_eq!(BigUint::from_u64(1024).log2(), 10.0);
        let p = BigUint::pow(2, 1000);
        assert!((p.log2() - 1000.0).abs() < 1e-6);
        assert!((p.log10() - 301.029995).abs() < 1e-3);
    }

    #[test]
    fn ordering() {
        assert!(BigUint::pow(2, 100) > BigUint::pow(2, 99));
        assert!(BigUint::from_u64(5) < BigUint::from_u64(6));
        assert_eq!(
            BigUint::pow(2, 100).cmp(&BigUint::pow(2, 100)),
            Ordering::Equal
        );
        assert!(BigUint::zero() < BigUint::one());
    }

    #[test]
    fn summary_shapes() {
        assert_eq!(BigUint::from_u64(42).summary(), "42");
        assert_eq!(
            BigUint::pow(2, 80).summary(),
            BigUint::pow(2, 80).to_decimal()
        );
        let huge = BigUint::pow(2, 624449);
        let s = huge.summary();
        assert!(s.starts_with("~10^"), "got {s}");
        // The paper's 2^624449 worlds ≈ 10^187973
        let exp: u64 = s[4..].parse().unwrap();
        assert!((187000..189000).contains(&exp), "exponent {exp}");
    }

    #[test]
    fn paper_headline_count_is_representable() {
        // "10^10^6 worlds and beyond": 10^(10^6) has 10^6 + 1 digits; we can
        // at least compute with its log without materializing the decimal.
        let n = BigUint::pow(10, 1_000_000);
        assert!((n.log10() - 1_000_000.0).abs() < 1e-3);
    }
}
