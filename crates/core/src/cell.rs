//! Component cells: a value or the special ⊥ marker.
//!
//! "a selection must not delete component tuples, but should mark
//! \[the\] fields as belonging to deleted tuples of R using the special
//! value ⊥." (paper §2)

use std::fmt;

use maybms_relational::Value;

/// A cell of a component row: either a concrete value or ⊥, meaning
/// "the tuple owning this field does not exist in worlds choosing this row".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cell {
    Val(Value),
    Bottom,
}

impl Cell {
    pub fn is_bottom(&self) -> bool {
        matches!(self, Cell::Bottom)
    }

    /// The value, if not ⊥.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Cell::Val(v) => Some(v),
            Cell::Bottom => None,
        }
    }

    /// Estimated byte footprint, mirroring `Value::size_bytes`.
    pub fn size_bytes(&self) -> usize {
        match self {
            Cell::Val(v) => v.size_bytes(),
            Cell::Bottom => std::mem::size_of::<Cell>(),
        }
    }
}

impl From<Value> for Cell {
    fn from(v: Value) -> Cell {
        Cell::Val(v)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Val(v) => write!(f, "{v}"),
            Cell::Bottom => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_and_value() {
        let c = Cell::from(Value::Int(5));
        assert!(!c.is_bottom());
        assert_eq!(c.value(), Some(&Value::Int(5)));
        assert!(Cell::Bottom.is_bottom());
        assert_eq!(Cell::Bottom.value(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Cell::Bottom.to_string(), "⊥");
        assert_eq!(Cell::from(Value::str("x")).to_string(), "x");
    }
}
