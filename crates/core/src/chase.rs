//! Data cleaning: enforcing integrity constraints on world-sets.
//!
//! "We cleaned the world-set from inconsistencies by enforcing real-life
//! integrity constraints." (paper §1, experiment part 2)
//!
//! Cleaning removes every world violating a constraint and renormalizes the
//! probabilities of the remainder (conditioning on consistency). On a
//! decomposition this is a chase: for each potential violation, the
//! components it spans are merged and the violating *rows* of the merged
//! component are deleted; per-component renormalization is exact because
//! components are independent.

use maybms_relational::{Error, Expr, Result, Value};

use crate::cell::Cell;
use crate::normalize;
use crate::wsd::{Existence, TemplateCell, Wsd};

use crate::algebra::common::{
    bind_pred, bucket_by_possible_values, certain_values_at, eval_partial,
    exists_loc as exists_loc_support, open_fields_at as open_fields_support,
    possible_values_of, snapshot, values_intersect, TupleInfo as TupleInfoS,
};

/// An integrity constraint.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// Every existing tuple of `rel` must satisfy `pred` in every world
    /// (e.g. "AGE < 15 implies MARST = 'single'" as `¬(age<15) ∨ marst=…`).
    TupleCheck { rel: String, pred: Expr },
    /// Functional dependency `lhs → rhs` on `rel`.
    Fd { rel: String, lhs: Vec<String>, rhs: Vec<String> },
    /// Key constraint: `cols` functionally determine all other columns.
    Key { rel: String, cols: Vec<String> },
}

impl Constraint {
    pub fn tuple_check(rel: &str, pred: Expr) -> Constraint {
        Constraint::TupleCheck { rel: rel.to_string(), pred }
    }
    pub fn fd(rel: &str, lhs: &[&str], rhs: &[&str]) -> Constraint {
        Constraint::Fd {
            rel: rel.to_string(),
            lhs: lhs.iter().map(|s| s.to_string()).collect(),
            rhs: rhs.iter().map(|s| s.to_string()).collect(),
        }
    }
    pub fn key(rel: &str, cols: &[&str]) -> Constraint {
        Constraint::Key {
            rel: rel.to_string(),
            cols: cols.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// World-level consistency check — the oracle the chase must match.
    pub fn holds_in(&self, world: &maybms_worldset::World) -> Result<bool> {
        match self {
            Constraint::TupleCheck { rel, pred } => {
                let Some(r) = world.get(rel) else { return Ok(true) };
                let bound = pred.bind(r.schema())?;
                for t in r.iter() {
                    if !bound.eval_predicate(t)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Constraint::Fd { rel, lhs, rhs } => {
                let Some(r) = world.get(rel) else { return Ok(true) };
                let li: Vec<usize> = lhs
                    .iter()
                    .map(|c| r.schema().index_of(c))
                    .collect::<Result<_>>()?;
                let ri: Vec<usize> = rhs
                    .iter()
                    .map(|c| r.schema().index_of(c))
                    .collect::<Result<_>>()?;
                let rows = r.canonical();
                for (i, a) in rows.rows().iter().enumerate() {
                    for b in rows.rows().iter().skip(i + 1) {
                        let lhs_eq = li.iter().all(|&k| a[k] == b[k]);
                        let rhs_eq = ri.iter().all(|&k| a[k] == b[k]);
                        if lhs_eq && !rhs_eq {
                            return Ok(false);
                        }
                    }
                }
                Ok(true)
            }
            Constraint::Key { rel, cols } => {
                let desugared = desugar_key(rel, cols, world.get(rel).map(|r| r.schema()))?;
                match desugared {
                    Some(fd) => fd.holds_in(world),
                    None => Ok(true),
                }
            }
        }
    }
}

fn desugar_key(
    rel: &str,
    cols: &[String],
    schema: Option<&maybms_relational::Schema>,
) -> Result<Option<Constraint>> {
    let Some(schema) = schema else { return Ok(None) };
    let rhs: Vec<&str> = schema
        .names()
        .into_iter()
        .filter(|n| !cols.iter().any(|c| c == n))
        .collect();
    if rhs.is_empty() {
        return Ok(None); // key over all columns is vacuous under set semantics
    }
    let lhs: Vec<&str> = cols.iter().map(String::as_str).collect();
    Ok(Some(Constraint::fd(rel, &lhs, &rhs)))
}

/// Statistics of a cleaning run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CleaningReport {
    /// Merged-component rows deleted (violating world groups).
    pub deleted_rows: usize,
    /// Component merges performed by the chase.
    pub merges: usize,
    /// Probability mass of the removed (inconsistent) worlds.
    pub removed_probability: f64,
    /// Tuple pairs / tuples examined.
    pub checks: usize,
}

/// Enforces the constraints on the decomposition. Fails with an error if
/// cleaning would remove *all* worlds (the constraints are unsatisfiable on
/// this world-set). Normalizes afterwards.
pub fn clean(wsd: &mut Wsd, constraints: &[Constraint]) -> Result<CleaningReport> {
    let mut report = CleaningReport::default();
    let mut kept_fraction = 1.0f64;
    for c in constraints {
        match c {
            Constraint::TupleCheck { rel, pred } => {
                enforce_tuple_check(wsd, rel, pred, &mut report, &mut kept_fraction)?
            }
            Constraint::Fd { rel, lhs, rhs } => {
                enforce_fd(wsd, rel, lhs, rhs, &mut report, &mut kept_fraction)?
            }
            Constraint::Key { rel, cols } => {
                let schema = wsd.relation(rel)?.schema.clone();
                if let Some(Constraint::Fd { rel, lhs, rhs }) =
                    desugar_key(rel, cols, Some(&schema))?
                {
                    enforce_fd(wsd, &rel, &lhs, &rhs, &mut report, &mut kept_fraction)?;
                }
            }
        }
    }
    report.removed_probability = 1.0 - kept_fraction;
    normalize::normalize(wsd);
    Ok(report)
}

/// Components a tuple's consistency check must observe: the open fields at
/// `positions`, the existence field, and every other open field whose
/// column can be ⊥ (a deletion marker elsewhere decides existence too).
fn relevant_comps(wsd: &Wsd, t: &TupleInfoS, positions: &[usize]) -> Result<Vec<usize>> {
    let mut comps: Vec<usize> = Vec::new();
    for &(_, (c, _)) in &open_fields_support(wsd, t, positions)? {
        comps.push(c);
    }
    if let Some((c, _)) = exists_loc_support(wsd, t)? {
        comps.push(c);
    }
    let all: Vec<usize> = (0..t.cells.len()).collect();
    for &(pos, (c, col)) in &open_fields_support(wsd, t, &all)? {
        if positions.contains(&pos) {
            continue;
        }
        let comp = wsd.component(c).expect("mapped"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        if comp.column_has_bottom(col) {
            comps.push(c);
        }
    }
    comps.sort_unstable();
    comps.dedup();
    Ok(comps)
}

/// Deletes rows of `comp_idx` flagged by `kill`, renormalizing. Fails if
/// everything is deleted.
fn delete_rows<F>(
    wsd: &mut Wsd,
    comp_idx: usize,
    mut kill: F,
    report: &mut CleaningReport,
    kept_fraction: &mut f64,
) -> Result<()>
where
    F: FnMut(crate::component::RowRef<'_>) -> bool,
{
    let comp = wsd
        .component_mut(comp_idx)
        .ok_or_else(|| Error::InvalidExpr(format!("dead component {comp_idx}")))?;
    let before = comp.num_rows();
    let removed_mass = comp.retain_rows(|r| !kill(r));
    let after = comp.num_rows();
    if after == 0 {
        return Err(Error::InvalidExpr(
            "cleaning removed all worlds: constraints unsatisfiable".into(),
        ));
    }
    if after < before {
        report.deleted_rows += before - after;
        *kept_fraction *= 1.0 - removed_mass;
        comp.renormalize();
    }
    Ok(())
}

fn enforce_tuple_check(
    wsd: &mut Wsd,
    rel: &str,
    pred: &Expr,
    report: &mut CleaningReport,
    kept_fraction: &mut f64,
) -> Result<()> {
    let (schema, tuples) = snapshot(wsd, rel)?;
    let (bound, positions) = bind_pred(pred, &schema)?;
    let arity = schema.len();

    for t in &tuples {
        report.checks += 1;
        let open = open_fields_support(wsd, t, &positions)?;
        let known = certain_values_at(t, &positions);

        if open.is_empty() {
            if eval_partial(&bound, arity, &known)? {
                continue; // always satisfied
            }
            // statically violating: remove the worlds where t exists
            match exists_loc_support(wsd, t)? {
                None => {
                    return Err(Error::InvalidExpr(format!(
                        "tuple {} of {rel} violates a check in every world",
                        t.tid
                    )))
                }
                Some(_) => {
                    let comps = relevant_comps(wsd, t, &[])?;
                    let merged = wsd.merge_components(&comps)?;
                    report.merges += comps.len().saturating_sub(1);
                    let alive_cols = alive_columns(wsd, t)?;
                    delete_rows(
                        wsd,
                        merged,
                        |row| alive_cols.iter().all(|&c| !row.is_bottom(c)),
                        report,
                        kept_fraction,
                    )?;
                }
            }
            continue;
        }

        let comps = relevant_comps(wsd, t, &positions)?;
        let merged = wsd.merge_components(&comps)?;
        report.merges += comps.len().saturating_sub(1);
        let open_now = open_fields_support(wsd, t, &positions)?;
        let alive_cols = alive_columns(wsd, t)?;
        let known = known.clone();
        delete_rows(
            wsd,
            merged,
            |row| {
                if alive_cols.iter().any(|&c| row.is_bottom(c)) {
                    return false; // tuple absent: no violation here
                }
                let mut vals = known.clone();
                for &(pos, (_, col)) in &open_now {
                    match row.cell(col) {
                        Cell::Val(v) => {
                            vals.insert(pos, v.clone());
                        }
                        Cell::Bottom => return false,
                    }
                }
                !eval_partial(&bound, arity, &vals).unwrap_or(false)
            },
            report,
            kept_fraction,
        )?;
    }
    Ok(())
}

/// Columns (in the tuple's merged component) that must all be non-⊥ for the
/// tuple to exist. Only valid right after `relevant_comps` + merge, when
/// all ⊥-capable fields live in one component.
fn alive_columns(wsd: &Wsd, t: &TupleInfoS) -> Result<Vec<usize>> {
    let mut cols = Vec::new();
    let all: Vec<usize> = (0..t.cells.len()).collect();
    let mut comp_idx: Option<usize> = None;
    for &(_, (c, col)) in &open_fields_support(wsd, t, &all)? {
        let comp = wsd.component(c).expect("mapped"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        if comp.column_has_bottom(col) {
            debug_assert!(comp_idx.is_none() || comp_idx == Some(c));
            comp_idx = Some(c);
            cols.push(col);
        }
    }
    if let Some((c, col)) = exists_loc_support(wsd, t)? {
        debug_assert!(comp_idx.is_none() || comp_idx == Some(c));
        cols.push(col);
    }
    Ok(cols)
}

fn enforce_fd(
    wsd: &mut Wsd,
    rel: &str,
    lhs: &[String],
    rhs: &[String],
    report: &mut CleaningReport,
    kept_fraction: &mut f64,
) -> Result<()> {
    let (schema, tuples) = snapshot(wsd, rel)?;
    let li: Vec<usize> = lhs
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<_>>()?;
    let ri: Vec<usize> = rhs
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<_>>()?;
    let all_pos: Vec<usize> = li.iter().chain(ri.iter()).copied().collect();

    // Pair pruning at scale, sharing the equi-join's bucket index: every
    // tuple's possible values at the constrained positions are derived
    // ONCE (component columns read through the field map), then tuples
    // are hash-partitioned by the possible values of the first lhs
    // column. Only pairs sharing a bucket can agree on the lhs, so
    // candidate generation is O(|R| + candidates), not O(|R|²), and the
    // per-pair prunes below reuse the precomputed value sets instead of
    // re-deriving them. The precomputed sets can only be supersets of
    // the live ones after earlier deletions, so pruning stays sound (the
    // kill closure re-reads live rows).
    let mut poss: Vec<Vec<Vec<Value>>> = Vec::with_capacity(tuples.len());
    for t in &tuples {
        let per: Vec<Vec<Value>> = all_pos
            .iter()
            .map(|&p| possible_values_of(wsd, rel, t, p))
            .collect::<Result<_>>()?;
        poss.push(per);
    }
    let nl = li.len();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    if nl == 0 {
        // degenerate FD with empty lhs: every pair shares the (empty) key
        for i in 0..tuples.len() {
            for j in (i + 1)..tuples.len() {
                pairs.push((i, j));
            }
        }
    } else {
        let buckets = bucket_by_possible_values(tuples.len(), |i| &poss[i][0]);
        let mut cand: Vec<usize> = Vec::new();
        for (i, p) in poss.iter().enumerate() {
            cand.clear();
            for v in &p[0] {
                if v.is_null() {
                    continue;
                }
                if let Some(js) = buckets.get(v) {
                    cand.extend(js.iter().copied().filter(|&j| j > i));
                }
            }
            cand.sort_unstable();
            cand.dedup();
            pairs.extend(cand.iter().map(|&j| (i, j)));
        }
    }

    for (i, j) in pairs {
        let (t, u) = (&tuples[i], &tuples[j]);
        {
            report.checks += 1;
            // prune: lhs must be able to agree
            let can_agree = (0..nl).all(|k| values_intersect(&poss[i][k], &poss[j][k]));
            if !can_agree {
                continue;
            }
            // prune: rhs must be able to differ
            let can_differ = (nl..all_pos.len()).any(|k| {
                let (tv, uv) = (&poss[i][k], &poss[j][k]);
                tv.len() > 1 || uv.len() > 1 || tv.first() != uv.first()
            });
            if !can_differ {
                continue;
            }

            // fully static violation?
            let t_static = open_fields_support(wsd, t, &all_pos)?.is_empty();
            let u_static = open_fields_support(wsd, u, &all_pos)?.is_empty();
            if t_static
                && u_static
                && t.exists == Existence::Always
                && u.exists == Existence::Always
            {
                let lhs_eq = li.iter().all(|&p| cert(t, p) == cert(u, p));
                let rhs_eq = ri.iter().all(|&p| cert(t, p) == cert(u, p));
                if lhs_eq && !rhs_eq {
                    return Err(Error::InvalidExpr(format!(
                        "tuples {} and {} of {rel} violate the FD in every world",
                        t.tid, u.tid
                    )));
                }
                continue;
            }

            let mut comps = relevant_comps(wsd, t, &all_pos)?;
            comps.extend(relevant_comps(wsd, u, &all_pos)?);
            comps.sort_unstable();
            comps.dedup();
            if comps.is_empty() {
                continue;
            }
            let merged = wsd.merge_components(&comps)?;
            report.merges += comps.len().saturating_sub(1);

            let t_open = open_fields_support(wsd, t, &all_pos)?;
            let u_open = open_fields_support(wsd, u, &all_pos)?;
            let t_alive = alive_columns(wsd, t)?;
            let u_alive = alive_columns(wsd, u)?;
            let (tc, uc) = (t.cells.clone(), u.cells.clone());
            let (li2, ri2) = (li.clone(), ri.clone());

            let value_at = move |cells: &[TemplateCell],
                                 open: &[(usize, (usize, usize))],
                                 row: crate::component::RowRef<'_>,
                                 pos: usize|
                  -> Option<Value> {
                match &cells[pos] {
                    TemplateCell::Certain(v) => Some(v.clone()),
                    TemplateCell::Open => {
                        let col = open.iter().find(|&&(p, _)| p == pos).map(|&(_, (_, c))| c)?;
                        match row.cell(col) {
                            Cell::Val(v) => Some(v.clone()),
                            Cell::Bottom => None,
                        }
                    }
                }
            };

            delete_rows(
                wsd,
                merged,
                |row| {
                    if t_alive.iter().any(|&c| row.is_bottom(c))
                        || u_alive.iter().any(|&c| row.is_bottom(c))
                    {
                        return false;
                    }
                    for &p in &li2 {
                        match (value_at(&tc, &t_open, row, p), value_at(&uc, &u_open, row, p)) {
                            (Some(a), Some(b)) if a == b => {}
                            _ => return false,
                        }
                    }
                    for &p in &ri2 {
                        match (value_at(&tc, &t_open, row, p), value_at(&uc, &u_open, row, p)) {
                            (Some(a), Some(b)) if a != b => return true,
                            _ => {}
                        }
                    }
                    false
                },
                report,
                kept_fraction,
            )?;
        }
    }
    Ok(())
}

fn cert(t: &TupleInfoS, pos: usize) -> Option<&Value> {
    match &t.cells[pos] {
        TemplateCell::Certain(v) => Some(v),
        TemplateCell::Open => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::{ColumnType, Schema};
    use maybms_worldset::OrSetCell;

    fn check_against_oracle(wsd: &Wsd, constraints: &[Constraint]) {
        let before = wsd.to_worldset(1_000_000).unwrap();
        let mut cleaned = wsd.clone();
        let report = clean(&mut cleaned, constraints).unwrap();
        cleaned.validate().unwrap();
        let lhs = cleaned.to_worldset(1_000_000).unwrap();
        let rhs = before
            .filter(|w| {
                for c in constraints {
                    if !c.holds_in(w)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            })
            .unwrap();
        assert!(
            lhs.equivalent(&rhs, 1e-9),
            "chase must equal world-level filtering (report {report:?})"
        );
    }

    fn person_wsd() -> Wsd {
        let mut w = Wsd::new();
        w.add_relation(
            "p",
            Schema::new(vec![
                ("ssn", ColumnType::Int),
                ("name", ColumnType::Str),
                ("age", ColumnType::Int),
            ]),
        )
        .unwrap();
        // ssn uncertain for the first person
        w.push_orset(
            "p",
            vec![
                OrSetCell::weighted(vec![(Value::Int(1), 0.5), (Value::Int(2), 0.5)]).unwrap(),
                OrSetCell::certain("ann"),
                OrSetCell::certain(30i64),
            ],
        )
        .unwrap();
        w.push_certain("p", vec![Value::Int(2), Value::str("bob"), Value::Int(40)])
            .unwrap();
        w
    }

    #[test]
    fn key_constraint_removes_colliding_worlds() {
        let w = person_wsd();
        let cons = vec![Constraint::key("p", &["ssn"])];
        check_against_oracle(&w, &cons);
        let mut cleaned = w.clone();
        let report = clean(&mut cleaned, &cons).unwrap();
        // the ssn=2 alternative for ann collides with bob and is removed
        assert!(report.deleted_rows >= 1);
        assert!((report.removed_probability - 0.5).abs() < 1e-9);
        // after cleaning, ann's ssn is certainly 1
        let conf = crate::prob::tuple_confidence(&cleaned, "p").unwrap();
        assert!(conf
            .iter()
            .all(|(t, _)| !(t[0] == Value::Int(2) && t[1] == Value::str("ann"))));
    }

    #[test]
    fn tuple_check_conditions_distribution() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("age", ColumnType::Int)])).unwrap();
        w.push_orset(
            "r",
            vec![OrSetCell::weighted(vec![
                (Value::Int(10), 0.2),
                (Value::Int(200), 0.3),
                (Value::Int(50), 0.5),
            ])
            .unwrap()],
        )
        .unwrap();
        let cons = vec![Constraint::tuple_check(
            "r",
            Expr::col("age").le(Expr::lit(150i64)),
        )];
        check_against_oracle(&w, &cons);
        let mut cleaned = w.clone();
        let report = clean(&mut cleaned, &cons).unwrap();
        assert!((report.removed_probability - 0.3).abs() < 1e-9);
        // renormalized: P(age=10) = 0.2/0.7
        let conf = crate::prob::tuple_confidence(&cleaned, "r").unwrap();
        let ten = conf.iter().find(|(t, _)| t[0] == Value::Int(10)).unwrap();
        assert!((ten.1 - 0.2 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn fd_between_uncertain_tuples() {
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
        w.push_orset(
            "r",
            vec![
                OrSetCell::certain(1i64),
                OrSetCell::weighted(vec![(Value::Int(10), 0.5), (Value::Int(20), 0.5)]).unwrap(),
            ],
        )
        .unwrap();
        w.push_orset(
            "r",
            vec![
                OrSetCell::certain(1i64),
                OrSetCell::weighted(vec![(Value::Int(10), 0.3), (Value::Int(30), 0.7)]).unwrap(),
            ],
        )
        .unwrap();
        let cons = vec![Constraint::fd("r", &["a"], &["b"])];
        check_against_oracle(&w, &cons);
    }

    #[test]
    fn unsatisfiable_constraints_error() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_certain("r", vec![Value::Int(500)]).unwrap();
        let cons = vec![Constraint::tuple_check(
            "r",
            Expr::col("a").lt(Expr::lit(100i64)),
        )];
        assert!(clean(&mut w, &cons).is_err());
    }

    #[test]
    fn consistent_data_is_untouched() {
        let w = person_wsd();
        let cons = vec![Constraint::tuple_check(
            "p",
            Expr::col("age").lt(Expr::lit(150i64)),
        )];
        let mut cleaned = w.clone();
        let report = clean(&mut cleaned, &cons).unwrap();
        assert_eq!(report.deleted_rows, 0);
        assert!((report.removed_probability).abs() < 1e-12);
        assert!(w
            .to_worldset(1000)
            .unwrap()
            .equivalent(&cleaned.to_worldset(1000).unwrap(), 1e-9));
    }

    #[test]
    fn multiple_constraints_compose() {
        let w = person_wsd();
        let cons = vec![
            Constraint::key("p", &["ssn"]),
            Constraint::tuple_check("p", Expr::col("age").lt(Expr::lit(100i64))),
        ];
        check_against_oracle(&w, &cons);
    }
}
