//! Probabilistic world-set decompositions.
//!
//! A [`Wsd`] stores a finite set of possible worlds — each world a complete
//! relational database — as:
//!
//! * per relation, a *template*: a list of template tuples whose fields are
//!   either **certain** values (stored inline, once) or **open** (defined by
//!   a component column), plus a hidden existence flag;
//! * a set of [`Component`]s, each defining values for a set of fields; the
//!   world-set is the relational product of the components: one world per
//!   combination of one row from each component, with probability the
//!   product of the chosen rows' probabilities (paper §2).
//!
//! "The main principle of WSDs is to store independent tuple fields in
//! separate components and dependent tuple fields within the same
//! component."

use std::collections::{BTreeMap, HashMap};

use maybms_relational::{Error, Relation, Result, Schema, Tuple, Value};
use maybms_worldset::{OrSetCell, World, WorldSet};

use crate::bigint::BigUint;
use crate::cell::Cell;
use crate::component::{CompRow, Component};
use crate::field::{Field, Tid};

/// A field of a template tuple: stored inline (certain in all worlds) or
/// defined by a component column (looked up through the WSD's field map).
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateCell {
    Certain(Value),
    Open,
}

/// Whether a template tuple exists in every world or only in the worlds
/// where its existence field is non-⊥.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Existence {
    Always,
    Open,
}

/// One template tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleTemplate {
    pub tid: Tid,
    pub cells: Vec<TemplateCell>,
    pub exists: Existence,
}

/// The template of one relation: its schema and template tuples.
#[derive(Debug, Clone)]
pub struct RelTemplate {
    pub schema: Schema,
    pub tuples: Vec<TupleTemplate>,
}

/// Summary statistics of a decomposition (used by experiment tables).
#[derive(Debug, Clone, PartialEq)]
pub struct WsdStats {
    pub relations: usize,
    pub template_tuples: usize,
    pub components: usize,
    pub component_rows: usize,
    pub component_cells: usize,
    pub max_component_rows: usize,
}

/// A probabilistic world-set decomposition over a multi-relation database.
#[derive(Debug, Clone)]
pub struct Wsd {
    pub(crate) relations: BTreeMap<String, RelTemplate>,
    /// Components with tombstones: merging replaces entries by `None`
    /// while keeping indices stable; [`Wsd::compact`] drops tombstones.
    pub(crate) components: Vec<Option<Component>>,
    /// field → (component index, column index). Many-to-one: derived tuples
    /// *alias* the columns of the tuples they were computed from, which is
    /// how correlations between query results and their inputs are kept.
    pub(crate) field_map: HashMap<Field, (usize, usize)>,
    pub(crate) next_tid: u64,
}

impl Default for Wsd {
    fn default() -> Self {
        Wsd::new()
    }
}

impl Wsd {
    pub fn new() -> Wsd {
        Wsd {
            relations: BTreeMap::new(),
            components: Vec::new(),
            field_map: HashMap::new(),
            next_tid: 0,
        }
    }

    // ------------------------------------------------------------------
    // Schema-level operations
    // ------------------------------------------------------------------

    /// Registers an empty relation.
    pub fn add_relation(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(Error::DuplicateRelation(name));
        }
        self.relations.insert(name, RelTemplate { schema, tuples: Vec::new() });
        Ok(())
    }

    pub fn relation(&self, name: &str) -> Result<&RelTemplate> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    pub fn remove_relation(&mut self, name: &str) -> Result<RelTemplate> {
        self.relations
            .remove(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Renames a relation.
    pub fn rename_relation(&mut self, from: &str, to: impl Into<String>) -> Result<()> {
        let t = self.remove_relation(from)?;
        let to = to.into();
        if self.relations.contains_key(&to) {
            return Err(Error::DuplicateRelation(to));
        }
        self.relations.insert(to, t);
        Ok(())
    }

    /// Allocates a fresh tuple identifier. Needed when assembling a WSD by
    /// hand from components and templates (as `examples::medical_wsd` does);
    /// the or-set/certain push APIs call it internally.
    pub fn fresh_tid(&mut self) -> Tid {
        let t = Tid(self.next_tid);
        self.next_tid += 1;
        t
    }

    // ------------------------------------------------------------------
    // Tuple-level construction
    // ------------------------------------------------------------------

    /// Appends a certain tuple (all fields inline, exists in every world).
    pub fn push_certain(&mut self, rel: &str, values: Vec<Value>) -> Result<Tid> {
        let tid = self.fresh_tid();
        let tpl = self
            .relations
            .get_mut(rel)
            .ok_or_else(|| Error::UnknownRelation(rel.to_string()))?;
        if values.len() != tpl.schema.len() {
            return Err(Error::TypeError(format!(
                "tuple arity {} vs schema {}",
                values.len(),
                tpl.schema.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            if !v.matches_type(tpl.schema.column(i).ty) {
                return Err(Error::TypeError(format!(
                    "value {v} not valid for column {}",
                    tpl.schema.column(i).name
                )));
            }
        }
        tpl.tuples.push(TupleTemplate {
            tid,
            cells: values.into_iter().map(TemplateCell::Certain).collect(),
            exists: Existence::Always,
        });
        Ok(tid)
    }

    /// Appends an or-set tuple: certain fields are stored inline; each
    /// uncertain field becomes its own single-field component — the
    /// *maximal* decomposition, valid because or-set field choices are
    /// independent.
    pub fn push_orset(&mut self, rel: &str, cells: Vec<OrSetCell>) -> Result<Tid> {
        let tid = self.fresh_tid();
        {
            let tpl = self
                .relations
                .get(rel)
                .ok_or_else(|| Error::UnknownRelation(rel.to_string()))?;
            if cells.len() != tpl.schema.len() {
                return Err(Error::TypeError(format!(
                    "or-set tuple arity {} vs schema {}",
                    cells.len(),
                    tpl.schema.len()
                )));
            }
            for (i, c) in cells.iter().enumerate() {
                for (v, _) in c.alternatives() {
                    if !v.matches_type(tpl.schema.column(i).ty) {
                        return Err(Error::TypeError(format!(
                            "alternative {v} not valid for column {}",
                            tpl.schema.column(i).name
                        )));
                    }
                }
            }
        }
        let mut tcells = Vec::with_capacity(cells.len());
        for (i, c) in cells.into_iter().enumerate() {
            if let Some(v) = c.certain_value() {
                tcells.push(TemplateCell::Certain(v.clone()));
            } else {
                let field = Field::attr(tid, i as u32);
                let comp = Component::singleton(
                    field,
                    c.alternatives()
                        .iter()
                        .map(|(v, p)| (Cell::Val(v.clone()), *p))
                        .collect(),
                );
                self.add_component(comp);
                tcells.push(TemplateCell::Open);
            }
        }
        let tpl = self.relations.get_mut(rel).expect("checked above");
        tpl.tuples.push(TupleTemplate {
            tid,
            cells: tcells,
            exists: Existence::Always,
        });
        Ok(tid)
    }

    /// Appends a pre-built template tuple. The caller must have registered
    /// component columns for every `Open` cell (and for `Existence::Open`)
    /// via [`Wsd::add_component`] or [`Wsd::alias_field`].
    pub fn push_template(&mut self, rel: &str, t: TupleTemplate) -> Result<()> {
        let tpl = self
            .relations
            .get_mut(rel)
            .ok_or_else(|| Error::UnknownRelation(rel.to_string()))?;
        if t.cells.len() != tpl.schema.len() {
            return Err(Error::TypeError(format!(
                "template arity {} vs schema {}",
                t.cells.len(),
                tpl.schema.len()
            )));
        }
        tpl.tuples.push(t);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Component management
    // ------------------------------------------------------------------

    /// Registers a component; its fields become defined in the field map.
    pub fn add_component(&mut self, c: Component) -> usize {
        let idx = self.components.len();
        for (col, &f) in c.fields().iter().enumerate() {
            self.field_map.insert(f, (idx, col));
        }
        self.components.push(Some(c));
        idx
    }

    /// Makes `field` an alias for an existing component column. Used by
    /// query operators so result tuples share the columns of their inputs.
    pub fn alias_field(&mut self, field: Field, loc: (usize, usize)) {
        self.field_map.insert(field, loc);
    }

    /// Location of a field, if open.
    pub fn field_loc(&self, field: Field) -> Option<(usize, usize)> {
        self.field_map.get(&field).copied()
    }

    pub fn component(&self, idx: usize) -> Option<&Component> {
        self.components.get(idx).and_then(|c| c.as_ref())
    }

    pub fn component_mut(&mut self, idx: usize) -> Option<&mut Component> {
        self.components.get_mut(idx).and_then(|c| c.as_mut())
    }

    /// Indices of live (non-tombstoned) components.
    pub fn live_components(&self) -> Vec<usize> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
            .collect()
    }

    pub fn num_components(&self) -> usize {
        self.components.iter().filter(|c| c.is_some()).count()
    }

    /// Merges the given components into one (their relational product) and
    /// returns its index. All field-map entries pointing into the merged
    /// components are retargeted. Duplicate indices are tolerated.
    pub fn merge_components(&mut self, indices: &[usize]) -> Result<usize> {
        let mut idxs: Vec<usize> = indices.to_vec();
        idxs.sort_unstable();
        idxs.dedup();
        if idxs.is_empty() {
            return Err(Error::InvalidExpr("merge of zero components".into()));
        }
        if idxs.len() == 1 {
            return Ok(idxs[0]);
        }
        // Take the parts (leaving tombstones) and compute column offsets.
        let mut parts: Vec<(usize, Component)> = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let c = self.components[i]
                .take()
                .ok_or_else(|| Error::InvalidExpr(format!("component {i} is dead")))?;
            parts.push((i, c));
        }
        let mut offsets: HashMap<usize, usize> = HashMap::new();
        let mut acc = 0usize;
        for (i, c) in &parts {
            offsets.insert(*i, acc);
            acc += c.num_fields();
        }
        let mut it = parts.into_iter();
        let (_, first) = it.next().expect("nonempty");
        let merged = it.fold(first, |a, (_, b)| a.product(&b));

        let new_idx = self.components.len();
        self.components.push(Some(merged));
        for loc in self.field_map.values_mut() {
            if let Some(off) = offsets.get(&loc.0) {
                *loc = (new_idx, off + loc.1);
            }
        }
        Ok(new_idx)
    }

    /// Possible values of a tuple field: the certain value, or the distinct
    /// non-⊥ values of its component column.
    pub fn possible_values(&self, rel: &str, tid: Tid, pos: usize) -> Result<Vec<Value>> {
        let tpl = self.relation(rel)?;
        let t = tpl
            .tuples
            .iter()
            .find(|t| t.tid == tid)
            .ok_or_else(|| Error::InvalidExpr(format!("tuple {tid} not in {rel}")))?;
        Ok(match &t.cells[pos] {
            TemplateCell::Certain(v) => vec![v.clone()],
            TemplateCell::Open => {
                let (c, col) = self
                    .field_loc(Field::attr(tid, pos as u32))
                    .ok_or_else(|| Error::InvalidExpr(format!("unmapped open field {tid}.#{pos}")))?;
                let comp = self
                    .component(c)
                    .ok_or_else(|| Error::InvalidExpr(format!("dead component {c}")))?;
                let mut out: Vec<Value> = Vec::new();
                for r in comp.rows() {
                    if let Cell::Val(v) = &r.cells[col] {
                        if !out.contains(v) {
                            out.push(v.clone());
                        }
                    }
                }
                out
            }
        })
    }

    // ------------------------------------------------------------------
    // Semantics: world counting, enumeration, instantiation
    // ------------------------------------------------------------------

    /// The number of worlds represented: the product of the live
    /// components' row counts (exact, arbitrary precision). Distinct-world
    /// counts (merging equal databases) require enumeration.
    pub fn world_count(&self) -> BigUint {
        let mut n = BigUint::one();
        for c in self.components.iter().flatten() {
            n = n.mul_u64(c.num_rows() as u64);
        }
        n
    }

    /// Instantiates the world picked by `choice` (row index per live
    /// component; indices into `self.components`).
    pub fn instantiate(&self, choice: &HashMap<usize, usize>) -> Result<World> {
        let mut w = World::new();
        for (name, tpl) in &self.relations {
            let mut rel = Relation::empty(tpl.schema.clone());
            'tuples: for t in &tpl.tuples {
                // existence check
                if t.exists == Existence::Open {
                    let (c, col) = self
                        .field_loc(Field::exists(t.tid))
                        .ok_or_else(|| Error::InvalidExpr(format!("unmapped ∃ of {}", t.tid)))?;
                    let row = self.chosen_row(c, choice)?;
                    if row.cells[col].is_bottom() {
                        continue 'tuples;
                    }
                }
                let mut vals = Vec::with_capacity(t.cells.len());
                for (i, cell) in t.cells.iter().enumerate() {
                    match cell {
                        TemplateCell::Certain(v) => vals.push(v.clone()),
                        TemplateCell::Open => {
                            let (c, col) =
                                self.field_loc(Field::attr(t.tid, i as u32)).ok_or_else(|| {
                                    Error::InvalidExpr(format!("unmapped field {}.#{}", t.tid, i))
                                })?;
                            let row = self.chosen_row(c, choice)?;
                            match &row.cells[col] {
                                Cell::Val(v) => vals.push(v.clone()),
                                // ⊥ on any field means the tuple does not
                                // exist in this world.
                                Cell::Bottom => continue 'tuples,
                            }
                        }
                    }
                }
                rel.push_unchecked(Tuple::new(vals));
            }
            w.put(name.clone(), rel);
        }
        Ok(w)
    }

    fn chosen_row(&self, comp: usize, choice: &HashMap<usize, usize>) -> Result<&CompRow> {
        let c = self
            .component(comp)
            .ok_or_else(|| Error::InvalidExpr(format!("dead component {comp}")))?;
        let &r = choice
            .get(&comp)
            .ok_or_else(|| Error::InvalidExpr(format!("no choice for component {comp}")))?;
        c.rows()
            .get(r)
            .ok_or_else(|| Error::InvalidExpr(format!("row {r} out of range in component {comp}")))
    }

    /// Enumerates the full world-set (all combinations of component rows).
    /// Fails if the combinatorial count exceeds `max_worlds` — enumeration
    /// is for oracle/testing scale only; that is the whole point of WSDs.
    pub fn to_worldset(&self, max_worlds: usize) -> Result<WorldSet> {
        let live = self.live_components();
        let count = self.world_count();
        if count > BigUint::from_u64(max_worlds as u64) {
            return Err(Error::InvalidExpr(format!(
                "world-set too large to enumerate ({} worlds > cap {max_worlds})",
                count.summary()
            )));
        }
        let mut ws = WorldSet::default();
        let widths: Vec<usize> = live
            .iter()
            .map(|&i| self.component(i).expect("live").num_rows())
            .collect();
        let mut idx = vec![0usize; live.len()];
        loop {
            let choice: HashMap<usize, usize> =
                live.iter().copied().zip(idx.iter().copied()).collect();
            let mut p = 1.0;
            for (&c, &r) in live.iter().zip(&idx) {
                p *= self.component(c).expect("live").rows()[r].p;
            }
            ws.push(self.instantiate(&choice)?, p);

            let mut k = live.len();
            loop {
                if k == 0 {
                    return Ok(ws);
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < widths[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
    }

    // ------------------------------------------------------------------
    // Validation, accounting
    // ------------------------------------------------------------------

    /// Checks all structural invariants: component validity, field-map
    /// consistency, template arity and typing of certain cells, open cells
    /// mapped, existence fields mapped.
    pub fn validate(&self) -> Result<()> {
        for c in self.components.iter().flatten() {
            c.validate()?;
        }
        for (f, &(c, col)) in &self.field_map {
            let comp = self
                .component(c)
                .ok_or_else(|| Error::InvalidExpr(format!("field {f} maps to dead component {c}")))?;
            if col >= comp.num_fields() {
                return Err(Error::InvalidExpr(format!(
                    "field {f} maps to column {col} of a {}-column component",
                    comp.num_fields()
                )));
            }
        }
        for (name, tpl) in &self.relations {
            for t in &tpl.tuples {
                if t.cells.len() != tpl.schema.len() {
                    return Err(Error::TypeError(format!(
                        "tuple {} in {name} has arity {} vs schema {}",
                        t.tid,
                        t.cells.len(),
                        tpl.schema.len()
                    )));
                }
                for (i, cell) in t.cells.iter().enumerate() {
                    match cell {
                        TemplateCell::Certain(v) => {
                            if !v.matches_type(tpl.schema.column(i).ty) {
                                return Err(Error::TypeError(format!(
                                    "certain value {v} invalid for {name}.{}",
                                    tpl.schema.column(i).name
                                )));
                            }
                        }
                        TemplateCell::Open => {
                            if self.field_loc(Field::attr(t.tid, i as u32)).is_none() {
                                return Err(Error::InvalidExpr(format!(
                                    "open field {}.#{} of {name} is unmapped",
                                    t.tid, i
                                )));
                            }
                        }
                    }
                }
                if t.exists == Existence::Open
                    && self.field_loc(Field::exists(t.tid)).is_none()
                {
                    return Err(Error::InvalidExpr(format!(
                        "open existence of {} in {name} is unmapped",
                        t.tid
                    )));
                }
            }
        }
        Ok(())
    }

    /// Estimated bytes of the representation: inline certain values plus
    /// all component data (cells + probability columns). Comparable with
    /// [`Relation::size_bytes`] — the E1 overhead metric.
    pub fn size_bytes(&self) -> usize {
        let template: usize = self
            .relations
            .values()
            .flat_map(|tpl| tpl.tuples.iter())
            .map(|t| {
                std::mem::size_of::<TupleTemplate>()
                    + t.cells
                        .iter()
                        .map(|c| match c {
                            TemplateCell::Certain(v) => v.size_bytes(),
                            TemplateCell::Open => std::mem::size_of::<TemplateCell>(),
                        })
                        .sum::<usize>()
            })
            .sum();
        let comps: usize = self
            .components
            .iter()
            .flatten()
            .map(Component::size_bytes)
            .sum();
        template + comps
    }

    /// Summary statistics.
    pub fn stats(&self) -> WsdStats {
        let live: Vec<&Component> = self.components.iter().flatten().collect();
        WsdStats {
            relations: self.relations.len(),
            template_tuples: self.relations.values().map(|t| t.tuples.len()).sum(),
            components: live.len(),
            component_rows: live.iter().map(|c| c.num_rows()).sum(),
            component_cells: live
                .iter()
                .map(|c| c.num_rows() * c.num_fields())
                .sum(),
            max_component_rows: live.iter().map(|c| c.num_rows()).max().unwrap_or(0),
        }
    }

    /// Drops tombstoned component slots, remapping the field map. Call
    /// after batches of merges to keep indices dense.
    pub fn compact(&mut self) {
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut new_comps: Vec<Option<Component>> = Vec::with_capacity(self.components.len());
        for (i, c) in self.components.drain(..).enumerate() {
            if let Some(c) = c {
                remap.insert(i, new_comps.len());
                new_comps.push(Some(c));
            }
        }
        self.components = new_comps;
        self.field_map.retain(|_, loc| remap.contains_key(&loc.0));
        for loc in self.field_map.values_mut() {
            loc.0 = remap[&loc.0];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)])
    }

    fn orset_wsd() -> Wsd {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        w.push_orset(
            "r",
            vec![
                OrSetCell::weighted(vec![(Value::Int(1), 0.4), (Value::Int(2), 0.6)]).unwrap(),
                OrSetCell::certain("x"),
            ],
        )
        .unwrap();
        w.push_orset(
            "r",
            vec![
                OrSetCell::certain(9i64),
                OrSetCell::uniform(vec![Value::str("p"), Value::str("q")]).unwrap(),
            ],
        )
        .unwrap();
        w
    }

    #[test]
    fn orset_construction_is_maximally_decomposed() {
        let w = orset_wsd();
        w.validate().unwrap();
        assert_eq!(w.num_components(), 2); // one per uncertain field
        assert_eq!(w.world_count().to_u64(), Some(4));
        let s = w.stats();
        assert_eq!(s.template_tuples, 2);
        assert_eq!(s.component_rows, 4);
    }

    #[test]
    fn enumeration_matches_orset_expansion() {
        let w = orset_wsd();
        let ws = w.to_worldset(100).unwrap();
        assert_eq!(ws.len(), 4);
        ws.validate().unwrap();
        // check one specific world: a=2, b tuple2 = q has p 0.6*0.5
        let found = ws.worlds().iter().any(|(world, p)| {
            let r = world.get("r").unwrap();
            r.len() == 2
                && r.rows().iter().any(|t| t[0] == Value::Int(2))
                && r.rows().iter().any(|t| t[1] == Value::str("q"))
                && (p - 0.3).abs() < 1e-12
        });
        assert!(found);
    }

    #[test]
    fn certain_tuples_cost_no_components() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        w.push_certain("r", vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(w.num_components(), 0);
        assert_eq!(w.world_count().to_u64(), Some(1));
        let ws = w.to_worldset(10).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.worlds()[0].0.get("r").unwrap().len(), 1);
    }

    #[test]
    fn merge_components_retargets_fields() {
        let mut w = orset_wsd();
        let live = w.live_components();
        let merged = w.merge_components(&live).unwrap();
        w.validate().unwrap();
        assert_eq!(w.num_components(), 1);
        assert_eq!(w.component(merged).unwrap().num_rows(), 4);
        // still the same world-set
        let ws = w.to_worldset(100).unwrap();
        assert_eq!(ws.len(), 4);
        let orig = orset_wsd().to_worldset(100).unwrap();
        assert!(ws.equivalent(&orig, 1e-9));
    }

    #[test]
    fn merge_single_component_is_noop() {
        let mut w = orset_wsd();
        let live = w.live_components();
        assert_eq!(w.merge_components(&live[..1]).unwrap(), live[0]);
        assert!(w.merge_components(&[]).is_err());
    }

    #[test]
    fn compact_after_merge() {
        let mut w = orset_wsd();
        let live = w.live_components();
        w.merge_components(&live).unwrap();
        w.compact();
        w.validate().unwrap();
        assert_eq!(w.components.len(), 1);
        assert_eq!(w.to_worldset(100).unwrap().len(), 4);
    }

    #[test]
    fn possible_values() {
        let w = orset_wsd();
        let tid = w.relation("r").unwrap().tuples[0].tid;
        let vals = w.possible_values("r", tid, 0).unwrap();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2)]);
        let vals_b = w.possible_values("r", tid, 1).unwrap();
        assert_eq!(vals_b, vec![Value::str("x")]);
    }

    #[test]
    fn typing_is_enforced() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        assert!(w.push_certain("r", vec![Value::str("bad"), Value::str("x")]).is_err());
        assert!(w.push_certain("r", vec![Value::Int(1)]).is_err());
        assert!(w
            .push_orset(
                "r",
                vec![
                    OrSetCell::uniform(vec![Value::Int(1), Value::str("bad")]).unwrap(),
                    OrSetCell::certain("x"),
                ],
            )
            .is_err());
        assert!(w.push_certain("missing", vec![]).is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        assert!(w.add_relation("r", schema()).is_err());
        w.rename_relation("r", "s").unwrap();
        assert!(w.relation("r").is_err());
        assert!(w.relation("s").is_ok());
    }

    #[test]
    fn enumeration_cap() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        for _ in 0..30 {
            w.push_orset(
                "r",
                vec![
                    OrSetCell::uniform(vec![Value::Int(0), Value::Int(1)]).unwrap(),
                    OrSetCell::certain("x"),
                ],
            )
            .unwrap();
        }
        assert_eq!(w.world_count().to_decimal(), (1u64 << 30).to_string());
        assert!(w.to_worldset(1000).is_err());
    }

    #[test]
    fn size_bytes_counts_components_and_template() {
        let w = orset_wsd();
        assert!(w.size_bytes() > 0);
        let mut certain = Wsd::new();
        certain.add_relation("r", schema()).unwrap();
        certain
            .push_certain("r", vec![Value::Int(1), Value::str("x")])
            .unwrap();
        assert!(certain.size_bytes() < w.size_bytes());
    }
}
