//! Probabilistic world-set decompositions.
//!
//! A [`Wsd`] stores a finite set of possible worlds — each world a complete
//! relational database — as:
//!
//! * per relation, a *template*: a list of template tuples whose fields are
//!   either **certain** values (stored inline, once) or **open** (defined by
//!   a component column), plus a hidden existence flag;
//! * a set of [`Component`]s, each defining values for a set of fields; the
//!   world-set is the relational product of the components: one world per
//!   combination of one row from each component, with probability the
//!   product of the chosen rows' probabilities (paper §2).
//!
//! "The main principle of WSDs is to store independent tuple fields in
//! separate components and dependent tuple fields within the same
//! component."
//!
//! # The field index
//!
//! Alongside the forward map *field → (component, column)* the WSD
//! maintains a **reverse index** *(component, column) → fields* that is
//! updated incrementally by every mutation ([`Wsd::add_component`],
//! [`Wsd::alias_field`], [`Wsd::merge_components`], [`Wsd::compact`], …).
//! Normalization and confidence clustering read component ownership
//! straight from this index instead of re-deriving it by scanning all
//! templates on every pass. Invariants (checked by [`Wsd::validate`]):
//! every forward entry appears in the reverse index at exactly its mapped
//! location, and every mapped field belongs to a live template tuple.
//!
//! # The dirty set
//!
//! Every mutation records the touched component indices in a **dirty set**;
//! [`crate::normalize::normalize`] visits only dirty components and their
//! templates, re-marking a component only when a pass actually changes it,
//! so an already-normalized region of the decomposition costs nothing.
//! [`crate::normalize::normalize_full`] marks everything dirty first and
//! is the full-fixpoint escape hatch (and oracle reference).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use maybms_relational::{Error, Relation, Result, Schema, Tuple, Value};
use maybms_worldset::{OrSetCell, World, WorldSet};

use crate::bigint::BigUint;
use crate::cell::Cell;
use crate::component::Component;
use crate::field::{Field, Tid};

/// A field of a template tuple: stored inline (certain in all worlds) or
/// defined by a component column (looked up through the WSD's field map).
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateCell {
    Certain(Value),
    Open,
}

/// Whether a template tuple exists in every world or only in the worlds
/// where its existence field is non-⊥.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Existence {
    Always,
    Open,
}

/// One template tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleTemplate {
    pub tid: Tid,
    pub cells: Vec<TemplateCell>,
    pub exists: Existence,
}

/// The template of one relation: its schema and template tuples.
#[derive(Debug, Clone)]
pub struct RelTemplate {
    pub schema: Schema,
    pub tuples: Vec<TupleTemplate>,
}

/// Summary statistics of a decomposition (used by experiment tables).
#[derive(Debug, Clone, PartialEq)]
pub struct WsdStats {
    pub relations: usize,
    pub template_tuples: usize,
    pub components: usize,
    pub component_rows: usize,
    pub component_cells: usize,
    pub max_component_rows: usize,
}

/// A probabilistic world-set decomposition over a multi-relation database.
#[derive(Debug, Clone)]
pub struct Wsd {
    pub(crate) relations: BTreeMap<String, RelTemplate>,
    /// Components with tombstones: merging replaces entries by `None`
    /// while keeping indices stable; [`Wsd::compact`] drops tombstones.
    pub(crate) components: Vec<Option<Component>>,
    /// field → (component index, column index). Many-to-one: derived tuples
    /// *alias* the columns of the tuples they were computed from, which is
    /// how correlations between query results and their inputs are kept.
    /// `pub(crate)` for the lossless snapshot codec ([`crate::codec`]).
    pub(crate) field_map: HashMap<Field, (usize, usize)>,
    /// Reverse index, aligned with `components`: `rev[c][col]` lists the
    /// fields currently mapped to `(c, col)`.
    pub(crate) rev: Vec<Vec<Vec<Field>>>,
    /// Components touched since the last incremental normalize.
    pub(crate) dirty: BTreeSet<usize>,
    pub(crate) next_tid: u64,
    /// Monotone mutation clock feeding the epoch counters below.
    pub(crate) clock: u64,
    /// Per-relation template epochs: the clock value of the last mutation
    /// that touched the relation's template (push/remove/rename). The
    /// statistics collector ([`crate::stats::WsdStats`]) uses these for
    /// cache invalidation, mirroring how the dirty set scopes incremental
    /// normalization.
    pub(crate) rel_epochs: BTreeMap<String, u64>,
    /// Clock value of the last component mutation (add/merge/alias/⊥
    /// writes/compaction). Stats of relations with open fields depend on
    /// component contents and are invalidated by this.
    pub(crate) comp_epoch: u64,
}

impl Default for Wsd {
    fn default() -> Self {
        Wsd::new()
    }
}

impl Wsd {
    pub fn new() -> Wsd {
        Wsd {
            relations: BTreeMap::new(),
            components: Vec::new(),
            field_map: HashMap::new(),
            rev: Vec::new(),
            dirty: BTreeSet::new(),
            next_tid: 0,
            clock: 0,
            rel_epochs: BTreeMap::new(),
            comp_epoch: 0,
        }
    }

    // ------------------------------------------------------------------
    // Epoch bookkeeping (statistics invalidation)
    // ------------------------------------------------------------------

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn touch_relation(&mut self, rel: &str) {
        let t = self.tick();
        self.rel_epochs.insert(rel.to_string(), t);
    }

    fn touch_components(&mut self) {
        self.comp_epoch = self.tick();
    }

    /// Epoch of the last template mutation of `rel` (0 if never mutated).
    /// Together with [`Wsd::component_epoch`] this keys the stats cache.
    pub fn relation_epoch(&self, rel: &str) -> u64 {
        self.rel_epochs.get(rel).copied().unwrap_or(0)
    }

    /// Epoch of the last component mutation (0 if none yet).
    pub fn component_epoch(&self) -> u64 {
        self.comp_epoch
    }

    /// Reassembles a decomposition from its raw parts — the snapshot
    /// codec's constructor ([`crate::codec::decode_wsd`]). The caller is
    /// responsible for running [`Wsd::validate`] on the result; this does
    /// no checking itself.
    pub(crate) fn from_parts(
        relations: BTreeMap<String, RelTemplate>,
        components: Vec<Option<Component>>,
        field_map: HashMap<Field, (usize, usize)>,
        rev: Vec<Vec<Vec<Field>>>,
        dirty: BTreeSet<usize>,
        next_tid: u64,
    ) -> Wsd {
        Wsd {
            relations,
            components,
            field_map,
            rev,
            dirty,
            next_tid,
            clock: 0,
            rel_epochs: BTreeMap::new(),
            comp_epoch: 0,
        }
    }

    // ------------------------------------------------------------------
    // Schema-level operations
    // ------------------------------------------------------------------

    /// Registers an empty relation.
    pub fn add_relation(&mut self, name: impl Into<String>, schema: Schema) -> Result<()> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(Error::DuplicateRelation(name));
        }
        self.touch_relation(&name);
        self.relations.insert(name, RelTemplate { schema, tuples: Vec::new() });
        Ok(())
    }

    pub fn relation(&self, name: &str) -> Result<&RelTemplate> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    pub fn remove_relation(&mut self, name: &str) -> Result<RelTemplate> {
        let t = self
            .relations
            .remove(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))?;
        self.touch_relation(name);
        Ok(t)
    }

    /// Renames a relation.
    pub fn rename_relation(&mut self, from: &str, to: impl Into<String>) -> Result<()> {
        let t = self.remove_relation(from)?;
        let to = to.into();
        if self.relations.contains_key(&to) {
            self.relations.insert(from.to_string(), t);
            return Err(Error::DuplicateRelation(to));
        }
        self.touch_relation(&to);
        self.relations.insert(to, t);
        Ok(())
    }

    /// Allocates a fresh tuple identifier. Needed when assembling a WSD by
    /// hand from components and templates (as `examples::medical_wsd` does);
    /// the or-set/certain push APIs call it internally.
    pub fn fresh_tid(&mut self) -> Tid {
        let t = Tid(self.next_tid);
        self.next_tid += 1;
        t
    }

    /// Pre-sizes a relation's template for `additional` more tuples —
    /// operators that know their output cardinality call this once instead
    /// of growing the vector push by push.
    pub(crate) fn reserve_tuples(&mut self, rel: &str, additional: usize) {
        if let Some(tpl) = self.relations.get_mut(rel) {
            tpl.tuples.reserve(additional);
        }
    }

    // ------------------------------------------------------------------
    // Tuple-level construction
    // ------------------------------------------------------------------

    /// Appends a certain tuple (all fields inline, exists in every world).
    pub fn push_certain(&mut self, rel: &str, values: Vec<Value>) -> Result<Tid> {
        let tid = self.fresh_tid();
        let tpl = self
            .relations
            .get_mut(rel)
            .ok_or_else(|| Error::UnknownRelation(rel.to_string()))?;
        if values.len() != tpl.schema.len() {
            return Err(Error::TypeError(format!(
                "tuple arity {} vs schema {}",
                values.len(),
                tpl.schema.len()
            )));
        }
        for (i, v) in values.iter().enumerate() {
            if !v.matches_type(tpl.schema.column(i).ty) {
                return Err(Error::TypeError(format!(
                    "value {v} not valid for column {}",
                    tpl.schema.column(i).name
                )));
            }
        }
        tpl.tuples.push(TupleTemplate {
            tid,
            cells: values.into_iter().map(TemplateCell::Certain).collect(),
            exists: Existence::Always,
        });
        self.touch_relation(rel);
        Ok(tid)
    }

    /// Appends an or-set tuple: certain fields are stored inline; each
    /// uncertain field becomes its own single-field component — the
    /// *maximal* decomposition, valid because or-set field choices are
    /// independent.
    pub fn push_orset(&mut self, rel: &str, cells: Vec<OrSetCell>) -> Result<Tid> {
        let tid = self.fresh_tid();
        {
            let tpl = self
                .relations
                .get(rel)
                .ok_or_else(|| Error::UnknownRelation(rel.to_string()))?;
            if cells.len() != tpl.schema.len() {
                return Err(Error::TypeError(format!(
                    "or-set tuple arity {} vs schema {}",
                    cells.len(),
                    tpl.schema.len()
                )));
            }
            for (i, c) in cells.iter().enumerate() {
                for (v, _) in c.alternatives() {
                    if !v.matches_type(tpl.schema.column(i).ty) {
                        return Err(Error::TypeError(format!(
                            "alternative {v} not valid for column {}",
                            tpl.schema.column(i).name
                        )));
                    }
                }
            }
        }
        let mut tcells = Vec::with_capacity(cells.len());
        for (i, c) in cells.into_iter().enumerate() {
            if let Some(v) = c.certain_value() {
                tcells.push(TemplateCell::Certain(v.clone()));
            } else {
                let field = Field::attr(tid, i as u32);
                let comp = Component::singleton(
                    field,
                    c.alternatives()
                        .iter()
                        .map(|(v, p)| (Cell::Val(v.clone()), *p))
                        .collect(),
                );
                self.add_component(comp);
                tcells.push(TemplateCell::Open);
            }
        }
        let tpl = self.relations.get_mut(rel).expect("checked above"); // maybms-lint: allow(no-panic-in-prod) -- presence was checked at the top of this function
        tpl.tuples.push(TupleTemplate {
            tid,
            cells: tcells,
            exists: Existence::Always,
        });
        self.touch_relation(rel);
        Ok(tid)
    }

    /// Appends a pre-built template tuple. The caller must have registered
    /// component columns for every `Open` cell (and for `Existence::Open`)
    /// via [`Wsd::add_component`] or [`Wsd::alias_field`].
    pub fn push_template(&mut self, rel: &str, t: TupleTemplate) -> Result<()> {
        let tpl = self
            .relations
            .get_mut(rel)
            .ok_or_else(|| Error::UnknownRelation(rel.to_string()))?;
        if t.cells.len() != tpl.schema.len() {
            return Err(Error::TypeError(format!(
                "template arity {} vs schema {}",
                t.cells.len(),
                tpl.schema.len()
            )));
        }
        tpl.tuples.push(t);
        self.touch_relation(rel);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Field map + reverse index
    // ------------------------------------------------------------------

    fn rev_insert(&mut self, f: Field, (c, col): (usize, usize)) {
        let cols = &mut self.rev[c];
        if col >= cols.len() {
            cols.resize_with(col + 1, Vec::new);
        }
        cols[col].push(f);
    }

    fn rev_remove(&mut self, f: Field, (c, col): (usize, usize)) {
        if let Some(cols) = self.rev.get_mut(c) {
            if let Some(v) = cols.get_mut(col) {
                if let Some(pos) = v.iter().position(|&g| g == f) {
                    v.swap_remove(pos);
                }
            }
        }
    }

    /// Makes `field` an alias for an existing component column. Used by
    /// query operators so result tuples share the columns of their inputs.
    /// Keeps the reverse index in sync and marks both the old and new
    /// component dirty.
    pub fn alias_field(&mut self, field: Field, loc: (usize, usize)) {
        if let Some(old) = self.field_map.insert(field, loc) {
            if old != loc {
                self.rev_remove(field, old);
                self.dirty.insert(old.0);
            } else {
                return;
            }
        }
        self.rev_insert(field, loc);
        self.dirty.insert(loc.0);
        self.touch_components();
    }

    /// Removes a field's mapping (if any), marking its component dirty.
    pub(crate) fn unmap_field(&mut self, field: Field) {
        if let Some(loc) = self.field_map.remove(&field) {
            self.rev_remove(field, loc);
            self.dirty.insert(loc.0);
            self.touch_components();
        }
    }

    /// Drops every mapping whose field fails `pred`, marking the affected
    /// components dirty.
    pub(crate) fn retain_fields(&mut self, mut pred: impl FnMut(&Field) -> bool) {
        let doomed: Vec<(Field, (usize, usize))> = self
            .field_map
            .iter()
            .filter(|(f, _)| !pred(f))
            .map(|(&f, &loc)| (f, loc))
            .collect();
        if doomed.is_empty() {
            return;
        }
        for (f, loc) in doomed {
            self.field_map.remove(&f);
            self.rev_remove(f, loc);
            self.dirty.insert(loc.0);
        }
        self.touch_components();
    }

    /// Test/tooling hook: forgets all field mappings.
    #[cfg(test)]
    pub(crate) fn clear_field_map(&mut self) {
        self.retain_fields(|_| false);
    }

    /// Location of a field, if open.
    pub fn field_loc(&self, field: Field) -> Option<(usize, usize)> {
        self.field_map.get(&field).copied()
    }

    /// The fields currently mapped to column `col` of component `c` — the
    /// reverse index read normalization and clustering are built on.
    pub fn fields_at(&self, c: usize, col: usize) -> &[Field] {
        self.rev
            .get(c)
            .and_then(|cols| cols.get(col))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Per-column field lists of component `c` (reverse index row).
    pub fn fields_of_component(&self, c: usize) -> &[Vec<Field>] {
        self.rev.get(c).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of field-map entries (all relations).
    pub fn num_mapped_fields(&self) -> usize {
        self.field_map.len()
    }

    // ------------------------------------------------------------------
    // Dirty-set bookkeeping
    // ------------------------------------------------------------------

    pub(crate) fn mark_dirty(&mut self, c: usize) {
        self.dirty.insert(c);
        self.touch_components();
    }

    /// Marks every live component dirty (full renormalization).
    pub(crate) fn mark_all_dirty(&mut self) {
        for (i, c) in self.components.iter().enumerate() {
            if c.is_some() {
                self.dirty.insert(i);
            }
        }
        self.touch_components();
    }

    /// Drains the dirty set, returning the live indices it contained.
    pub(crate) fn take_dirty(&mut self) -> Vec<usize> {
        let taken = std::mem::take(&mut self.dirty);
        taken
            .into_iter()
            .filter(|&i| self.components.get(i).map(Option::is_some).unwrap_or(false))
            .collect()
    }

    /// The live components currently marked dirty (peek, for stats/tests).
    pub fn dirty_components(&self) -> Vec<usize> {
        self.dirty
            .iter()
            .copied()
            .filter(|&i| self.components.get(i).map(Option::is_some).unwrap_or(false))
            .collect()
    }

    // ------------------------------------------------------------------
    // Component management
    // ------------------------------------------------------------------

    /// Registers a component; its fields become defined in the field map
    /// (and indexed in the reverse index). The new component is dirty.
    pub fn add_component(&mut self, c: Component) -> usize {
        let idx = self.components.len();
        self.rev.push(vec![Vec::new(); c.num_fields()]);
        let fields: Vec<Field> = c.fields().to_vec();
        self.components.push(Some(c));
        for (col, f) in fields.into_iter().enumerate() {
            self.alias_field(f, (idx, col));
        }
        self.dirty.insert(idx);
        self.touch_components();
        idx
    }

    pub fn component(&self, idx: usize) -> Option<&Component> {
        self.components.get(idx).and_then(|c| c.as_ref())
    }

    /// Mutable component access. Conservatively marks the component dirty —
    /// callers that only *read* should use [`Wsd::component`].
    pub fn component_mut(&mut self, idx: usize) -> Option<&mut Component> {
        if self.components.get(idx).map(Option::is_some).unwrap_or(false) {
            self.dirty.insert(idx);
            self.touch_components();
        }
        self.components.get_mut(idx).and_then(|c| c.as_mut())
    }

    /// Mutable access *without* dirty marking — normalization passes use
    /// this and mark explicitly only when they change something.
    pub(crate) fn component_mut_silent(&mut self, idx: usize) -> Option<&mut Component> {
        self.components.get_mut(idx).and_then(|c| c.as_mut())
    }

    /// Replaces a component slot (normalization/factorization internals).
    /// Dropping a component requires its reverse-index row to be empty.
    pub(crate) fn replace_component(&mut self, idx: usize, c: Option<Component>) {
        if c.is_none() {
            debug_assert!(
                self.rev[idx].iter().all(Vec::is_empty),
                "dropping component {idx} with mapped fields"
            );
            self.rev[idx].clear();
        }
        self.components[idx] = c;
        self.touch_components();
    }

    /// After a component was projected onto `keep` (old column indices, in
    /// the new order), rewrites the field map and reverse index of its
    /// surviving columns. Columns not in `keep` must be unreferenced.
    pub(crate) fn remap_columns(&mut self, idx: usize, keep: &[usize]) {
        let old_row = std::mem::take(&mut self.rev[idx]);
        let mut new_row: Vec<Vec<Field>> = vec![Vec::new(); keep.len()];
        for (new_col, &old_col) in keep.iter().enumerate() {
            let fields = old_row.get(old_col).cloned().unwrap_or_default();
            for &f in &fields {
                self.field_map.insert(f, (idx, new_col));
            }
            new_row[new_col] = fields;
        }
        debug_assert!(
            old_row
                .iter()
                .enumerate()
                .all(|(c, v)| keep.contains(&c) || v.is_empty()),
            "remap_columns dropped a referenced column of component {idx}"
        );
        self.rev[idx] = new_row;
        self.touch_components();
    }

    /// Indices of live (non-tombstoned) components.
    pub fn live_components(&self) -> Vec<usize> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
            .collect()
    }

    pub fn num_components(&self) -> usize {
        self.components.iter().filter(|c| c.is_some()).count()
    }

    /// Total component slots including tombstones — the length dense
    /// choice vectors must have.
    pub fn num_component_slots(&self) -> usize {
        self.components.len()
    }

    /// Whether any component slot is a tombstone (merged/dropped).
    pub fn has_tombstones(&self) -> bool {
        self.components.iter().any(Option::is_none)
    }

    /// Merges the given components into one (their relational product) and
    /// returns its index. All field-map entries pointing into the merged
    /// components are retargeted **through the reverse index** — O(fields
    /// of the merged components), not O(all fields). Duplicate indices are
    /// tolerated.
    pub fn merge_components(&mut self, indices: &[usize]) -> Result<usize> {
        let mut idxs: Vec<usize> = indices.to_vec();
        idxs.sort_unstable();
        idxs.dedup();
        if idxs.is_empty() {
            return Err(Error::InvalidExpr("merge of zero components".into()));
        }
        if idxs.len() == 1 {
            return Ok(idxs[0]);
        }
        // Take the parts (leaving tombstones) and compute column offsets.
        let mut parts: Vec<(usize, Component)> = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let c = self.components[i]
                .take()
                .ok_or_else(|| Error::InvalidExpr(format!("component {i} is dead")))?;
            parts.push((i, c));
        }
        let mut offsets: Vec<(usize, usize)> = Vec::with_capacity(parts.len());
        let mut acc = 0usize;
        for (i, c) in &parts {
            offsets.push((*i, acc));
            acc += c.num_fields();
        }
        let mut it = parts.into_iter();
        let (_, first) = it.next().expect("nonempty"); // maybms-lint: allow(no-panic-in-prod) -- callers pass a nonempty group; an empty one is a broken decomposition invariant
        let merged = it.fold(first, |a, (_, b)| a.product(&b));
        let width = merged.num_fields();

        let new_idx = self.components.len();
        self.components.push(Some(merged));
        self.rev.push(vec![Vec::new(); width]);
        // Retarget exactly the fields indexed under the merged parts.
        for &(old_idx, off) in &offsets {
            let old_cols = std::mem::take(&mut self.rev[old_idx]);
            for (col, fields) in old_cols.into_iter().enumerate() {
                for f in fields {
                    let new_loc = (new_idx, off + col);
                    self.field_map.insert(f, new_loc);
                    self.rev[new_idx][off + col].push(f);
                }
            }
            self.dirty.remove(&old_idx);
        }
        self.dirty.insert(new_idx);
        self.touch_components();
        Ok(new_idx)
    }

    /// Possible values of a tuple field: the certain value, or the distinct
    /// non-⊥ values of its component column.
    pub fn possible_values(&self, rel: &str, tid: Tid, pos: usize) -> Result<Vec<Value>> {
        let tpl = self.relation(rel)?;
        let t = tpl
            .tuples
            .iter()
            .find(|t| t.tid == tid)
            .ok_or_else(|| Error::InvalidExpr(format!("tuple {tid} not in {rel}")))?;
        Ok(match &t.cells[pos] {
            TemplateCell::Certain(v) => vec![v.clone()],
            TemplateCell::Open => {
                let (c, col) = self
                    .field_loc(Field::attr(tid, pos as u32))
                    .ok_or_else(|| Error::InvalidExpr(format!("unmapped open field {tid}.#{pos}")))?;
                let comp = self
                    .component(c)
                    .ok_or_else(|| Error::InvalidExpr(format!("dead component {c}")))?;
                comp.possible_values_col(col)
            }
        })
    }

    // ------------------------------------------------------------------
    // Semantics: world counting, enumeration, instantiation
    // ------------------------------------------------------------------

    /// The number of worlds represented: the product of the live
    /// components' row counts (exact, arbitrary precision). Distinct-world
    /// counts (merging equal databases) require enumeration.
    pub fn world_count(&self) -> BigUint {
        let mut n = BigUint::one();
        for c in self.components.iter().flatten() {
            n = n.mul_u64(c.num_rows() as u64);
        }
        n
    }

    /// Instantiates the world picked by `choice`: a **dense** row-index
    /// vector with one slot per component slot (`choice[c]` is the chosen
    /// row of component `c`; slots of dead components are ignored). No
    /// per-world allocation beyond the output relation itself.
    pub fn instantiate(&self, choice: &[usize]) -> Result<World> {
        if choice.len() < self.components.len() {
            return Err(Error::InvalidExpr(format!(
                "choice vector has {} slots for {} components",
                choice.len(),
                self.components.len()
            )));
        }
        let mut w = World::new();
        for (name, tpl) in &self.relations {
            let mut rel = Relation::empty(tpl.schema.clone());
            'tuples: for t in &tpl.tuples {
                // existence check
                if t.exists == Existence::Open {
                    let (c, col) = self
                        .field_loc(Field::exists(t.tid))
                        .ok_or_else(|| Error::InvalidExpr(format!("unmapped ∃ of {}", t.tid)))?;
                    if self.chosen_cell(c, col, choice)?.is_bottom() {
                        continue 'tuples;
                    }
                }
                let mut vals = Vec::with_capacity(t.cells.len());
                for (i, cell) in t.cells.iter().enumerate() {
                    match cell {
                        TemplateCell::Certain(v) => vals.push(v.clone()),
                        TemplateCell::Open => {
                            let (c, col) =
                                self.field_loc(Field::attr(t.tid, i as u32)).ok_or_else(|| {
                                    Error::InvalidExpr(format!("unmapped field {}.#{}", t.tid, i))
                                })?;
                            match self.chosen_cell(c, col, choice)? {
                                Cell::Val(v) => vals.push(v.clone()),
                                // ⊥ on any field means the tuple does not
                                // exist in this world.
                                Cell::Bottom => continue 'tuples,
                            }
                        }
                    }
                }
                rel.push_unchecked(Tuple::new(vals));
            }
            w.put(name.clone(), rel);
        }
        Ok(w)
    }

    fn chosen_cell<'a>(&'a self, comp: usize, col: usize, choice: &[usize]) -> Result<&'a Cell> {
        let c = self
            .component(comp)
            .ok_or_else(|| Error::InvalidExpr(format!("dead component {comp}")))?;
        let r = choice[comp];
        if r >= c.num_rows() {
            return Err(Error::InvalidExpr(format!(
                "row {r} out of range in component {comp}"
            )));
        }
        Ok(c.cell(r, col))
    }

    /// Enumerates the full world-set (all combinations of component rows).
    /// Fails if the combinatorial count exceeds `max_worlds` — enumeration
    /// is for oracle/testing scale only; that is the whole point of WSDs.
    /// Uses a single dense choice vector updated in place by the odometer:
    /// no per-world map allocation or rehashing.
    pub fn to_worldset(&self, max_worlds: usize) -> Result<WorldSet> {
        let live = self.live_components();
        let count = self.world_count();
        if count > BigUint::from_u64(max_worlds as u64) {
            return Err(Error::InvalidExpr(format!(
                "world-set too large to enumerate ({} worlds > cap {max_worlds})",
                count.summary()
            )));
        }
        let mut ws = WorldSet::default();
        let widths: Vec<usize> = live
            .iter()
            .map(|&i| self.component(i).expect("live").num_rows()) // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
            .collect();
        let mut choice = vec![0usize; self.components.len()];
        loop {
            let mut p = 1.0;
            for &c in &live {
                p *= self.component(c).expect("live").prob(choice[c]); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
            }
            ws.push(self.instantiate(&choice)?, p);

            let mut k = live.len();
            loop {
                if k == 0 {
                    return Ok(ws);
                }
                k -= 1;
                let c = live[k];
                choice[c] += 1;
                if choice[c] < widths[k] {
                    break;
                }
                choice[c] = 0;
            }
        }
    }

    // ------------------------------------------------------------------
    // Validation, accounting
    // ------------------------------------------------------------------

    /// Checks all structural invariants: component validity, field-map and
    /// reverse-index consistency, template arity and typing of certain
    /// cells, open cells mapped, existence fields mapped.
    pub fn validate(&self) -> Result<()> {
        for c in self.components.iter().flatten() {
            c.validate()?;
        }
        for (f, &(c, col)) in &self.field_map {
            let comp = self
                .component(c)
                .ok_or_else(|| Error::InvalidExpr(format!("field {f} maps to dead component {c}")))?;
            if col >= comp.num_fields() {
                return Err(Error::InvalidExpr(format!(
                    "field {f} maps to column {col} of a {}-column component",
                    comp.num_fields()
                )));
            }
            if !self.fields_at(c, col).contains(f) {
                return Err(Error::InvalidExpr(format!(
                    "field {f} missing from the reverse index at ({c}, {col})"
                )));
            }
        }
        let rev_count: usize = self.rev.iter().flatten().map(Vec::len).sum();
        if rev_count != self.field_map.len() {
            return Err(Error::InvalidExpr(format!(
                "reverse index holds {rev_count} entries for {} mapped fields",
                self.field_map.len()
            )));
        }
        for (name, tpl) in &self.relations {
            for t in &tpl.tuples {
                if t.cells.len() != tpl.schema.len() {
                    return Err(Error::TypeError(format!(
                        "tuple {} in {name} has arity {} vs schema {}",
                        t.tid,
                        t.cells.len(),
                        tpl.schema.len()
                    )));
                }
                for (i, cell) in t.cells.iter().enumerate() {
                    match cell {
                        TemplateCell::Certain(v) => {
                            if !v.matches_type(tpl.schema.column(i).ty) {
                                return Err(Error::TypeError(format!(
                                    "certain value {v} invalid for {name}.{}",
                                    tpl.schema.column(i).name
                                )));
                            }
                        }
                        TemplateCell::Open => {
                            if self.field_loc(Field::attr(t.tid, i as u32)).is_none() {
                                return Err(Error::InvalidExpr(format!(
                                    "open field {}.#{} of {name} is unmapped",
                                    t.tid, i
                                )));
                            }
                        }
                    }
                }
                if t.exists == Existence::Open
                    && self.field_loc(Field::exists(t.tid)).is_none()
                {
                    return Err(Error::InvalidExpr(format!(
                        "open existence of {} in {name} is unmapped",
                        t.tid
                    )));
                }
            }
        }
        Ok(())
    }

    /// Estimated bytes of the representation: inline certain values plus
    /// all component data (cells + probability columns). Comparable with
    /// [`Relation::size_bytes`] — the E1 overhead metric.
    pub fn size_bytes(&self) -> usize {
        let template: usize = self
            .relations
            .values()
            .flat_map(|tpl| tpl.tuples.iter())
            .map(|t| {
                std::mem::size_of::<TupleTemplate>()
                    + t.cells
                        .iter()
                        .map(|c| match c {
                            TemplateCell::Certain(v) => v.size_bytes(),
                            TemplateCell::Open => std::mem::size_of::<TemplateCell>(),
                        })
                        .sum::<usize>()
            })
            .sum();
        let comps: usize = self
            .components
            .iter()
            .flatten()
            .map(Component::size_bytes)
            .sum();
        template + comps
    }

    /// Summary statistics.
    pub fn stats(&self) -> WsdStats {
        let live: Vec<&Component> = self.components.iter().flatten().collect();
        WsdStats {
            relations: self.relations.len(),
            template_tuples: self.relations.values().map(|t| t.tuples.len()).sum(),
            components: live.len(),
            component_rows: live.iter().map(|c| c.num_rows()).sum(),
            component_cells: live
                .iter()
                .map(|c| c.num_rows() * c.num_fields())
                .sum(),
            max_component_rows: live.iter().map(|c| c.num_rows()).max().unwrap_or(0),
        }
    }

    /// Drops tombstoned component slots, remapping the field map, reverse
    /// index and dirty set, and garbage-collects each surviving
    /// component's interned-cell dictionaries ([`Component::compact`]).
    /// Call after batches of merges/deletes to keep indices dense and
    /// dictionaries tight.
    pub fn compact(&mut self) {
        for c in self.components.iter_mut().flatten() {
            c.compact();
        }
        let mut remap: Vec<Option<usize>> = vec![None; self.components.len()];
        let mut new_comps: Vec<Option<Component>> = Vec::with_capacity(self.components.len());
        let mut new_rev: Vec<Vec<Vec<Field>>> = Vec::with_capacity(self.rev.len());
        let old_rev = std::mem::take(&mut self.rev);
        for ((i, c), rev_row) in self.components.drain(..).enumerate().zip(old_rev) {
            if let Some(c) = c {
                remap[i] = Some(new_comps.len());
                new_comps.push(Some(c));
                new_rev.push(rev_row);
            }
        }
        self.components = new_comps;
        self.rev = new_rev;
        self.field_map.retain(|_, loc| remap[loc.0].is_some());
        for loc in self.field_map.values_mut() {
            loc.0 = remap[loc.0].expect("retained"); // maybms-lint: allow(no-panic-in-prod) -- retained components were assigned Some when the remap table was built above
        }
        self.dirty = std::mem::take(&mut self.dirty)
            .into_iter()
            .filter_map(|i| remap.get(i).copied().flatten())
            .collect();
        self.touch_components();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)])
    }

    fn orset_wsd() -> Wsd {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        w.push_orset(
            "r",
            vec![
                OrSetCell::weighted(vec![(Value::Int(1), 0.4), (Value::Int(2), 0.6)]).unwrap(),
                OrSetCell::certain("x"),
            ],
        )
        .unwrap();
        w.push_orset(
            "r",
            vec![
                OrSetCell::certain(9i64),
                OrSetCell::uniform(vec![Value::str("p"), Value::str("q")]).unwrap(),
            ],
        )
        .unwrap();
        w
    }

    #[test]
    fn orset_construction_is_maximally_decomposed() {
        let w = orset_wsd();
        w.validate().unwrap();
        assert_eq!(w.num_components(), 2); // one per uncertain field
        assert_eq!(w.world_count().to_u64(), Some(4));
        let s = w.stats();
        assert_eq!(s.template_tuples, 2);
        assert_eq!(s.component_rows, 4);
    }

    #[test]
    fn enumeration_matches_orset_expansion() {
        let w = orset_wsd();
        let ws = w.to_worldset(100).unwrap();
        assert_eq!(ws.len(), 4);
        ws.validate().unwrap();
        // check one specific world: a=2, b tuple2 = q has p 0.6*0.5
        let found = ws.worlds().iter().any(|(world, p)| {
            let r = world.get("r").unwrap();
            r.len() == 2
                && r.rows().iter().any(|t| t[0] == Value::Int(2))
                && r.rows().iter().any(|t| t[1] == Value::str("q"))
                && (p - 0.3).abs() < 1e-12
        });
        assert!(found);
    }

    #[test]
    fn certain_tuples_cost_no_components() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        w.push_certain("r", vec![Value::Int(1), Value::str("x")]).unwrap();
        assert_eq!(w.num_components(), 0);
        assert_eq!(w.world_count().to_u64(), Some(1));
        let ws = w.to_worldset(10).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.worlds()[0].0.get("r").unwrap().len(), 1);
    }

    #[test]
    fn merge_components_retargets_fields() {
        let mut w = orset_wsd();
        let live = w.live_components();
        let merged = w.merge_components(&live).unwrap();
        w.validate().unwrap();
        assert_eq!(w.num_components(), 1);
        assert_eq!(w.component(merged).unwrap().num_rows(), 4);
        // still the same world-set
        let ws = w.to_worldset(100).unwrap();
        assert_eq!(ws.len(), 4);
        let orig = orset_wsd().to_worldset(100).unwrap();
        assert!(ws.equivalent(&orig, 1e-9));
    }

    #[test]
    fn merge_single_component_is_noop() {
        let mut w = orset_wsd();
        let live = w.live_components();
        assert_eq!(w.merge_components(&live[..1]).unwrap(), live[0]);
        assert!(w.merge_components(&[]).is_err());
    }

    #[test]
    fn compact_after_merge() {
        let mut w = orset_wsd();
        let live = w.live_components();
        w.merge_components(&live).unwrap();
        w.compact();
        w.validate().unwrap();
        assert_eq!(w.components.len(), 1);
        assert_eq!(w.to_worldset(100).unwrap().len(), 4);
    }

    #[test]
    fn reverse_index_tracks_mutations() {
        let mut w = orset_wsd();
        let live = w.live_components();
        let t0 = w.relation("r").unwrap().tuples[0].tid;
        assert_eq!(w.fields_at(live[0], 0), &[Field::attr(t0, 0)]);
        // aliasing adds a second entry at the same location
        let alias = Field::attr(Tid(99), 0);
        w.alias_field(alias, (live[0], 0));
        assert_eq!(w.fields_at(live[0], 0).len(), 2);
        // re-aliasing moves it
        w.alias_field(alias, (live[1], 0));
        assert_eq!(w.fields_at(live[0], 0).len(), 1);
        assert!(w.fields_at(live[1], 0).contains(&alias));
        // merging retargets the reverse index wholesale
        let merged = w.merge_components(&live).unwrap();
        assert!(w.fields_at(merged, 0).contains(&Field::attr(t0, 0)));
        assert!(w.fields_at(merged, 1).contains(&alias));
        w.unmap_field(alias);
        w.validate().unwrap();
    }

    #[test]
    fn dirty_set_marks_touched_components() {
        let mut w = orset_wsd();
        let live = w.live_components();
        assert_eq!(w.dirty_components(), live, "construction marks dirty");
        let drained = w.take_dirty();
        assert_eq!(drained, live);
        assert!(w.dirty_components().is_empty());
        // mutable access re-marks
        let _ = w.component_mut(live[1]);
        assert_eq!(w.dirty_components(), vec![live[1]]);
    }

    #[test]
    fn possible_values() {
        let w = orset_wsd();
        let tid = w.relation("r").unwrap().tuples[0].tid;
        let vals = w.possible_values("r", tid, 0).unwrap();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2)]);
        let vals_b = w.possible_values("r", tid, 1).unwrap();
        assert_eq!(vals_b, vec![Value::str("x")]);
    }

    #[test]
    fn typing_is_enforced() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        assert!(w.push_certain("r", vec![Value::str("bad"), Value::str("x")]).is_err());
        assert!(w.push_certain("r", vec![Value::Int(1)]).is_err());
        assert!(w
            .push_orset(
                "r",
                vec![
                    OrSetCell::uniform(vec![Value::Int(1), Value::str("bad")]).unwrap(),
                    OrSetCell::certain("x"),
                ],
            )
            .is_err());
        assert!(w.push_certain("missing", vec![]).is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        assert!(w.add_relation("r", schema()).is_err());
        w.rename_relation("r", "s").unwrap();
        assert!(w.relation("r").is_err());
        assert!(w.relation("s").is_ok());
    }

    #[test]
    fn enumeration_cap() {
        let mut w = Wsd::new();
        w.add_relation("r", schema()).unwrap();
        for _ in 0..30 {
            w.push_orset(
                "r",
                vec![
                    OrSetCell::uniform(vec![Value::Int(0), Value::Int(1)]).unwrap(),
                    OrSetCell::certain("x"),
                ],
            )
            .unwrap();
        }
        assert_eq!(w.world_count().to_decimal(), (1u64 << 30).to_string());
        assert!(w.to_worldset(1000).is_err());
    }

    #[test]
    fn size_bytes_counts_components_and_template() {
        let w = orset_wsd();
        assert!(w.size_bytes() > 0);
        let mut certain = Wsd::new();
        certain.add_relation("r", schema()).unwrap();
        certain
            .push_certain("r", vec![Value::Int(1), Value::str("x")])
            .unwrap();
        assert!(certain.size_bytes() < w.size_bytes());
    }
}
