//! Physical plans: the executable operator DAG compiled from a logical
//! [`Query`] tree.
//!
//! The logical algebra says *what* to compute; the physical plan fixes
//! *how*: which join strategy runs (hash-partitioned vs nested-loop),
//! where pushed-down predicates sit, and whether a `DISTINCT` needs any
//! work at all. Compilation is rule-based, mirroring the demo's pitch of
//! "optimized query plans produced by MayBMS":
//!
//! * **Equi-join detection** — a join whose predicate contains an
//!   equality conjunct with one column from each side compiles to
//!   [`PhysOp::HashJoin`] keyed on that conjunct; anything else falls
//!   back to [`PhysOp::NestedLoopJoin`].
//! * **Predicate placement** — selections arrive already split and
//!   pushed down by the logical optimizer; compilation keeps them as
//!   [`PhysOp::Filter`] nodes exactly where the optimizer put them.
//! * **Dedup elision** — worlds are sets, so `DISTINCT` over an input
//!   that cannot carry duplicate templates (scans, filters, …) compiles
//!   to nothing; over duplicate-capable inputs (projections, unions,
//!   joins) it becomes an explicit [`PhysOp::Dedup`] that drops
//!   redundant fully-certain duplicate templates.

use maybms_relational::{CmpOp, Error, Expr, Result, Schema};

use crate::algebra::Query;
use crate::wsd::Wsd;

/// A physical operator node. Each node evaluates to a relation inside
/// the working decomposition (see [`super::Executor`]).
#[derive(Debug, Clone)]
pub enum PhysOp {
    /// Reads a base relation's template.
    SeqScan { rel: String },
    /// σ: marks failing rows ⊥ (never deletes — paper §2).
    Filter { input: Box<PhysOp>, pred: Expr },
    /// π onto named columns.
    Project { input: Box<PhysOp>, cols: Vec<String> },
    /// Hash-partitioned equi-join: builds buckets on the right side's
    /// possible key values, probes with the left.
    HashJoin {
        left: Box<PhysOp>,
        right: Box<PhysOp>,
        pred: Expr,
        /// The detected cross-side equality conjunct `(left col, right col)`.
        key: (String, String),
    },
    /// The θ-join fallback when no cross-side equality conjunct exists.
    NestedLoopJoin { left: Box<PhysOp>, right: Box<PhysOp>, pred: Expr },
    /// Cartesian product.
    CrossProduct { left: Box<PhysOp>, right: Box<PhysOp> },
    /// Set union (template concatenation).
    Union { left: Box<PhysOp>, right: Box<PhysOp> },
    /// Set difference (per-world existence arbitration).
    Difference { left: Box<PhysOp>, right: Box<PhysOp> },
    /// Drops duplicate fully-certain templates; open templates pass
    /// through untouched (their correlations make them distinct).
    Dedup { input: Box<PhysOp> },
    /// Column rename.
    Rename { input: Box<PhysOp>, from: String, to: String },
    /// Prefixes every column (`FROM r AS a`).
    Qualify { input: Box<PhysOp>, prefix: String },
}

/// A compiled physical plan.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub root: PhysOp,
}

/// The inferred output schema of a logical plan node. This is the single
/// schema-inference implementation; the SQL optimizer delegates here.
pub fn schema_of(q: &Query, wsd: &Wsd) -> Result<Schema> {
    Ok(match q {
        Query::Table(n) => wsd.relation(n)?.schema.clone(),
        Query::Select(i, _) | Query::Distinct(i) => schema_of(i, wsd)?,
        Query::Project(i, cols) => {
            let s = schema_of(i, wsd)?;
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            s.project(&names)?
        }
        Query::Product(a, b) | Query::Join(a, b, _) => {
            schema_of(a, wsd)?.concat(&schema_of(b, wsd)?)
        }
        Query::Union(a, _) | Query::Difference(a, _) => schema_of(a, wsd)?,
        Query::Rename(i, from, to) => schema_of(i, wsd)?.rename(from, to)?,
        Query::Qualify(i, p) => schema_of(i, wsd)?.qualify(p),
    })
}

/// Compiles an (optimized) logical query into a physical plan against
/// the catalog of `wsd`.
pub fn compile(q: &Query, wsd: &Wsd) -> Result<PhysicalPlan> {
    Ok(PhysicalPlan { root: compile_node(q, wsd)? })
}

fn compile_node(q: &Query, wsd: &Wsd) -> Result<PhysOp> {
    Ok(match q {
        Query::Table(n) => {
            wsd.relation(n)?; // must exist at plan time
            PhysOp::SeqScan { rel: n.clone() }
        }
        Query::Select(i, p) => PhysOp::Filter {
            input: Box::new(compile_node(i, wsd)?),
            pred: p.clone(),
        },
        Query::Project(i, cols) => {
            // plan-time schema check: reject unknown columns here, like
            // the logical interpreter does at runtime
            let s = schema_of(i, wsd)?;
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            s.project(&names)?;
            PhysOp::Project {
                input: Box::new(compile_node(i, wsd)?),
                cols: cols.clone(),
            }
        }
        Query::Product(a, b) => PhysOp::CrossProduct {
            left: Box::new(compile_node(a, wsd)?),
            right: Box::new(compile_node(b, wsd)?),
        },
        Query::Join(a, b, p) => {
            let left = Box::new(compile_node(a, wsd)?);
            let right = Box::new(compile_node(b, wsd)?);
            let sa = schema_of(a, wsd)?;
            let sb = schema_of(b, wsd)?;
            match cross_equality(p, &sa, &sb) {
                Some(key) => PhysOp::HashJoin { left, right, pred: p.clone(), key },
                None => PhysOp::NestedLoopJoin { left, right, pred: p.clone() },
            }
        }
        Query::Union(a, b) => {
            let sa = schema_of(a, wsd)?;
            let sb = schema_of(b, wsd)?;
            if sa.len() != sb.len() {
                return Err(Error::InvalidExpr(format!(
                    "union arity mismatch: {} vs {}",
                    sa.len(),
                    sb.len()
                )));
            }
            PhysOp::Union {
                left: Box::new(compile_node(a, wsd)?),
                right: Box::new(compile_node(b, wsd)?),
            }
        }
        Query::Difference(a, b) => PhysOp::Difference {
            left: Box::new(compile_node(a, wsd)?),
            right: Box::new(compile_node(b, wsd)?),
        },
        Query::Distinct(i) => {
            let input = compile_node(i, wsd)?;
            if set_shaped(i) {
                input // elided: the input cannot carry duplicate templates
            } else {
                PhysOp::Dedup { input: Box::new(input) }
            }
        }
        Query::Rename(i, f, t) => {
            schema_of(q, wsd)?; // rejects unknown source columns at plan time
            PhysOp::Rename {
                input: Box::new(compile_node(i, wsd)?),
                from: f.clone(),
                to: t.clone(),
            }
        }
        Query::Qualify(i, p) => PhysOp::Qualify {
            input: Box::new(compile_node(i, wsd)?),
            prefix: p.clone(),
        },
    })
}

/// Whether the logical node's output is already set-shaped at the
/// template level: no operator below it can have introduced duplicate
/// templates. Projections, unions, joins and products can; scans,
/// filters, renames and differences cannot.
fn set_shaped(q: &Query) -> bool {
    match q {
        Query::Table(_) | Query::Distinct(_) => true,
        Query::Select(i, _) | Query::Rename(i, _, _) | Query::Qualify(i, _) => set_shaped(i),
        Query::Difference(a, _) => set_shaped(a),
        Query::Project(..) | Query::Product(..) | Query::Join(..) | Query::Union(..) => false,
    }
}

/// Finds the first equality conjunct `l = r` with `l` only in the left
/// schema and `r` only in the right (or flipped) — the hash key.
fn cross_equality(pred: &Expr, left: &Schema, right: &Schema) -> Option<(String, String)> {
    for c in pred.conjuncts() {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                let (a_l, a_r) = (left.contains(ca), right.contains(ca));
                let (b_l, b_r) = (left.contains(cb), right.contains(cb));
                if a_l && !a_r && b_r && !b_l {
                    return Some((ca.clone(), cb.clone()));
                }
                if b_l && !b_r && a_r && !a_l {
                    return Some((cb.clone(), ca.clone()));
                }
            }
        }
    }
    None
}

/// Renders a physical plan for `EXPLAIN`.
pub fn explain_physical(plan: &PhysicalPlan) -> String {
    explain_physical_annotated(plan, |_| String::new())
}

/// [`explain_physical`] with a per-node annotation appended to each
/// line. The annotator is called in pre-order (node before children,
/// left child before right) — the same order [`super::Executor`]'s
/// traced run numbers its nodes, so estimated and actual cardinalities
/// line up.
pub fn explain_physical_annotated(
    plan: &PhysicalPlan,
    mut annot: impl FnMut(&PhysOp) -> String,
) -> String {
    let mut out = String::new();
    render(&plan.root, 0, &mut out, &mut annot);
    out
}

fn render(op: &PhysOp, depth: usize, out: &mut String, annot: &mut dyn FnMut(&PhysOp) -> String) {
    let pad = "  ".repeat(depth);
    let note = annot(op);
    match op {
        PhysOp::SeqScan { rel } => out.push_str(&format!("{pad}SeqScan {rel}{note}\n")),
        PhysOp::Filter { input, pred } => {
            out.push_str(&format!("{pad}Filter {pred}{note}\n"));
            render(input, depth + 1, out, annot);
        }
        PhysOp::Project { input, cols } => {
            out.push_str(&format!("{pad}Project [{}]{note}\n", cols.join(", ")));
            render(input, depth + 1, out, annot);
        }
        PhysOp::HashJoin { left, right, pred, key } => {
            out.push_str(&format!(
                "{pad}HashJoin [{} = {}] on {pred}{note}\n",
                key.0, key.1
            ));
            render(left, depth + 1, out, annot);
            render(right, depth + 1, out, annot);
        }
        PhysOp::NestedLoopJoin { left, right, pred } => {
            out.push_str(&format!("{pad}NestedLoopJoin on {pred}{note}\n"));
            render(left, depth + 1, out, annot);
            render(right, depth + 1, out, annot);
        }
        PhysOp::CrossProduct { left, right } => {
            out.push_str(&format!("{pad}CrossProduct{note}\n"));
            render(left, depth + 1, out, annot);
            render(right, depth + 1, out, annot);
        }
        PhysOp::Union { left, right } => {
            out.push_str(&format!("{pad}Union{note}\n"));
            render(left, depth + 1, out, annot);
            render(right, depth + 1, out, annot);
        }
        PhysOp::Difference { left, right } => {
            out.push_str(&format!("{pad}Difference{note}\n"));
            render(left, depth + 1, out, annot);
            render(right, depth + 1, out, annot);
        }
        PhysOp::Dedup { input } => {
            out.push_str(&format!("{pad}Dedup{note}\n"));
            render(input, depth + 1, out, annot);
        }
        PhysOp::Rename { input, from, to } => {
            out.push_str(&format!("{pad}Rename {from} -> {to}{note}\n"));
            render(input, depth + 1, out, annot);
        }
        PhysOp::Qualify { input, prefix } => {
            out.push_str(&format!("{pad}Qualify {prefix}{note}\n"));
            render(input, depth + 1, out, annot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::medical_wsd;
    use maybms_relational::{ColumnType, Value};

    fn two_table_wsd() -> Wsd {
        let mut w = medical_wsd();
        w.add_relation(
            "T",
            Schema::new(vec![("tname", ColumnType::Str), ("cost", ColumnType::Int)]),
        )
        .unwrap();
        w.push_certain("T", vec![Value::str("ultrasound"), Value::Int(120)]).unwrap();
        w
    }

    #[test]
    fn equi_join_compiles_to_hash_join() {
        let w = two_table_wsd();
        let q = Query::table("R").join(
            Query::table("T"),
            Expr::col("test").eq(Expr::col("tname")).and(Expr::col("cost").gt(Expr::lit(10i64))),
        );
        let plan = compile(&q, &w).unwrap();
        let PhysOp::HashJoin { key, .. } = &plan.root else {
            panic!("expected HashJoin, got {:?}", plan.root)
        };
        assert_eq!(key, &("test".to_string(), "tname".to_string()));
        let txt = explain_physical(&plan);
        assert!(txt.contains("HashJoin [test = tname]"), "{txt}");
        assert!(txt.contains("SeqScan R"), "{txt}");
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let w = two_table_wsd();
        let q = Query::table("R").join(
            Query::table("T"),
            Expr::col("test").lt(Expr::col("tname")),
        );
        let plan = compile(&q, &w).unwrap();
        assert!(matches!(plan.root, PhysOp::NestedLoopJoin { .. }), "{:?}", plan.root);
    }

    #[test]
    fn same_side_equality_is_not_a_hash_key() {
        let w = two_table_wsd();
        // both columns on the left side: no partitioning possible
        let q = Query::table("R").join(
            Query::table("T"),
            Expr::col("diagnosis").eq(Expr::col("test")),
        );
        let plan = compile(&q, &w).unwrap();
        assert!(matches!(plan.root, PhysOp::NestedLoopJoin { .. }));
    }

    #[test]
    fn distinct_elided_over_set_shaped_input() {
        let w = medical_wsd();
        let q = Query::table("R")
            .select(Expr::col("diagnosis").eq(Expr::lit("obesity")))
            .distinct();
        let plan = compile(&q, &w).unwrap();
        assert!(matches!(plan.root, PhysOp::Filter { .. }), "{:?}", plan.root);

        let q2 = Query::table("R").project(["diagnosis"]).distinct();
        let plan2 = compile(&q2, &w).unwrap();
        assert!(matches!(plan2.root, PhysOp::Dedup { .. }), "{:?}", plan2.root);
    }

    #[test]
    fn compile_rejects_unknown_names_at_plan_time() {
        let w = medical_wsd();
        assert!(compile(&Query::table("missing"), &w).is_err());
        assert!(compile(&Query::table("R").project(["nope"]), &w).is_err());
    }

    #[test]
    fn schema_inference_matches_catalog() {
        let w = two_table_wsd();
        let q = Query::table("R").product(Query::table("T"));
        let s = schema_of(&q, &w).unwrap();
        assert_eq!(s.len(), 5);
        assert!(schema_of(&Query::table("missing"), &w).is_err());
    }
}
