//! Batch-at-a-time vectorized operators over code columns.
//!
//! The tuple-at-a-time operators in [`crate::algebra`] re-derive
//! everything per template tuple: predicate evaluation clones referenced
//! `Value`s into a fresh map per tuple, the hash join buckets and probes
//! on owned `Value` keys, and dedup hashes whole value rows. But the
//! decomposition already stores relations *columnar and interned* — each
//! component column is a `u32` code per row plus a small dictionary — so
//! a batch of template tuples can be processed as **code columns**:
//!
//! * [`encode`] snapshots a relation into per-column dictionaries of
//!   distinct certain values plus one `u32` code per row per column
//!   ([`OPEN_CODE`] marks component-backed cells), and a per-row
//!   `fully_static` flag (all cells certain, existence `Always`).
//! * [`select_vec`] decides the predicate **once per distinct code key**
//!   over the referenced columns (a memo keyed by packed codes) instead
//!   of once per row, producing a selection vector; surviving
//!   fully-static rows are materialized in parallel morsels through the
//!   [`WorkerPool`] and appended serially in input order.
//! * [`join_vec`] translates both sides' key columns into one shared
//!   dense code space (one hash per *distinct* value, not per row),
//!   buckets right rows into a flat `Vec<Vec<usize>>` indexed by code,
//!   probes in parallel with integer compares only, and memoizes the
//!   residual predicate per distinct code-key pair. Fully-static pairs
//!   take a branch-light emit path whose cells are built in parallel
//!   shards; pairs touching open fields fall back to the tuple-at-a-time
//!   `emit_pair` reference.
//! * [`project_vec`] and [`dedup_vec`] fast-path fully-static rows
//!   (direct cell builds; `Box<[u32]>` code keys instead of value rows).
//!
//! **Determinism.** Every parallel phase is a read-only
//! [`WorkerPool::map`] (order-preserving at any worker count) and every
//! mutation of the decomposition happens in a serial phase that walks
//! rows/pairs in the same order as the sequential reference — so the
//! output decomposition is identical at worker counts 1, 2 and N. The
//! tuple-at-a-time operators remain the property-test oracle
//! (`tests/oracle_properties.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use maybms_obs::Counter;
use maybms_relational::{Expr, Result, Value};

use crate::algebra::common::{
    bind_pred, emit_passthrough, eval_partial, possible_values_of, snapshot, TupleInfo,
};
use crate::algebra::join::{emit_pair, equality_pairs};
use crate::algebra::join_op_in;
use crate::algebra::project::project_tuple;
use crate::algebra::select::select_tuple_dynamic;
use crate::wsd::{Existence, TemplateCell, TupleTemplate, Wsd};

use super::pool::WorkerPool;

/// Sentinel code for open (component-backed) cells in an encoded batch.
pub const OPEN_CODE: u32 = u32::MAX;

/// Vectorized-operator counters, resolved once. Memo decisions and
/// fallback rows happen in the serial phases, so these totals are
/// identical at every worker count.
struct VecMetrics {
    memo_hits: Arc<Counter>,
    memo_misses: Arc<Counter>,
    /// Rows/pairs that left the batch fast path for the tuple-at-a-time
    /// reference (open cells, open existence, or residual open fields).
    fallback_rows: Arc<Counter>,
    /// Joins with no cross-side equality conjunct, delegated wholesale to
    /// the nested-loop reference.
    nested_fallbacks: Arc<Counter>,
}

fn metrics() -> &'static VecMetrics {
    static M: OnceLock<VecMetrics> = OnceLock::new();
    M.get_or_init(|| VecMetrics {
        memo_hits: maybms_obs::counter("exec.vec.memo_hits"),
        memo_misses: maybms_obs::counter("exec.vec.memo_misses"),
        fallback_rows: maybms_obs::counter("exec.vec.fallback_rows"),
        nested_fallbacks: maybms_obs::counter("exec.vec.nested_fallbacks"),
    })
}

/// A relation snapshot encoded as code columns: per column, a dictionary
/// of distinct certain values and one `u32` code per row ([`OPEN_CODE`]
/// for open cells). Dictionary codes agree with SQL equality on non-NULL
/// values because `Value`'s `Eq`/`Hash` do.
pub struct Encoded {
    /// The snapshotted template tuples, for slow paths and aliasing.
    pub(crate) tuples: Vec<TupleInfo>,
    /// The relation schema.
    pub schema: maybms_relational::Schema,
    /// Column-major codes: `codes[col][row]`.
    pub codes: Vec<Vec<u32>>,
    /// Per-column dictionaries: `dicts[col][code]` is the value.
    pub dicts: Vec<Vec<Value>>,
    /// Rows whose cells are all certain and whose existence is `Always`.
    pub fully_static: Vec<bool>,
}

impl Encoded {
    /// Number of encoded rows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The value of a certain cell by (col, row) codes.
    fn value(&self, col: usize, row: usize) -> &Value {
        &self.dicts[col][self.codes[col][row] as usize]
    }
}

/// Snapshots and encodes a relation into code columns.
pub fn encode(wsd: &Wsd, rel: &str) -> Result<Encoded> {
    let (schema, tuples) = snapshot(wsd, rel)?;
    let ncols = schema.len();
    let nrows = tuples.len();
    let mut codes: Vec<Vec<u32>> = (0..ncols).map(|_| Vec::with_capacity(nrows)).collect();
    let mut dicts: Vec<Vec<Value>> = vec![Vec::new(); ncols];
    let mut interner: Vec<HashMap<Value, u32>> = vec![HashMap::new(); ncols];
    let mut fully_static = Vec::with_capacity(nrows);
    for t in &tuples {
        let mut is_static = t.exists == Existence::Always;
        for (c, cell) in t.cells.iter().enumerate() {
            match cell {
                TemplateCell::Certain(v) => {
                    let code = match interner[c].get(v) {
                        Some(&code) => code,
                        None => {
                            let code = dicts[c].len() as u32;
                            dicts[c].push(v.clone());
                            interner[c].insert(v.clone(), code);
                            code
                        }
                    };
                    codes[c].push(code);
                }
                TemplateCell::Open => {
                    is_static = false;
                    codes[c].push(OPEN_CODE);
                }
            }
        }
        fully_static.push(is_static);
    }
    Ok(Encoded { tuples, schema, codes, dicts, fully_static })
}

/// Per-row emit decision of the vectorized filter.
#[derive(Clone, Copy, PartialEq)]
enum Keep {
    /// Statically rejected.
    Drop,
    /// Statically accepted, fully static: batch-built cells.
    Fast,
    /// Statically accepted but the tuple has open cells or open
    /// existence elsewhere: per-tuple alias emit.
    Alias,
    /// Predicate touches open fields: dynamic per-tuple path.
    Dynamic,
}

/// Vectorized σ_pred(input) → out.
///
/// Rows whose referenced columns are all certain are decided via a memo
/// keyed by their packed predicate-column codes — one evaluation per
/// *distinct* key, not per row. Surviving fully-static rows have their
/// output cells built in parallel morsels; all rows are then appended
/// serially in input order (open-field rows through the tuple-at-a-time
/// dynamic path), so the result matches [`crate::algebra::select_op`]'s
/// world semantics and is deterministic at every worker count.
pub fn select_vec(
    wsd: &mut Wsd,
    input: &str,
    pred: &Expr,
    out: &str,
    pool: &WorkerPool,
) -> Result<()> {
    let enc = encode(wsd, input)?;
    let (bound, positions) = bind_pred(pred, &enc.schema)?;
    wsd.add_relation(out, enc.schema.clone())?;
    let arity = enc.schema.len();
    let n = enc.len();
    let m = metrics();

    // Phase 1 (serial, branch-light): selection vector via memoized
    // predicate decisions on packed code keys.
    let mut memo: HashMap<Box<[u32]>, bool> = HashMap::new();
    let mut keep: Vec<Keep> = Vec::with_capacity(n);
    let mut key: Vec<u32> = Vec::with_capacity(positions.len());
    for row in 0..n {
        key.clear();
        let mut all_certain = true;
        for &p in &positions {
            let c = enc.codes[p][row];
            if c == OPEN_CODE {
                all_certain = false;
                break;
            }
            key.push(c);
        }
        if !all_certain {
            m.fallback_rows.inc();
            keep.push(Keep::Dynamic);
            continue;
        }
        let pass = match memo.get(key.as_slice()) {
            Some(&b) => {
                m.memo_hits.inc();
                b
            }
            None => {
                m.memo_misses.inc();
                let mut vals = HashMap::with_capacity(positions.len());
                for (i, &p) in positions.iter().enumerate() {
                    vals.insert(p, enc.dicts[p][key[i] as usize].clone());
                }
                let b = eval_partial(&bound, arity, &vals)?;
                memo.insert(key.clone().into_boxed_slice(), b);
                b
            }
        };
        if pass && !enc.fully_static[row] {
            m.fallback_rows.inc();
        }
        keep.push(match (pass, enc.fully_static[row]) {
            (false, _) => Keep::Drop,
            (true, true) => Keep::Fast,
            (true, false) => Keep::Alias,
        });
    }

    // Phase 2 (parallel): build output cells for the fast rows in
    // per-worker morsels, merged in input order by WorkerPool::map.
    let fast: Vec<usize> = (0..n).filter(|&r| keep[r] == Keep::Fast).collect();
    let built: Vec<Vec<TemplateCell>> = pool.map(&fast, |_, &r| {
        (0..arity).map(|c| TemplateCell::Certain(enc.value(c, r).clone())).collect()
    });

    // Phase 3 (serial, in input order): append.
    wsd.reserve_tuples(out, fast.len());
    let mut built = built.into_iter();
    for (row, k) in keep.iter().enumerate() {
        match k {
            Keep::Drop => {}
            Keep::Fast => {
                let tid = wsd.fresh_tid();
                let cells = built.next().expect("one build per fast row"); // maybms-lint: allow(no-panic-in-prod) -- the build iterator was constructed with exactly one entry per matched row
                wsd.push_template(out, TupleTemplate { tid, cells, exists: Existence::Always })?;
            }
            Keep::Alias => emit_passthrough(wsd, &enc.tuples[row], out)?,
            Keep::Dynamic => {
                select_tuple_dynamic(wsd, &enc.tuples[row], &bound, &positions, arity, out)?
            }
        }
    }
    Ok(())
}

/// Vectorized π_cols(input) → out: fully-static rows get direct cell
/// builds (in parallel morsels); rows with open fields go through the
/// tuple-at-a-time path, which handles ⊥-capable dropped columns.
pub fn project_vec(
    wsd: &mut Wsd,
    input: &str,
    cols: &[&str],
    out: &str,
    pool: &WorkerPool,
) -> Result<()> {
    let enc = encode(wsd, input)?;
    let out_schema = enc.schema.project(cols)?;
    let keep_positions: Vec<usize> = cols
        .iter()
        .map(|c| enc.schema.index_of(c))
        .collect::<Result<_>>()?;
    wsd.add_relation(out, out_schema)?;

    let fast: Vec<usize> = (0..enc.len()).filter(|&r| enc.fully_static[r]).collect();
    let built: Vec<Vec<TemplateCell>> = pool.map(&fast, |_, &r| {
        keep_positions.iter().map(|&p| TemplateCell::Certain(enc.value(p, r).clone())).collect()
    });

    wsd.reserve_tuples(out, enc.len());
    let mut built = built.into_iter();
    for (row, t) in enc.tuples.iter().enumerate() {
        if enc.fully_static[row] {
            let tid = wsd.fresh_tid();
            let cells = built.next().expect("one build per static row"); // maybms-lint: allow(no-panic-in-prod) -- the build iterator was constructed with exactly one entry per matched row
            wsd.push_template(out, TupleTemplate { tid, cells, exists: Existence::Always })?;
        } else {
            project_tuple(wsd, t, &keep_positions, out)?;
        }
    }
    Ok(())
}

/// Vectorized duplicate elimination: fully-static rows are keyed by their
/// packed code rows (`Box<[u32]>`) — integer hashing, no value clones.
/// Open templates pass through untouched, exactly like
/// [`crate::exec::dedup_op`].
pub fn dedup_vec(wsd: &mut Wsd, input: &str, out: &str) -> Result<()> {
    let enc = encode(wsd, input)?;
    let ncols = enc.schema.len();
    wsd.add_relation(out, enc.schema.clone())?;
    let mut seen: HashSet<Box<[u32]>> = HashSet::with_capacity(enc.len());
    for (row, t) in enc.tuples.iter().enumerate() {
        if enc.fully_static[row] {
            let key: Box<[u32]> = (0..ncols).map(|c| enc.codes[c][row]).collect();
            if !seen.insert(key) {
                continue; // duplicate certain tuple: one copy suffices
            }
        }
        emit_passthrough(wsd, t, out)?;
    }
    Ok(())
}

/// Per-row key codes of one side for one equality conjunct: the possible
/// key values translated into the conjunct's shared dense code space
/// (sorted, deduplicated; empty = matches nothing).
type KeyCodes = Vec<Vec<u32>>;

/// Translates one side's key column into the shared code space for one
/// equality conjunct. `define` controls whether unseen values allocate
/// new codes (build side) or map to nothing (probe side — a value absent
/// from the build side joins nothing). Hashes once per *distinct* value:
/// certain cells go through a dictionary translation table.
fn side_key_codes(
    wsd: &Wsd,
    rel: &str,
    enc: &Encoded,
    col: usize,
    shared: &mut HashMap<Value, u32>,
    define: bool,
) -> Result<KeyCodes> {
    let intern = |shared: &mut HashMap<Value, u32>, v: &Value| -> Option<u32> {
        if v.is_null() {
            return None; // NULL never joins
        }
        match shared.get(v) {
            Some(&c) => Some(c),
            None if define => {
                let c = shared.len() as u32;
                shared.insert(v.clone(), c);
                Some(c)
            }
            None => None,
        }
    };
    let trans: Vec<Option<u32>> =
        enc.dicts[col].iter().map(|v| intern(shared, v)).collect();
    let mut keys = Vec::with_capacity(enc.len());
    for (row, t) in enc.tuples.iter().enumerate() {
        let code = enc.codes[col][row];
        if code != OPEN_CODE {
            keys.push(trans[code as usize].map(|c| vec![c]).unwrap_or_default());
        } else {
            let mut cs: Vec<u32> = possible_values_of(wsd, rel, t, col)?
                .iter()
                .filter_map(|v| intern(shared, v))
                .collect();
            cs.sort_unstable();
            cs.dedup();
            keys.push(cs);
        }
    }
    Ok(keys)
}

/// True iff two sorted code lists intersect.
fn codes_intersect(a: &[u32], b: &[u32]) -> bool {
    if a.len() == 1 && b.len() == 1 {
        return a[0] == b[0];
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Vectorized hash equi-join: input_l ⋈_pred input_r → out.
///
/// Build: both sides' key columns are translated into one shared dense
/// code space per equality conjunct (one hash per distinct value), and
/// right rows are bucketed into a flat vector indexed by first-key code.
/// Probe: per left row, candidates come from its key buckets and the
/// residual equality conjuncts prune by sorted-code intersection —
/// integer compares only, fanned out through the pool. Emit: the full
/// predicate is decided once per distinct code-key pair (memoized);
/// fully-static pairs get batch-built certain cells (parallel shards,
/// serial ordered append), pairs touching open fields fall back to the
/// tuple-at-a-time `emit_pair` reference. Output order equals the
/// sequential hash join's at every worker count.
///
/// Predicates with no cross-side equality conjunct delegate to
/// [`join_op_in`]'s nested-loop fallback.
pub fn join_vec(
    wsd: &mut Wsd,
    left: &str,
    right: &str,
    pred: &Expr,
    out: &str,
    pool: &WorkerPool,
) -> Result<()> {
    let lenc = encode(wsd, left)?;
    let renc = encode(wsd, right)?;
    let larity = lenc.schema.len();
    let rarity = renc.schema.len();
    let out_schema = lenc.schema.concat(&renc.schema);
    let eq_pairs = equality_pairs(pred, &out_schema, larity);
    if eq_pairs.is_empty() {
        metrics().nested_fallbacks.inc();
        return join_op_in(wsd, left, right, pred, out, pool);
    }
    let m = metrics();
    let (bound, positions) = bind_pred(pred, &out_schema)?;
    let arity = out_schema.len();
    wsd.add_relation(out, out_schema)?;

    // Build: shared code spaces and per-row key codes per conjunct.
    let np = eq_pairs.len();
    let mut l_keys: Vec<KeyCodes> = Vec::with_capacity(np);
    let mut r_keys: Vec<KeyCodes> = Vec::with_capacity(np);
    let mut nbuckets = 0usize;
    for (k, &(lp, rp)) in eq_pairs.iter().enumerate() {
        let mut shared: HashMap<Value, u32> = HashMap::new();
        let rk = side_key_codes(wsd, right, &renc, rp - larity, &mut shared, true)?;
        let lk = side_key_codes(wsd, left, &lenc, lp, &mut shared, false)?;
        if k == 0 {
            nbuckets = shared.len();
        }
        l_keys.push(lk);
        r_keys.push(rk);
    }

    // Bucket right rows by every possible code of the first conjunct.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nbuckets];
    for (ri, codes) in r_keys[0].iter().enumerate() {
        for &c in codes {
            buckets[c as usize].push(ri);
        }
    }

    // Probe (parallel, read-only): candidate right rows per left row, in
    // ascending order, pruned through the residual conjuncts.
    let lrows: Vec<usize> = (0..lenc.len()).collect();
    let cands: Vec<Vec<usize>> = pool.map(&lrows, |_, &li| {
        let mut cand: Vec<usize> = Vec::new();
        for &c in &l_keys[0][li] {
            cand.extend_from_slice(&buckets[c as usize]);
        }
        if l_keys[0][li].len() > 1 {
            cand.sort_unstable();
            cand.dedup();
        }
        cand.retain(|&ri| (1..np).all(|k| codes_intersect(&l_keys[k][li], &r_keys[k][ri])));
        cand
    });

    // Emit plan (serial): decide fully-static pairs via the memoized
    // predicate on packed code keys; leave open pairs to the reference.
    let lref: Vec<usize> = positions.iter().copied().filter(|&p| p < larity).collect();
    let rref: Vec<usize> =
        positions.iter().copied().filter(|&p| p >= larity).map(|p| p - larity).collect();
    let mut memo: HashMap<Box<[u32]>, bool> = HashMap::new();
    let mut plan: Vec<(usize, usize, bool)> = Vec::new();
    let mut key: Vec<u32> = Vec::with_capacity(lref.len() + rref.len());
    for (li, cand) in cands.iter().enumerate() {
        for &ri in cand {
            if !(lenc.fully_static[li] && renc.fully_static[ri]) {
                m.fallback_rows.inc();
                plan.push((li, ri, false));
                continue;
            }
            key.clear();
            for &p in &lref {
                key.push(lenc.codes[p][li]);
            }
            for &p in &rref {
                key.push(renc.codes[p][ri]);
            }
            let pass = match memo.get(key.as_slice()) {
                Some(&b) => {
                    m.memo_hits.inc();
                    b
                }
                None => {
                    m.memo_misses.inc();
                    let mut vals = HashMap::with_capacity(key.len());
                    for &p in &lref {
                        vals.insert(p, lenc.value(p, li).clone());
                    }
                    for &p in &rref {
                        vals.insert(p + larity, renc.value(p, ri).clone());
                    }
                    let b = eval_partial(&bound, arity, &vals)?;
                    memo.insert(key.clone().into_boxed_slice(), b);
                    b
                }
            };
            if pass {
                plan.push((li, ri, true));
            }
        }
    }

    // Materialize fast pairs' cells in parallel shards.
    let fast: Vec<(usize, usize)> =
        plan.iter().filter(|&&(_, _, f)| f).map(|&(li, ri, _)| (li, ri)).collect();
    let built: Vec<Vec<TemplateCell>> = pool.map(&fast, |_, &(li, ri)| {
        let mut cells = Vec::with_capacity(arity);
        for c in 0..larity {
            cells.push(TemplateCell::Certain(lenc.value(c, li).clone()));
        }
        for c in 0..rarity {
            cells.push(TemplateCell::Certain(renc.value(c, ri).clone()));
        }
        cells
    });

    // Serial ordered append: identical to the sequential reference.
    wsd.reserve_tuples(out, plan.len());
    let mut built = built.into_iter();
    for &(li, ri, is_fast) in &plan {
        if is_fast {
            let tid = wsd.fresh_tid();
            let cells = built.next().expect("one build per fast pair"); // maybms-lint: allow(no-panic-in-prod) -- the build iterator was constructed with exactly one entry per matched row
            wsd.push_template(out, TupleTemplate { tid, cells, exists: Existence::Always })?;
        } else {
            emit_pair(wsd, &bound, &positions, larity, out, &lenc.tuples[li], &renc.tuples[ri], arity)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{join_op, project_op, select_op};
    use crate::examples::medical_wsd;
    use maybms_relational::{ColumnType, Schema};

    fn equivalent(a: &Wsd, b: &Wsd) -> bool {
        a.to_worldset(100_000)
            .unwrap()
            .equivalent(&b.to_worldset(100_000).unwrap(), 1e-9)
    }

    #[test]
    fn select_vec_matches_select_op() {
        let wsd = medical_wsd();
        for pred in [
            Expr::col("diagnosis").eq(Expr::lit("pregnancy")),
            Expr::col("symptom").eq(Expr::lit("fatigue")),
            Expr::lit(true),
            Expr::lit(false),
        ] {
            for workers in [1, 2, 4] {
                let pool = WorkerPool::new(workers);
                let mut a = wsd.clone();
                select_vec(&mut a, "R", &pred, "out", &pool).unwrap();
                let mut b = wsd.clone();
                select_op(&mut b, "R", &pred, "out").unwrap();
                let a = crate::algebra::extract(a, "out", "result").unwrap();
                let b = crate::algebra::extract(b, "out", "result").unwrap();
                assert!(equivalent(&a, &b), "pred {pred:?} workers {workers}");
            }
        }
    }

    #[test]
    fn join_vec_matches_join_op() {
        let mut wsd = medical_wsd();
        wsd.add_relation(
            "T",
            Schema::new(vec![("tname", ColumnType::Str), ("cost", ColumnType::Int)]),
        )
        .unwrap();
        wsd.push_certain("T", vec![Value::str("ultrasound"), Value::Int(120)]).unwrap();
        wsd.push_certain("T", vec![Value::str("TSH"), Value::Int(40)]).unwrap();
        let pred = Expr::col("test").eq(Expr::col("tname"));
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let mut a = wsd.clone();
            join_vec(&mut a, "R", "T", &pred, "out", &pool).unwrap();
            let mut b = wsd.clone();
            join_op(&mut b, "R", "T", &pred, "out").unwrap();
            let a = crate::algebra::extract(a, "out", "result").unwrap();
            let b = crate::algebra::extract(b, "out", "result").unwrap();
            assert!(equivalent(&a, &b), "workers {workers}");
        }
    }

    #[test]
    fn join_vec_is_deterministic_across_worker_counts() {
        let mut wsd = Wsd::new();
        wsd.add_relation("a", Schema::new(vec![("x", ColumnType::Int)])).unwrap();
        wsd.add_relation("b", Schema::new(vec![("y", ColumnType::Int)])).unwrap();
        for i in 0..50 {
            wsd.push_certain("a", vec![Value::Int(i % 7)]).unwrap();
            wsd.push_certain("b", vec![Value::Int(i % 5)]).unwrap();
        }
        let pred = Expr::col("x").eq(Expr::col("y"));
        let mut reference: Option<String> = None;
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let mut w = wsd.clone();
            join_vec(&mut w, "a", "b", &pred, "out", &pool).unwrap();
            let rendered = format!("{:?}", w.relation("out").unwrap());
            match &reference {
                None => reference = Some(rendered),
                Some(r) => assert_eq!(r, &rendered, "workers {workers}"),
            }
        }
    }

    #[test]
    fn dedup_vec_drops_duplicate_certain_rows() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_certain("r", vec![Value::Int(1)]).unwrap();
        w.push_certain("r", vec![Value::Int(1)]).unwrap();
        w.push_certain("r", vec![Value::Int(2)]).unwrap();
        dedup_vec(&mut w, "r", "out").unwrap();
        assert_eq!(w.relation("out").unwrap().tuples.len(), 2);
    }

    #[test]
    fn project_vec_matches_project_op() {
        let wsd = medical_wsd();
        for cols in [vec!["test"], vec!["test", "diagnosis"]] {
            let pool = WorkerPool::new(2);
            let mut a = wsd.clone();
            project_vec(&mut a, "R", &cols, "out", &pool).unwrap();
            let mut b = wsd.clone();
            project_op(&mut b, "R", &cols, "out").unwrap();
            let a = crate::algebra::extract(a, "out", "result").unwrap();
            let b = crate::algebra::extract(b, "out", "result").unwrap();
            assert!(equivalent(&a, &b), "cols {cols:?}");
        }
    }
}
