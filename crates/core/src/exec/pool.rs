//! A hand-rolled fixed worker pool: `std::thread` workers around a
//! mutex/condvar task queue. No external dependencies — the container
//! builds offline, so rayon-style crates are not an option.
//!
//! The pool exposes one primitive, [`WorkerPool::map`] (plus its sibling
//! [`WorkerPool::map_mut`]): a *blocking* parallel indexed map that
//! returns results in input order. Blocking is what makes lifetime
//! erasure sound: the calling thread submits type-erased pointers into
//! its own stack frame, participates in draining the batch itself, and
//! does not return until every worker has signalled completion — so the
//! borrowed batch provably outlives all tasks touching it.
//!
//! Determinism: `map` claims indices through a shared atomic cursor but
//! writes each result into its own slot, so the output is always in
//! input order and bit-identical to the sequential run (for a pure `f`),
//! regardless of worker count. The engine relies on this: every parallel
//! pass (normalize scans, per-cluster confidence, join probing) must
//! produce the same decomposition at worker counts 1, 2 and N.
//!
//! Sizing: [`default_workers`] honours the `MAYBMS_WORKERS` environment
//! variable and falls back to `std::thread::available_parallelism`.
//! [`WorkerPool::sequential`] is a shared zero-thread pool used by all
//! the `*_in` entry points' sequential defaults.

// Safety story for the unsafe below (the crate is #![deny(unsafe_code)]
// everywhere else): `map` erases a stack-allocated `Batch` to `*const ()`
// and hands it to helper threads, but blocks on the latch until every
// helper signalled completion, so the pointee strictly outlives every
// task. Output slots are written at most once each because indices are
// claimed through an atomic cursor. The TSan/ASan/Miri CI jobs and the
// seeded interleaving harness (`fuzz` module + tests/interleaving.rs)
// check this dynamically.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use maybms_obs::{Counter, Gauge};

/// Worker-pool counters, resolved once. `tasks` (helper tasks enqueued)
/// is deterministic for a fixed worker count; `steals` depends on
/// scheduling and will differ run to run.
struct PoolMetrics {
    tasks: Arc<Counter>,
    steals: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

fn metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| PoolMetrics {
        tasks: maybms_obs::counter("pool.tasks"),
        steals: maybms_obs::counter("pool.steals"),
        queue_depth: maybms_obs::gauge("pool.queue_depth"),
    })
}

/// Test-only seeded schedule perturbation.
///
/// The pool's races (shutdown vs. steal, latch vs. panic, nested maps)
/// depend on thread timing the unit tests cannot control. This hook
/// injects a deterministic pseudo-random choice of *nothing* / *yield* /
/// *short sleep* at every scheduling decision point, keyed by a global
/// seed — so `tests/interleaving.rs` can sweep seeds and explore many
/// distinct interleavings reproducibly (and the sanitizer CI jobs see
/// more than one execution). A seed of 0 (the default) disables the
/// hook; production code never sets it.
pub mod fuzz {
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEED: AtomicU64 = AtomicU64::new(0);
    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// Enables perturbation under `seed` (nonzero) and resets the
    /// decision counter so a given seed replays the same choices.
    #[doc(hidden)]
    pub fn set_seed(seed: u64) {
        COUNTER.store(0, Ordering::SeqCst);
        SEED.store(seed, Ordering::SeqCst);
    }

    /// Disables perturbation.
    #[doc(hidden)]
    pub fn clear() {
        SEED.store(0, Ordering::SeqCst);
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One scheduling decision point; `site` distinguishes push / pop /
    /// steal / drain so the same counter value perturbs them differently.
    pub(super) fn perturb(site: u64) {
        let seed = SEED.load(Ordering::Relaxed);
        if seed == 0 {
            return;
        }
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let r = splitmix64(seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n);
        match r % 8 {
            0..=4 => {}
            5 | 6 => std::thread::yield_now(),
            // up to ~31µs: long enough to reorder threads, short enough
            // to keep a full seed sweep fast
            _ => std::thread::sleep(std::time::Duration::from_micros((r >> 32) & 0x1F)),
        }
    }
}

// Site ids for fuzz::perturb.
const SITE_PUSH: u64 = 1;
const SITE_POP: u64 = 2;
const SITE_TRY_POP: u64 = 3;
const SITE_DRAIN: u64 = 4;
const SITE_STEAL: u64 = 5;
const SITE_DONE: u64 = 6;

// ---------------------------------------------------------------------
// Task plumbing
// ---------------------------------------------------------------------

/// A type-erased handle to one in-flight [`Batch`]: a raw pointer to the
/// batch on the submitting thread's stack plus the monomorphized drain
/// function for it, and the latch to signal when done.
struct Task {
    data: *const (),
    run: unsafe fn(*const ()),
    latch: Arc<Latch>,
}

// Safety: `data` points at a `Batch` whose captured references are all
// `Sync`, and the submitting thread blocks on the latch until every task
// has run, so the pointee strictly outlives the task.
unsafe impl Send for Task {}

/// Counts outstanding helper tasks of one `map` call.
struct Latch {
    left: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch { left: Mutex::new(n), cv: Condvar::new() }
    }

    fn done(&self) {
        fuzz::perturb(SITE_DONE);
        let mut left = self.left.lock().expect("latch poisoned"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }
}

/// The shared task queue: plain mutex + condvar, closed on pool drop.
struct Queue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

impl Queue {
    fn new() -> Queue {
        Queue {
            state: Mutex::new(QueueState { tasks: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, t: Task) {
        fuzz::perturb(SITE_PUSH);
        let mut s = self.state.lock().expect("queue poisoned"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        s.tasks.push_back(t);
        drop(s);
        metrics().queue_depth.add(1);
        self.cv.notify_one();
    }

    /// Blocks until a task is available or the queue shuts down.
    fn pop_blocking(&self) -> Option<Task> {
        fuzz::perturb(SITE_POP);
        let mut s = self.state.lock().expect("queue poisoned"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        loop {
            if let Some(t) = s.tasks.pop_front() {
                metrics().queue_depth.add(-1);
                return Some(t);
            }
            if s.shutdown {
                return None;
            }
            s = self.cv.wait(s).expect("queue poisoned"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        }
    }

    fn try_pop(&self) -> Option<Task> {
        fuzz::perturb(SITE_TRY_POP);
        let t = self.state.lock().expect("queue poisoned").tasks.pop_front(); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        if t.is_some() {
            metrics().queue_depth.add(-1);
        }
        t
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").shutdown = true; // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// The batch: one map call's shared state
// ---------------------------------------------------------------------

/// The shared state of one `map` call: an index cursor, the output slots
/// and the user closure. Workers (and the calling thread) repeatedly
/// claim chunks of indices and fill the corresponding slots.
struct Batch<'a, R, F> {
    f: &'a F,
    out: *mut Option<R>,
    len: usize,
    chunk: usize,
    next: &'a AtomicUsize,
    panicked: &'a AtomicBool,
}

// Safety: `out` slots are written at most once each (indices are claimed
// through the atomic cursor), `f` is `Sync`, and results are `Send`.
unsafe impl<R: Send, F: Sync> Send for Batch<'_, R, F> {}
unsafe impl<R: Send, F: Sync> Sync for Batch<'_, R, F> {}

impl<R, F: Fn(usize) -> R> Batch<'_, R, F> {
    /// Claims and processes index chunks until the cursor runs out (or a
    /// sibling panicked). Never unwinds: panics are recorded and
    /// re-raised by the submitting thread.
    fn drain(&self) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            loop {
                if self.panicked.load(Ordering::Relaxed) {
                    break;
                }
                fuzz::perturb(SITE_DRAIN);
                let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
                if start >= self.len {
                    break;
                }
                let end = (start + self.chunk).min(self.len);
                for i in start..end {
                    let r = (self.f)(i);
                    // Safety: index i was claimed exactly once.
                    unsafe { self.out.add(i).write(Some(r)) };
                }
            }
        }));
        if result.is_err() {
            self.panicked.store(true, Ordering::SeqCst);
        }
    }
}

/// The monomorphized entry point stored in a [`Task`].
unsafe fn drain_batch<R, F: Fn(usize) -> R>(p: *const ()) {
    let batch = &*(p as *const Batch<'_, R, F>);
    batch.drain();
}

/// A raw pointer that may cross threads (used by `map_mut`; disjoint
/// indices guarantee exclusive access per element).
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer inside it.
    fn at(&self, i: usize) -> *mut T {
        // Safety of the offset is the caller's obligation.
        unsafe { self.0.add(i) }
    }
}

// ---------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------

/// A fixed pool of worker threads. `WorkerPool::new(1)` spawns no
/// threads and runs everything inline on the caller.
pub struct WorkerPool {
    workers: usize,
    queue: Option<Arc<Queue>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

/// Worker count from the environment: `MAYBMS_WORKERS` if set (clamped
/// to 1..=256), else the machine's available parallelism.
pub fn default_workers() -> usize {
    std::env::var("MAYBMS_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, 256))
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
}

/// The process-wide shared pool, sized by [`default_workers`]. Sessions
/// default to this so the threads are spawned once per process.
pub fn global_pool() -> Arc<WorkerPool> {
    static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(WorkerPool::new(default_workers()))).clone()
}

impl WorkerPool {
    /// A pool with `workers` total workers (the calling thread counts as
    /// one: `new(4)` spawns 3 helper threads).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        if workers == 1 {
            return WorkerPool { workers, queue: None, handles: Vec::new() };
        }
        let queue = Arc::new(Queue::new());
        let handles = (0..workers - 1)
            .map(|i| {
                let q = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("maybms-worker-{i}"))
                    .spawn(move || {
                        while let Some(t) = q.pop_blocking() {
                            // Safety: the submitter keeps the batch alive
                            // until the latch is signalled below.
                            unsafe { (t.run)(t.data) };
                            t.latch.done();
                        }
                    })
                    .expect("spawn worker thread") // maybms-lint: allow(no-panic-in-prod) -- thread spawn fails only on resource exhaustion at pool construction; fail-stop at startup
            })
            .collect();
        WorkerPool { workers, queue: Some(queue), handles }
    }

    /// The shared zero-thread pool: `map` runs inline. The `*_in` entry
    /// points of normalize/prob/join default to this.
    pub fn sequential() -> &'static WorkerPool {
        static SEQ: OnceLock<WorkerPool> = OnceLock::new();
        SEQ.get_or_init(|| WorkerPool::new(1))
    }

    /// Total worker count (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Parallel indexed map over a shared slice: `out[i] = f(i, &items[i])`,
    /// in input order. Runs inline when the pool is sequential or the
    /// input is a single item.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.for_each_index(items.len(), |i| f(i, &items[i]))
    }

    /// Parallel indexed map with exclusive access to each element:
    /// `out[i] = f(i, &mut items[i])`. Sound because every index is
    /// claimed exactly once across workers.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let ptr = SyncPtr(items.as_mut_ptr());
        self.for_each_index(items.len(), move |i| {
            // Safety: index i is visited exactly once; elements are disjoint.
            let item = unsafe { &mut *ptr.at(i) };
            f(i, item)
        })
    }

    /// The scheduling core shared by `map`/`map_mut`.
    fn for_each_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let queue = match (&self.queue, workers) {
            (Some(q), w) if w > 1 => q,
            _ => return (0..n).map(f).collect(),
        };

        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let next = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        // Chunked claiming amortizes the cursor contention on fine-grained
        // items while still balancing uneven per-item costs.
        let chunk = (n / (workers * 8)).max(1);
        let batch = Batch {
            f: &f,
            out: out.as_mut_ptr(),
            len: n,
            chunk,
            next: &next,
            panicked: &panicked,
        };

        let helpers = workers - 1;
        metrics().tasks.add(helpers as u64);
        let latch = Arc::new(Latch::new(helpers));
        for _ in 0..helpers {
            queue.push(Task {
                data: &batch as *const Batch<'_, R, F> as *const (),
                run: drain_batch::<R, F>,
                latch: Arc::clone(&latch),
            });
        }

        // The calling thread is worker 0.
        batch.drain();

        // Wait for the helpers, stealing queued tasks meanwhile so nested
        // or concurrent map calls cannot starve each other.
        loop {
            {
                let left = latch.left.lock().expect("latch poisoned"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
                if *left == 0 {
                    break;
                }
            }
            if let Some(t) = queue.try_pop() {
                fuzz::perturb(SITE_STEAL);
                metrics().steals.inc();
                unsafe { (t.run)(t.data) };
                t.latch.done();
                continue;
            }
            let left = latch.left.lock().expect("latch poisoned"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
            if *left == 0 {
                break;
            }
            let _ = latch
                .cv
                .wait_timeout(left, Duration::from_millis(1))
                .expect("latch poisoned"); // maybms-lint: allow(no-panic-in-prod) -- lock poisoning means another thread already panicked; fail-stop instead of running on shared state of unknown integrity
        }

        if panicked.load(Ordering::SeqCst) {
            panic!("a maybms worker task panicked"); // maybms-lint: allow(no-panic-in-prod) -- re-propagates a worker task panic to the caller; swallowing it would return corrupt results
        }
        out.into_iter()
            .map(|slot| slot.expect("every index drained")) // maybms-lint: allow(no-panic-in-prod) -- the latch guarantees every output slot was filled before wait() returned
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(q) = self.queue.take() {
            q.close();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_worker_count() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 3, 4, 8] {
            let pool = WorkerPool::new(workers);
            let got = pool.map(&items, |_, &x| x * 3);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert_eq!(pool.map(&[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn map_mut_mutates_in_place() {
        let pool = WorkerPool::new(3);
        let mut items: Vec<u64> = (0..257).collect();
        let changed = pool.map_mut(&mut items, |_, x| {
            *x += 1;
            *x % 2 == 0
        });
        assert_eq!(items[0], 1);
        assert_eq!(items[256], 257);
        // result i reports whether items[i] = i + 1 is even
        let expect: Vec<bool> = (0..257u64).map(|i| (i + 1) % 2 == 0).collect();
        assert_eq!(changed, expect);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(r.is_err(), "panic must propagate to the caller");
        // the pool keeps working afterwards
        let ok = pool.map(&items, |_, &x| x + 1);
        assert_eq!(ok[63], 64);
    }

    #[test]
    fn concurrent_maps_from_multiple_threads() {
        let pool = Arc::new(WorkerPool::new(4));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let p = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let items: Vec<u64> = (0..500).collect();
                let out = p.map(&items, |_, &x| x + t);
                assert_eq!(out[499], 499 + t);
            }));
        }
        for j in joins {
            j.join().expect("no deadlock, no panic");
        }
    }

    #[test]
    fn default_workers_honours_env_shape() {
        // can't mutate the env safely in tests; just sanity-check range
        let n = default_workers();
        assert!((1..=256).contains(&n));
        assert!(WorkerPool::sequential().workers() == 1);
        assert!(global_pool().workers() >= 1);
    }
}
