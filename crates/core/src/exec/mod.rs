//! # The physical execution layer
//!
//! The pipeline above this module stops at a rule-rewritten logical
//! [`crate::algebra::Query`] tree. This module adds the explicit
//! physical layer underneath it:
//!
//! * [`plan`] — [`PhysicalPlan`], a DAG of [`PhysOp`] operator nodes
//!   (scan, filter, project, hash-join, nested-loop fallback, product,
//!   union, difference, dedup), compiled from the logical tree by
//!   simple rules: equi-join detection picks the hash strategy,
//!   pushed-down predicates stay where the optimizer placed them, and
//!   `DISTINCT` is elided when the input is already set-shaped.
//! * [`pool`] — [`WorkerPool`], a hand-rolled fixed worker pool
//!   (`std::thread` + a mutex/condvar queue; the container builds
//!   offline, so no rayon). Its `map` primitive is order-preserving and
//!   deterministic at every worker count. Worker count comes from
//!   `MAYBMS_WORKERS` or the machine's available parallelism.
//! * [`run`] — [`Executor`], which walks the plan against a
//!   decomposition and routes the embarrassingly parallel passes
//!   through the pool: per-component scans in
//!   [`crate::normalize::normalize_in`], per-cluster distributions in
//!   [`crate::prob::tuple_confidence_opts_in`], and per-tuple probe
//!   work in [`crate::algebra::join_op_in`].
//!
//! The physical executor is world-equivalent to the logical interpreter
//! ([`crate::algebra::Query::eval`]) at every worker count — property
//! tests in `tests/oracle_properties.rs` enforce this for worker counts
//! 1, 2 and N. This seam is where later scaling work (sharding, async
//! sessions, multi-backend) plugs in.

pub mod plan;
pub mod pool;
pub mod run;
pub mod vector;

pub use plan::{
    compile, explain_physical, explain_physical_annotated, schema_of, PhysOp, PhysicalPlan,
};
pub use pool::{default_workers, global_pool, WorkerPool};
pub use run::{dedup_op, Executor, NodeTrace};
pub use vector::{dedup_vec, encode, join_vec, project_vec, select_vec, Encoded, OPEN_CODE};
