//! The physical executor: walks a [`PhysicalPlan`] against a
//! decomposition, materializing intermediate relations exactly like the
//! logical interpreter but with the strategy fixed per node and the
//! worker pool threaded through the parallel operators (hash-join
//! probing, final normalization).

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use maybms_obs::Counter;
use maybms_relational::{Result, Value};

use crate::algebra::common::{alias_cells, exists_loc, snapshot};
use crate::algebra::{
    self, difference_op, join_op_nested, product_op, qualify_op, rename_op, union_op,
};
use crate::field::Field;
use crate::wsd::{Existence, TemplateCell, TupleTemplate, Wsd};

use super::plan::{PhysOp, PhysicalPlan};
use super::pool::WorkerPool;
use super::vector::{dedup_vec, join_vec, project_vec, select_vec};

/// One plan node's execution sample from [`Executor::run_traced`]: how
/// many output template tuples it produced and how long its evaluation
/// took (wall clock, **inclusive** of its children — the natural reading
/// of the pre-order walk).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTrace {
    /// Output template tuples the node produced.
    pub rows: usize,
    /// Wall-clock evaluation time, children included.
    pub elapsed: Duration,
}

/// Operator-kind labels, in the order [`op_kind_index`] assigns.
const OP_KINDS: [&str; 11] = [
    "seq_scan",
    "filter",
    "project",
    "hash_join",
    "nested_loop_join",
    "cross_product",
    "union",
    "difference",
    "dedup",
    "rename",
    "qualify",
];

fn op_kind_index(op: &PhysOp) -> usize {
    match op {
        PhysOp::SeqScan { .. } => 0,
        PhysOp::Filter { .. } => 1,
        PhysOp::Project { .. } => 2,
        PhysOp::HashJoin { .. } => 3,
        PhysOp::NestedLoopJoin { .. } => 4,
        PhysOp::CrossProduct { .. } => 5,
        PhysOp::Union { .. } => 6,
        PhysOp::Difference { .. } => 7,
        PhysOp::Dedup { .. } => 8,
        PhysOp::Rename { .. } => 9,
        PhysOp::Qualify { .. } => 10,
    }
}

/// Per-operator-kind output-row counters (`exec.rows.<kind>`), resolved
/// once. Driven by the deterministic serial tail of every operator, so
/// their totals are identical at every worker count.
fn row_counters() -> &'static [Arc<Counter>; 11] {
    static C: OnceLock<[Arc<Counter>; 11]> = OnceLock::new();
    C.get_or_init(|| OP_KINDS.map(|k| maybms_obs::counter(&format!("exec.rows.{k}"))))
}

/// Executes physical plans with a fixed worker pool.
pub struct Executor<'p> {
    pool: &'p WorkerPool,
}

impl<'p> Executor<'p> {
    pub fn new(pool: &'p WorkerPool) -> Executor<'p> {
        Executor { pool }
    }

    /// A sequential executor (shared zero-thread pool).
    pub fn sequential() -> Executor<'static> {
        Executor { pool: WorkerPool::sequential() }
    }

    pub fn pool(&self) -> &WorkerPool {
        self.pool
    }

    /// Runs the plan on a decomposition, producing a decomposition of the
    /// answer world-set whose single relation is named `"result"` —
    /// world-equivalent to [`crate::algebra::Query::eval`] on the logical
    /// plan the physical one was compiled from.
    pub fn run(&self, plan: &PhysicalPlan, base: &Wsd) -> Result<Wsd> {
        let mut wsd = base.clone();
        let mut counter = 0usize;
        let out = self.exec(&plan.root, &mut wsd, &mut counter, &mut None)?;
        algebra::extract_in(wsd, &out, "result", self.pool)
    }

    /// [`Executor::run`] recording, per plan node, the number of output
    /// template tuples it produced and its wall-clock evaluation time.
    /// Samples are indexed in pre-order (node before children, left
    /// before right) — the order
    /// [`super::plan::explain_physical_annotated`] visits nodes, so
    /// `EXPLAIN ANALYZE` can zip them onto the rendered tree.
    pub fn run_traced(&self, plan: &PhysicalPlan, base: &Wsd) -> Result<(Wsd, Vec<NodeTrace>)> {
        let mut wsd = base.clone();
        let mut counter = 0usize;
        let mut trace = Some(Vec::new());
        let out = self.exec(&plan.root, &mut wsd, &mut counter, &mut trace)?;
        let result = algebra::extract_in(wsd, &out, "result", self.pool)?;
        Ok((result, trace.expect("trace enabled"))) // maybms-lint: allow(no-panic-in-prod) -- the trace sink was installed at entry because tracing was requested
    }

    /// Evaluates one node into `wsd`, returning the name of the relation
    /// holding its answer. When `trace` is enabled, records the node's
    /// sample at its pre-order index; either way the node's output rows
    /// feed the `exec.rows.<kind>` counters (while recording is enabled).
    fn exec(
        &self,
        op: &PhysOp,
        wsd: &mut Wsd,
        counter: &mut usize,
        trace: &mut Option<Vec<NodeTrace>>,
    ) -> Result<String> {
        let fresh = |wsd: &Wsd, counter: &mut usize| -> String {
            loop {
                let name = format!("__p{}", *counter);
                *counter += 1;
                if wsd.relation(&name).is_err() {
                    return name;
                }
            }
        };
        // claim this node's pre-order slot before descending
        #[allow(clippy::disallowed_methods)]
        // maybms-lint: allow(determinism) -- wall clock feeds only EXPLAIN ANALYZE node timings, never the decomposition or answer bytes
        let began = if trace.is_some() { Some(Instant::now()) } else { None };
        let slot = trace.as_mut().map(|t| {
            t.push(NodeTrace::default());
            t.len() - 1
        });
        let out = self.exec_node(op, wsd, counter, trace, &fresh)?;
        if trace.is_some() || maybms_obs::enabled() {
            let rows = wsd.relation(&out)?.tuples.len();
            row_counters()[op_kind_index(op)].add(rows as u64);
            if let (Some(t), Some(i), Some(b)) = (trace.as_mut(), slot, began) {
                t[i] = NodeTrace { rows, elapsed: b.elapsed() };
            }
        }
        Ok(out)
    }

    #[allow(clippy::type_complexity)]
    fn exec_node(
        &self,
        op: &PhysOp,
        wsd: &mut Wsd,
        counter: &mut usize,
        trace: &mut Option<Vec<NodeTrace>>,
        fresh: &dyn Fn(&Wsd, &mut usize) -> String,
    ) -> Result<String> {
        Ok(match op {
            PhysOp::SeqScan { rel } => {
                wsd.relation(rel)?;
                rel.clone()
            }
            PhysOp::Filter { input, pred } => {
                let i = self.exec(input, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                select_vec(wsd, &i, pred, &out, self.pool)?;
                out
            }
            PhysOp::Project { input, cols } => {
                let i = self.exec(input, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                project_vec(wsd, &i, &names, &out, self.pool)?;
                out
            }
            PhysOp::HashJoin { left, right, pred, .. } => {
                let l = self.exec(left, wsd, counter, trace)?;
                let r = self.exec(right, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                join_vec(wsd, &l, &r, pred, &out, self.pool)?;
                out
            }
            PhysOp::NestedLoopJoin { left, right, pred } => {
                let l = self.exec(left, wsd, counter, trace)?;
                let r = self.exec(right, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                join_op_nested(wsd, &l, &r, pred, &out)?;
                out
            }
            PhysOp::CrossProduct { left, right } => {
                let l = self.exec(left, wsd, counter, trace)?;
                let r = self.exec(right, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                product_op(wsd, &l, &r, &out)?;
                out
            }
            PhysOp::Union { left, right } => {
                let l = self.exec(left, wsd, counter, trace)?;
                let r = self.exec(right, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                union_op(wsd, &l, &r, &out)?;
                out
            }
            PhysOp::Difference { left, right } => {
                let l = self.exec(left, wsd, counter, trace)?;
                let r = self.exec(right, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                difference_op(wsd, &l, &r, &out)?;
                out
            }
            PhysOp::Dedup { input } => {
                let i = self.exec(input, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                dedup_vec(wsd, &i, &out)?;
                out
            }
            PhysOp::Rename { input, from, to } => {
                let i = self.exec(input, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                rename_op(wsd, &i, from, to, &out)?;
                out
            }
            PhysOp::Qualify { input, prefix } => {
                let i = self.exec(input, wsd, counter, trace)?;
                let out = fresh(wsd, counter);
                qualify_op(wsd, &i, prefix, &out)?;
                out
            }
        })
    }
}

/// input → out, dropping duplicate fully-certain always-existing
/// templates. Sound under the paper's set semantics: two identical
/// certain tuples denote the same set element in every world. Open
/// templates (component-backed fields or open existence) pass through
/// untouched — their correlations make them semantically distinct.
pub fn dedup_op(wsd: &mut Wsd, input: &str, out: &str) -> Result<()> {
    let (schema, tuples) = snapshot(wsd, input)?;
    wsd.add_relation(out, schema)?;
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    for t in &tuples {
        if t.exists == Existence::Always {
            let certain: Option<Vec<Value>> = t
                .cells
                .iter()
                .map(|c| match c {
                    TemplateCell::Certain(v) => Some(v.clone()),
                    TemplateCell::Open => None,
                })
                .collect();
            if let Some(key) = certain {
                if !seen.insert(key) {
                    continue; // duplicate certain tuple: one copy suffices
                }
            }
        }
        let new_tid = wsd.fresh_tid();
        let all: Vec<usize> = (0..t.cells.len()).collect();
        let cells = alias_cells(wsd, new_tid, t, &all)?;
        let exists = match exists_loc(wsd, t)? {
            None => Existence::Always,
            Some(loc) => {
                wsd.alias_field(Field::exists(new_tid), loc);
                Existence::Open
            }
        };
        wsd.push_template(out, TupleTemplate { tid: new_tid, cells, exists })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Query;
    use crate::examples::medical_wsd;
    use crate::exec::plan::compile;
    use maybms_relational::{ColumnType, Expr, Schema};

    fn run_both(q: &Query, wsd: &Wsd, workers: usize) -> (Wsd, Wsd) {
        let logical = q.eval(wsd).expect("logical eval");
        let pool = WorkerPool::new(workers);
        let plan = compile(q, wsd).expect("compile");
        let physical = Executor::new(&pool).run(&plan, wsd).expect("physical run");
        (logical, physical)
    }

    #[test]
    fn paper_query_physical_equals_logical() {
        let wsd = medical_wsd();
        let q = Query::table("R")
            .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
            .project(["test"]);
        for workers in [1, 2, 4] {
            let (l, p) = run_both(&q, &wsd, workers);
            p.validate().unwrap();
            assert!(l
                .to_worldset(10_000)
                .unwrap()
                .equivalent(&p.to_worldset(10_000).unwrap(), 1e-9));
        }
    }

    #[test]
    fn hash_join_physical_equals_logical() {
        let mut wsd = medical_wsd();
        wsd.add_relation(
            "T",
            Schema::new(vec![("tname", ColumnType::Str), ("cost", ColumnType::Int)]),
        )
        .unwrap();
        wsd.push_certain("T", vec![Value::str("ultrasound"), Value::Int(120)]).unwrap();
        wsd.push_certain("T", vec![Value::str("TSH"), Value::Int(40)]).unwrap();
        let q = Query::table("R").join(
            Query::table("T"),
            Expr::col("test").eq(Expr::col("tname")),
        );
        for workers in [1, 3] {
            let (l, p) = run_both(&q, &wsd, workers);
            assert!(l
                .to_worldset(100_000)
                .unwrap()
                .equivalent(&p.to_worldset(100_000).unwrap(), 1e-9));
        }
    }

    #[test]
    fn dedup_drops_duplicate_certain_templates() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_certain("r", vec![Value::Int(1)]).unwrap();
        // a self-union duplicates every certain template
        let q = Query::table("r").union(Query::table("r")).distinct();
        let plan = compile(&q, &w).unwrap();
        let out = Executor::sequential().run(&plan, &w).unwrap();
        out.validate().unwrap();
        assert_eq!(out.relation("result").unwrap().tuples.len(), 1);
        // and stays world-equivalent to the logical interpreter
        let l = q.eval(&w).unwrap();
        assert!(l
            .to_worldset(100)
            .unwrap()
            .equivalent(&out.to_worldset(100).unwrap(), 1e-9));
    }

    #[test]
    fn dedup_keeps_open_templates() {
        use maybms_worldset::OrSetCell;
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_orset(
            "r",
            vec![OrSetCell::weighted(vec![(Value::Int(1), 0.5), (Value::Int(2), 0.5)]).unwrap()],
        )
        .unwrap();
        let q = Query::table("r").union(Query::table("r")).distinct();
        let plan = compile(&q, &w).unwrap();
        let out = Executor::sequential().run(&plan, &w).unwrap();
        let l = q.eval(&w).unwrap();
        assert!(l
            .to_worldset(100)
            .unwrap()
            .equivalent(&out.to_worldset(100).unwrap(), 1e-9));
    }
}
