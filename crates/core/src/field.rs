//! Fields: the column labels of WSD components.
//!
//! A component of a world-set decomposition "defines values for a set of
//! fields" (paper §2), a field being a *tuple identifier × attribute* pair
//! such as `r1.Diagnosis`. We additionally give every template tuple a
//! hidden *existence* field `t.∃`, so that selections can mark a tuple as
//! deleted (⊥) in a way that survives later projections — the rôle played
//! in the paper by ⊥-marking an attribute field and normalizing.

use std::fmt;

/// A tuple identifier, unique within one [`crate::wsd::Wsd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Which aspect of a tuple a field describes: one of its attributes
/// (by position in the relation schema) or its existence flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldKind {
    /// Attribute at this position of the owning relation's schema.
    Attr(u32),
    /// The hidden existence flag.
    Exists,
}

/// A field: tuple identifier plus attribute position (or ∃).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Field {
    pub tid: Tid,
    pub kind: FieldKind,
}

impl Field {
    pub fn attr(tid: Tid, pos: u32) -> Field {
        Field { tid, kind: FieldKind::Attr(pos) }
    }

    pub fn exists(tid: Tid) -> Field {
        Field { tid, kind: FieldKind::Exists }
    }

    pub fn is_exists(&self) -> bool {
        matches!(self.kind, FieldKind::Exists)
    }

    /// Attribute position, if this is an attribute field.
    pub fn attr_pos(&self) -> Option<u32> {
        match self.kind {
            FieldKind::Attr(p) => Some(p),
            FieldKind::Exists => None,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FieldKind::Attr(p) => write!(f, "{}.#{}", self.tid, p),
            FieldKind::Exists => write!(f, "{}.∃", self.tid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let f = Field::attr(Tid(3), 2);
        assert_eq!(f.attr_pos(), Some(2));
        assert!(!f.is_exists());
        let e = Field::exists(Tid(3));
        assert!(e.is_exists());
        assert_eq!(e.attr_pos(), None);
    }

    #[test]
    fn ordering_groups_by_tid() {
        let a = Field::attr(Tid(1), 5);
        let b = Field::exists(Tid(2));
        assert!(a < b);
    }

    #[test]
    fn display() {
        assert_eq!(Field::attr(Tid(1), 0).to_string(), "t1.#0");
        assert_eq!(Field::exists(Tid(7)).to_string(), "t7.∃");
    }
}
