//! Relation statistics and cardinality estimation for cost-based planning.
//!
//! [`WsdStats`] is the collector: it computes per-relation statistics
//! ([`RelStats`] — row counts and per-column distinct counts, including
//! every possible value of open fields) on demand and caches them.
//! Invalidation is **incremental, like the dirty set**: the [`Wsd`] keeps
//! a per-relation template epoch and a global component epoch
//! ([`Wsd::relation_epoch`] / [`Wsd::component_epoch`]), and a cached
//! entry is recomputed only when the epochs it was computed under have
//! moved. Statistics of fully-certain relations survive mutations of
//! other relations and of components entirely.
//!
//! On top of the raw statistics sit the estimators used by the SQL
//! optimizer's join-order search and by `EXPLAIN`:
//! [`estimate_query`] walks a logical [`Query`] tree and
//! [`estimate_phys`] a physical operator tree, both producing row-count
//! estimates from textbook selectivity rules (`1/distinct` for
//! equalities, `1/3` for range predicates) and, for the physical tree, a
//! cumulative cost in abstract "rows touched" units.

use std::collections::{HashMap, HashSet};

use maybms_relational::{CmpOp, Expr, Result, Value};

use crate::algebra::Query;
use crate::exec::PhysOp;
use crate::field::Field;
use crate::wsd::{Existence, TemplateCell, Wsd};

/// Statistics of one column of a relation template.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStats {
    /// Column name (schema order is preserved in [`RelStats::cols`]).
    pub name: String,
    /// Distinct possible values across all tuples and worlds: certain
    /// values plus every possible value of open fields.
    pub distinct: usize,
    /// Whether any tuple has an open (world-dependent) cell here.
    pub has_open: bool,
}

/// Statistics of one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelStats {
    /// Template tuples — an upper bound on the per-world cardinality.
    pub rows: usize,
    /// Whether any tuple's existence or any cell is world-dependent
    /// (if so, the stats depend on component contents).
    pub has_open: bool,
    /// Per-column statistics, aligned with the schema.
    pub cols: Vec<ColStats>,
}

impl RelStats {
    /// Distinct count of the named column (`None` if absent).
    pub fn distinct_of(&self, col: &str) -> Option<usize> {
        self.cols.iter().find(|c| c.name == col).map(|c| c.distinct)
    }
}

#[derive(Debug, Clone)]
struct CachedRel {
    rel_epoch: u64,
    comp_epoch: u64,
    stats: RelStats,
}

/// The statistics collector: a per-relation cache of [`RelStats`] keyed
/// by the [`Wsd`] mutation epochs. Cheap to clone when empty; intended to
/// live next to a session and persist across queries.
#[derive(Debug, Clone, Default)]
pub struct WsdStats {
    cache: HashMap<String, CachedRel>,
    hits: u64,
    misses: u64,
}

impl WsdStats {
    /// An empty collector.
    pub fn new() -> WsdStats {
        WsdStats::default()
    }

    /// Statistics of `rel`, recomputed only if the relation's template
    /// epoch moved — or, for relations with open fields, if any component
    /// changed.
    pub fn rel(&mut self, wsd: &Wsd, rel: &str) -> Result<&RelStats> {
        let rel_epoch = wsd.relation_epoch(rel);
        let comp_epoch = wsd.component_epoch();
        let valid = match self.cache.get(rel) {
            Some(c) => {
                c.rel_epoch == rel_epoch
                    && (!c.stats.has_open || c.comp_epoch == comp_epoch)
            }
            None => false,
        };
        if valid {
            self.hits += 1;
        } else {
            let stats = compute_rel_stats(wsd, rel)?;
            self.misses += 1;
            self.cache
                .insert(rel.to_string(), CachedRel { rel_epoch, comp_epoch, stats });
        }
        Ok(&self.cache.get(rel).expect("just inserted").stats) // maybms-lint: allow(no-panic-in-prod) -- the entry was inserted on the previous line
    }

    /// Cardinalities (row counts) of the live components — the
    /// decomposition-level view of how much uncertainty each component
    /// carries.
    pub fn component_cardinalities(&self, wsd: &Wsd) -> Vec<usize> {
        wsd.live_components()
            .into_iter()
            .map(|i| wsd.component(i).expect("live").num_rows()) // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
            .collect()
    }

    /// `(cache hits, recomputations)` since construction — the
    /// incremental-maintenance observability hook.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

fn compute_rel_stats(wsd: &Wsd, rel: &str) -> Result<RelStats> {
    let tpl = wsd.relation(rel)?;
    let ncols = tpl.schema.len();
    let mut sets: Vec<HashSet<Value>> = vec![HashSet::new(); ncols];
    let mut open: Vec<bool> = vec![false; ncols];
    let mut has_open = false;
    // Possible values of a component column are scanned once even when
    // many open fields alias the same column.
    let mut col_cache: HashMap<(usize, usize), Vec<Value>> = HashMap::new();
    for t in &tpl.tuples {
        if t.exists == Existence::Open {
            has_open = true;
        }
        for (i, cell) in t.cells.iter().enumerate() {
            match cell {
                TemplateCell::Certain(v) => {
                    sets[i].insert(v.clone());
                }
                TemplateCell::Open => {
                    open[i] = true;
                    has_open = true;
                    if let Some(loc) = wsd.field_loc(Field::attr(t.tid, i as u32)) {
                        let vals = col_cache.entry(loc).or_insert_with(|| {
                            wsd.component(loc.0)
                                .map(|c| c.possible_values_col(loc.1))
                                .unwrap_or_default()
                        });
                        for v in vals.iter() {
                            sets[i].insert(v.clone());
                        }
                    }
                }
            }
        }
    }
    let cols = (0..ncols)
        .map(|i| ColStats {
            name: tpl.schema.column(i).name.clone(),
            distinct: sets[i].len(),
            has_open: open[i],
        })
        .collect();
    Ok(RelStats { rows: tpl.tuples.len(), has_open, cols })
}

// ---------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------

/// A cardinality estimate of a plan node: expected rows plus per-column
/// distinct-count estimates (keyed by output column name).
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated distinct values per output column.
    pub distinct: HashMap<String, f64>,
}

impl Estimate {
    fn cap_distinct(mut self) -> Estimate {
        for d in self.distinct.values_mut() {
            *d = d.min(self.rows).max(if self.rows > 0.0 { 1.0 } else { 0.0 });
        }
        self
    }
}

/// Selectivity of `pred` against an input estimate: `1/distinct` for
/// equalities, `1/3` for ranges, textbook combinators for AND/OR/NOT.
pub fn selectivity(pred: &Expr, input: &Estimate) -> f64 {
    let s = match pred {
        Expr::Lit(Value::Bool(true)) => 1.0,
        Expr::Lit(Value::Bool(false)) => 0.0,
        Expr::And(a, b) => selectivity(a, input) * selectivity(b, input),
        Expr::Or(a, b) => {
            let (sa, sb) = (selectivity(a, input), selectivity(b, input));
            sa + sb - sa * sb
        }
        Expr::Not(e) => 1.0 - selectivity(e, input),
        Expr::Cmp(op, a, b) => cmp_selectivity(*op, a, b, input),
        Expr::InList(e, vals) => {
            if let Expr::Col(n) = e.as_ref() {
                let d = input.distinct.get(n).copied().unwrap_or(10.0).max(1.0);
                (vals.len() as f64 / d).min(1.0)
            } else {
                0.5
            }
        }
        Expr::IsNull(_) => 0.1,
        _ => 0.5,
    };
    s.clamp(0.0, 1.0)
}

fn cmp_selectivity(op: CmpOp, a: &Expr, b: &Expr, input: &Estimate) -> f64 {
    let dist = |e: &Expr| match e {
        Expr::Col(n) => input.distinct.get(n).copied(),
        _ => None,
    };
    match op {
        CmpOp::Eq => match (dist(a), dist(b)) {
            // col = col: the classic 1/max(d_a, d_b)
            (Some(da), Some(db)) => 1.0 / da.max(db).max(1.0),
            // col = literal (or expression): 1/d
            (Some(d), None) | (None, Some(d)) => 1.0 / d.max(1.0),
            (None, None) => 0.1,
        },
        CmpOp::Ne => match (dist(a), dist(b)) {
            (Some(da), Some(db)) => 1.0 - 1.0 / da.max(db).max(1.0),
            (Some(d), None) | (None, Some(d)) => 1.0 - 1.0 / d.max(1.0),
            (None, None) => 0.9,
        },
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => 1.0 / 3.0,
    }
}

fn base_estimate(wsd: &Wsd, stats: &mut WsdStats, rel: &str) -> Result<Estimate> {
    let rs = stats.rel(wsd, rel)?;
    let distinct = rs
        .cols
        .iter()
        .map(|c| (c.name.clone(), c.distinct as f64))
        .collect();
    Ok(Estimate { rows: rs.rows as f64, distinct })
}

fn apply_filter(mut est: Estimate, pred: &Expr) -> Estimate {
    let sel = selectivity(pred, &est);
    est.rows *= sel;
    // An equality against a literal pins the column to one value.
    for c in pred.conjuncts() {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            match (a.as_ref(), b.as_ref()) {
                (Expr::Col(n), Expr::Lit(_)) | (Expr::Lit(_), Expr::Col(n)) => {
                    if let Some(d) = est.distinct.get_mut(n) {
                        *d = 1.0;
                    }
                }
                _ => {}
            }
        }
    }
    est.cap_distinct()
}

fn combine_join(l: Estimate, r: Estimate, pred: Option<&Expr>) -> Estimate {
    let mut distinct = l.distinct;
    for (k, v) in r.distinct {
        distinct.entry(k).or_insert(v);
    }
    let mut est = Estimate { rows: l.rows * r.rows, distinct };
    if let Some(p) = pred {
        let sel = selectivity(p, &est);
        est.rows *= sel;
    }
    est.cap_distinct()
}

/// Estimates the cardinality of a logical [`Query`] tree.
pub fn estimate_query(q: &Query, wsd: &Wsd, stats: &mut WsdStats) -> Result<Estimate> {
    Ok(match q {
        Query::Table(n) => base_estimate(wsd, stats, n)?,
        Query::Select(i, p) => apply_filter(estimate_query(i, wsd, stats)?, p),
        Query::Project(i, cols) => {
            let child = estimate_query(i, wsd, stats)?;
            let distinct = cols
                .iter()
                .filter_map(|c| child.distinct.get(c).map(|&d| (c.clone(), d)))
                .collect();
            Estimate { rows: child.rows, distinct }
        }
        Query::Product(a, b) => combine_join(
            estimate_query(a, wsd, stats)?,
            estimate_query(b, wsd, stats)?,
            None,
        ),
        Query::Join(a, b, p) => combine_join(
            estimate_query(a, wsd, stats)?,
            estimate_query(b, wsd, stats)?,
            Some(p),
        ),
        Query::Union(a, b) => {
            let (l, r) = (estimate_query(a, wsd, stats)?, estimate_query(b, wsd, stats)?);
            let mut distinct = l.distinct;
            for (k, v) in r.distinct {
                let e = distinct.entry(k).or_insert(0.0);
                *e += v;
            }
            Estimate { rows: l.rows + r.rows, distinct }.cap_distinct()
        }
        Query::Difference(a, b) => {
            let l = estimate_query(a, wsd, stats)?;
            let _ = estimate_query(b, wsd, stats)?;
            l
        }
        Query::Distinct(i) => {
            let child = estimate_query(i, wsd, stats)?;
            // Output rows are bounded by the product of column distincts.
            let bound: f64 = child
                .distinct
                .values()
                .fold(1.0f64, |acc, &d| (acc * d.max(1.0)).min(1e18));
            Estimate { rows: child.rows.min(bound), distinct: child.distinct }.cap_distinct()
        }
        Query::Rename(i, _, _) => estimate_query(i, wsd, stats)?,
        Query::Qualify(i, p) => {
            let child = estimate_query(i, wsd, stats)?;
            let distinct = child
                .distinct
                .into_iter()
                .map(|(k, v)| (format!("{p}.{k}"), v))
                .collect();
            Estimate { rows: child.rows, distinct }
        }
    })
}

/// A physical node's estimate: output rows plus cumulative cost in
/// abstract "rows touched" units (inputs scanned, hash tables built,
/// pairs emitted — nested loops pay the full cross product).
#[derive(Debug, Clone, Copy)]
pub struct PhysEstimate {
    /// Estimated output rows of the node.
    pub rows: f64,
    /// Estimated cumulative cost of the subtree rooted here.
    pub cost: f64,
}

fn phys(est: Estimate, cost: f64) -> (Estimate, f64) {
    (est, cost)
}

fn estimate_phys_inner(
    op: &PhysOp,
    wsd: &Wsd,
    stats: &mut WsdStats,
) -> Result<(Estimate, f64)> {
    Ok(match op {
        PhysOp::SeqScan { rel } => {
            let e = base_estimate(wsd, stats, rel)?;
            let c = e.rows;
            phys(e, c)
        }
        PhysOp::Filter { input, pred } => {
            let (child, cost) = estimate_phys_inner(input, wsd, stats)?;
            let scanned = child.rows;
            phys(apply_filter(child, pred), cost + scanned)
        }
        PhysOp::Project { input, cols } => {
            let (child, cost) = estimate_phys_inner(input, wsd, stats)?;
            let scanned = child.rows;
            let distinct = cols
                .iter()
                .filter_map(|c| child.distinct.get(c).map(|&d| (c.clone(), d)))
                .collect();
            phys(Estimate { rows: child.rows, distinct }, cost + scanned)
        }
        PhysOp::HashJoin { left, right, pred, .. } => {
            let (l, cl) = estimate_phys_inner(left, wsd, stats)?;
            let (r, cr) = estimate_phys_inner(right, wsd, stats)?;
            let (lr, rr) = (l.rows, r.rows);
            let out = combine_join(l, r, Some(pred));
            let c = cl + cr + lr + rr + out.rows;
            phys(out, c)
        }
        PhysOp::NestedLoopJoin { left, right, pred } => {
            let (l, cl) = estimate_phys_inner(left, wsd, stats)?;
            let (r, cr) = estimate_phys_inner(right, wsd, stats)?;
            let pairs = l.rows * r.rows;
            let out = combine_join(l, r, Some(pred));
            phys(out, cl + cr + pairs)
        }
        PhysOp::CrossProduct { left, right } => {
            let (l, cl) = estimate_phys_inner(left, wsd, stats)?;
            let (r, cr) = estimate_phys_inner(right, wsd, stats)?;
            let pairs = l.rows * r.rows;
            let out = combine_join(l, r, None);
            phys(out, cl + cr + pairs)
        }
        PhysOp::Union { left, right } => {
            let (l, cl) = estimate_phys_inner(left, wsd, stats)?;
            let (r, cr) = estimate_phys_inner(right, wsd, stats)?;
            let rows = l.rows + r.rows;
            let mut distinct = l.distinct;
            for (k, v) in r.distinct {
                let e = distinct.entry(k).or_insert(0.0);
                *e += v;
            }
            phys(
                Estimate { rows, distinct }.cap_distinct(),
                cl + cr + rows,
            )
        }
        PhysOp::Difference { left, right } => {
            let (l, cl) = estimate_phys_inner(left, wsd, stats)?;
            let (r, cr) = estimate_phys_inner(right, wsd, stats)?;
            let scanned = l.rows + r.rows;
            phys(l, cl + cr + scanned)
        }
        PhysOp::Dedup { input } => {
            let (child, cost) = estimate_phys_inner(input, wsd, stats)?;
            let scanned = child.rows;
            let bound: f64 = child
                .distinct
                .values()
                .fold(1.0f64, |acc, &d| (acc * d.max(1.0)).min(1e18));
            phys(
                Estimate { rows: child.rows.min(bound), distinct: child.distinct }
                    .cap_distinct(),
                cost + scanned,
            )
        }
        PhysOp::Rename { input, .. } => estimate_phys_inner(input, wsd, stats)?,
        PhysOp::Qualify { input, prefix } => {
            let (child, cost) = estimate_phys_inner(input, wsd, stats)?;
            let distinct = child
                .distinct
                .into_iter()
                .map(|(k, v)| (format!("{prefix}.{k}"), v))
                .collect();
            phys(Estimate { rows: child.rows, distinct }, cost)
        }
    })
}

/// Estimates rows and cumulative cost of a physical operator subtree —
/// the numbers `EXPLAIN` prints per node.
pub fn estimate_phys(op: &PhysOp, wsd: &Wsd, stats: &mut WsdStats) -> Result<PhysEstimate> {
    let (est, cost) = estimate_phys_inner(op, wsd, stats)?;
    Ok(PhysEstimate { rows: est.rows, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_relational::{ColumnType, Schema};
    use maybms_worldset::OrSetCell;

    fn wsd_with(rows: &[(i64, &str)]) -> Wsd {
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)]),
        )
        .unwrap();
        for &(a, b) in rows {
            w.push_certain("r", vec![Value::Int(a), Value::str(b)]).unwrap();
        }
        w
    }

    #[test]
    fn exact_counts_on_certain_relations() {
        let w = wsd_with(&[(1, "x"), (1, "y"), (2, "x"), (3, "x")]);
        let mut s = WsdStats::new();
        let rs = s.rel(&w, "r").unwrap();
        assert_eq!(rs.rows, 4);
        assert_eq!(rs.distinct_of("a"), Some(3));
        assert_eq!(rs.distinct_of("b"), Some(2));
        assert!(!rs.has_open);
    }

    #[test]
    fn open_fields_count_all_possible_values() {
        let mut w = wsd_with(&[(1, "x")]);
        w.push_orset(
            "r",
            vec![
                OrSetCell::uniform(vec![Value::Int(7), Value::Int(8)]).unwrap(),
                OrSetCell::certain("x"),
            ],
        )
        .unwrap();
        let mut s = WsdStats::new();
        let rs = s.rel(&w, "r").unwrap();
        assert_eq!(rs.rows, 2);
        // {1} certain ∪ {7, 8} possible
        assert_eq!(rs.distinct_of("a"), Some(3));
        assert_eq!(rs.distinct_of("b"), Some(1));
        assert!(rs.has_open);
    }

    #[test]
    fn cache_invalidates_on_insert_delete_and_merge() {
        let mut w = wsd_with(&[(1, "x"), (2, "y")]);
        let mut s = WsdStats::new();
        assert_eq!(s.rel(&w, "r").unwrap().rows, 2);
        assert_eq!(s.counters(), (0, 1));

        // Cached while nothing changed.
        assert_eq!(s.rel(&w, "r").unwrap().rows, 2);
        assert_eq!(s.counters(), (1, 1));

        // Insert invalidates.
        w.push_certain("r", vec![Value::Int(9), Value::str("z")]).unwrap();
        assert_eq!(s.rel(&w, "r").unwrap().rows, 3);
        assert_eq!(s.counters(), (1, 2));
        assert_eq!(s.rel(&w, "r").unwrap().distinct_of("a"), Some(3));
        assert_eq!(s.counters(), (2, 2));

        // Component merges invalidate stats of open relations only: add
        // an open tuple, cache, then merge.
        w.push_orset(
            "r",
            vec![
                OrSetCell::uniform(vec![Value::Int(4), Value::Int(5)]).unwrap(),
                OrSetCell::uniform(vec![Value::str("p"), Value::str("q")]).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(s.rel(&w, "r").unwrap().rows, 4);
        let live = w.live_components();
        w.merge_components(&live).unwrap();
        let (_, misses_before) = s.counters();
        let rs = s.rel(&w, "r").unwrap();
        assert_eq!(rs.distinct_of("a"), Some(5)); // {1,2,9} ∪ {4,5}
        let (_, misses_after) = s.counters();
        assert_eq!(misses_after, misses_before + 1, "merge must recompute");
    }

    #[test]
    fn certain_relation_stats_survive_unrelated_mutations() {
        let mut w = wsd_with(&[(1, "x")]);
        w.add_relation("s", Schema::new(vec![("c", ColumnType::Int)])).unwrap();
        let mut st = WsdStats::new();
        let _ = st.rel(&w, "r").unwrap();
        let (h0, m0) = st.counters();
        w.push_certain("s", vec![Value::Int(1)]).unwrap();
        let _ = st.rel(&w, "r").unwrap();
        let (h1, m1) = st.counters();
        assert_eq!((h1, m1), (h0 + 1, m0), "r's stats must stay cached");
    }

    #[test]
    fn estimates_within_bounds() {
        let w = wsd_with(&[(1, "x"), (1, "y"), (2, "x"), (3, "x"), (3, "y"), (3, "z")]);
        let mut s = WsdStats::new();

        // σ(a = 1): 6 rows / 3 distinct = 2.
        let q = Query::table("r").select(Expr::col("a").eq(Expr::lit(1i64)));
        let est = estimate_query(&q, &w, &mut s).unwrap();
        assert!((est.rows - 2.0).abs() < 1e-9, "rows = {}", est.rows);

        // Self-join on a ≈ |r|²/max(d, d).
        let q2 = Query::table("r")
            .qualify("x")
            .join(Query::table("r").qualify("y"), Expr::col("x.a").eq(Expr::col("y.a")));
        let est2 = estimate_query(&q2, &w, &mut s).unwrap();
        assert!((est2.rows - 12.0).abs() < 1e-9, "rows = {}", est2.rows);

        // Range predicates use the 1/3 rule.
        let q3 = Query::table("r").select(Expr::col("a").gt(Expr::lit(1i64)));
        let est3 = estimate_query(&q3, &w, &mut s).unwrap();
        assert!((est3.rows - 2.0).abs() < 1e-9, "rows = {}", est3.rows);
    }

    #[test]
    fn component_cardinalities_reported() {
        let mut w = wsd_with(&[]);
        w.push_orset(
            "r",
            vec![
                OrSetCell::uniform(vec![Value::Int(1), Value::Int(2), Value::Int(3)]).unwrap(),
                OrSetCell::certain("x"),
            ],
        )
        .unwrap();
        let s = WsdStats::new();
        assert_eq!(s.component_cardinalities(&w), vec![3]);
    }
}
