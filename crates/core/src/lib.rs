//! # maybms-core
//!
//! The heart of MayBMS-rs: **probabilistic world-set decompositions**
//! (WSDs), as introduced in *MayBMS: Managing Incomplete Information with
//! Probabilistic World-Set Decompositions* (Antova, Koch, Olteanu, ICDE
//! 2007).
//!
//! A WSD represents a finite set of possible worlds — with probabilities —
//! as a relational product of small *component* relations; see
//! [`wsd::Wsd`]. This crate provides:
//!
//! * the data model: [`field::Field`]s, ⊥-[`cell::Cell`]s,
//!   [`component::Component`]s and [`wsd::Wsd`];
//! * construction from or-set relations ([`wsd::Wsd::push_orset`]) and
//!   *exact decomposition* of explicit world-sets ([`convert`]);
//! * [`normalize`]: the paper's normalization of WSDs after queries;
//! * [`factorize`]: splitting components back into independent factors;
//! * [`algebra`]: the full relational algebra evaluated directly on the
//!   decomposition — selection marks fields ⊥ instead of deleting rows;
//! * [`prob`]: exact confidence computation (`prob()`), possible and
//!   certain answers;
//! * [`chase`]: data cleaning by enforcing integrity constraints;
//! * [`bigint`]: arbitrary-precision world counting (the paper's
//!   world-sets exceed 2^624449 worlds);
//! * [`examples`]: the paper's §2 medical WSD, verbatim.
//!
//! # Performance architecture
//!
//! The paper's pitch is that `10^(10^6)`-world databases are *cheap to
//! process*; the engine's hot paths are built around four structures that
//! keep that promise at scale:
//!
//! **Columnar components.** A [`component::Component`] stores its cells
//! column-major with a per-column dictionary of interned cells: one
//! `u32` code per row per column plus each distinct [`cell::Cell`] stored
//! once. ⊥-propagation, constant detection, row dedup, projection and
//! factorization marginals scan contiguous code slices and compare `u32`s
//! — never cloning row vectors. [`component::CompRow`] remains as a
//! materialized view for construction, display and tests; mutation
//! closures receive a borrowed [`component::RowRef`].
//!
//! **The reverse field index.** A [`wsd::Wsd`] maintains, next to the
//! forward map *field → (component, column)*, a reverse index
//! *(component, column) → fields* updated incrementally by
//! `add_component`, `alias_field`, `merge_components`, `compact` and the
//! column remaps of normalization. Invariants: every forward entry
//! appears in the reverse index at its mapped location, and every mapped
//! field belongs to a live template tuple ([`wsd::Wsd::validate`] checks
//! both). Normalization ownership queries and `merge_components`
//! retargeting are O(fields of the touched components) instead of
//! O(all fields) or O(all templates).
//!
//! **Dirty-set incremental normalization.** Mutations mark touched
//! component indices dirty; [`normalize::normalize`] drains the dirty set
//! to a fixpoint, re-marking a component only when a pass actually
//! changes it (⊥ written, column dropped, rows merged). Monotonicity (⊥
//! cells only grow; tuples/columns/rows only shrink) guarantees
//! termination; already-normalized regions are never rescanned.
//! [`normalize::normalize_from_scratch`] is the full-pass escape hatch
//! and the oracle reference.
//!
//! **Hash-partitioned joins and dense choice vectors.** When a join
//! predicate contains a cross-side equality conjunct,
//! [`algebra::join_op`] buckets right tuples by possible key values and
//! probes instead of the O(|L|·|R|) nested loop (kept as
//! [`algebra::join_op_nested`], the tested reference). World enumeration
//! ([`wsd::Wsd::to_worldset`], [`wsd::Wsd::instantiate`]) and confidence
//! computation ([`prob`]) walk choice spaces with a flat `Vec<usize>`
//! indexed by component id and field locations resolved once per
//! cluster — no per-world hash maps.
//!
//! **The physical layer and the worker pool.** [`exec`] compiles the
//! optimized logical tree into a [`exec::PhysicalPlan`] of explicit
//! operator nodes (hash vs nested-loop join chosen at plan time,
//! `DISTINCT` elided when the input is set-shaped) and executes it with
//! a hand-rolled fixed [`exec::WorkerPool`] (`MAYBMS_WORKERS` env
//! override). The embarrassingly parallel passes — per-component
//! normalize scans, per-cluster confidence distributions, per-tuple
//! join probing — run through the pool and are deterministic at every
//! worker count.
//!
//! **Durability.** [`codec`] serializes a whole decomposition to a
//! lossless, versioned binary payload (and validates on load); the
//! `maybms-storage` crate stores that payload as checksummed pages with
//! a write-ahead log, and the SQL session layer wires `Session::open` /
//! `CHECKPOINT` on top.
//!
//! The layer-by-layer picture of the whole system (engine → executor →
//! storage/replication → session) and the invariants each layer's tests
//! enforce is in `docs/ARCHITECTURE.md` at the repository root.

// unsafe is confined to exec::pool (type-erased batch pointers behind a
// latch); everything else in the crate is checked
#![deny(unsafe_code)]

pub mod algebra;
pub mod bigint;
pub mod cell;
pub mod chase;
pub mod codec;
pub mod component;
pub mod convert;
pub mod display;
pub mod examples;
pub mod exec;
pub mod factorize;
pub mod field;
pub mod normalize;
pub mod prob;
pub mod stats;
pub mod wsd;

pub use bigint::BigUint;
pub use cell::Cell;
pub use component::{CompRow, Component};
pub use field::{Field, FieldKind, Tid};
pub use wsd::{Existence, RelTemplate, TemplateCell, TupleTemplate, Wsd, WsdStats};
