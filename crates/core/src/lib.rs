//! # maybms-core
//!
//! The heart of MayBMS-rs: **probabilistic world-set decompositions**
//! (WSDs), as introduced in *MayBMS: Managing Incomplete Information with
//! Probabilistic World-Set Decompositions* (Antova, Koch, Olteanu, ICDE
//! 2007).
//!
//! A WSD represents a finite set of possible worlds — with probabilities —
//! as a relational product of small *component* relations; see
//! [`wsd::Wsd`]. This crate provides:
//!
//! * the data model: [`field::Field`]s, ⊥-[`cell::Cell`]s,
//!   [`component::Component`]s and [`wsd::Wsd`];
//! * construction from or-set relations ([`wsd::Wsd::push_orset`]) and
//!   *exact decomposition* of explicit world-sets ([`convert`]);
//! * [`normalize`]: the paper's normalization of WSDs after queries;
//! * [`factorize`]: splitting components back into independent factors;
//! * [`algebra`]: the full relational algebra evaluated directly on the
//!   decomposition — selection marks fields ⊥ instead of deleting rows;
//! * [`prob`]: exact confidence computation (`prob()`), possible and
//!   certain answers;
//! * [`chase`]: data cleaning by enforcing integrity constraints;
//! * [`bigint`]: arbitrary-precision world counting (the paper's
//!   world-sets exceed 2^624449 worlds);
//! * [`examples`]: the paper's §2 medical WSD, verbatim.

pub mod algebra;
pub mod bigint;
pub mod cell;
pub mod chase;
pub mod component;
pub mod convert;
pub mod display;
pub mod examples;
pub mod factorize;
pub mod field;
pub mod normalize;
pub mod prob;
pub mod wsd;

pub use bigint::BigUint;
pub use cell::Cell;
pub use component::{CompRow, Component};
pub use field::{Field, FieldKind, Tid};
pub use wsd::{Existence, RelTemplate, TemplateCell, TupleTemplate, Wsd, WsdStats};
