//! Rendering decompositions the way the paper prints them: the template
//! per relation, then each component as a small table of fields × rows
//! with the probability column.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::field::{Field, FieldKind, Tid};
use crate::wsd::{Existence, TemplateCell, Wsd};

/// Human-readable field label `t3.age` / `t3.∃`, resolving attribute
/// positions to names through the owning relation's schema.
fn field_label(f: &Field, owner: &HashMap<Tid, (String, Vec<String>)>) -> String {
    match owner.get(&f.tid) {
        Some((_, attrs)) => match f.kind {
            FieldKind::Attr(p) => {
                let name = attrs
                    .get(p as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("{}.{}", f.tid, name)
            }
            FieldKind::Exists => format!("{}.∃", f.tid),
        },
        None => f.to_string(),
    }
}

/// Renders the whole decomposition: templates, then components.
pub fn render(wsd: &Wsd) -> String {
    let mut owner: HashMap<Tid, (String, Vec<String>)> = HashMap::new();
    for (name, tpl) in &wsd.relations {
        let attrs: Vec<String> = tpl.schema.names().iter().map(|s| s.to_string()).collect();
        for t in &tpl.tuples {
            owner.insert(t.tid, (name.clone(), attrs.clone()));
        }
    }

    let mut out = String::new();
    for (name, tpl) in &wsd.relations {
        let _ = writeln!(
            out,
            "relation {name}({}) — {} template tuple(s):",
            tpl.schema.names().join(", "),
            tpl.tuples.len()
        );
        for t in &tpl.tuples {
            let cells: Vec<String> = t
                .cells
                .iter()
                .enumerate()
                .map(|(i, c)| match c {
                    TemplateCell::Certain(v) => v.to_string(),
                    TemplateCell::Open => {
                        match wsd.field_loc(Field::attr(t.tid, i as u32)) {
                            Some((comp, _)) => format!("⟨C{comp}⟩"),
                            None => "⟨?⟩".to_string(),
                        }
                    }
                })
                .collect();
            let exists = match t.exists {
                Existence::Always => String::new(),
                Existence::Open => match wsd.field_loc(Field::exists(t.tid)) {
                    Some((comp, _)) => format!("  ∃⟨C{comp}⟩"),
                    None => "  ∃⟨?⟩".to_string(),
                },
            };
            let _ = writeln!(out, "  {}: ({}){}", t.tid, cells.join(", "), exists);
        }
    }

    for idx in wsd.live_components() {
        let comp = wsd.component(idx).expect("live"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        let headers: Vec<String> = comp
            .fields()
            .iter()
            .map(|f| field_label(f, &owner))
            .collect();
        let _ = writeln!(out, "component C{idx}: {} | p", headers.join(" | "));
        for r in comp.rows() {
            let cells: Vec<String> = r.cells.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(out, "  {} | {}", cells.join(" | "), format_p(r.p));
        }
    }
    out
}

fn format_p(p: f64) -> String {
    if (p - p.round()).abs() < 1e-12 {
        format!("{}", p.round() as i64)
    } else {
        let s = format!("{p:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::medical_wsd;

    #[test]
    fn renders_the_paper_wsd() {
        let s = render(&medical_wsd());
        // the five components with the paper's values and probabilities
        assert!(s.contains("pregnancy | ultrasound | 0.4"), "{s}");
        assert!(s.contains("hypothyroidism | TSH | 0.6"), "{s}");
        assert!(s.contains("weight gain | 0.7"), "{s}");
        assert!(s.contains("obesity | 1"), "{s}");
        // field labels resolve to attribute names
        assert!(s.contains(".diagnosis"), "{s}");
        assert!(s.contains("relation R(diagnosis, test, symptom)"), "{s}");
    }

    #[test]
    fn renders_bottom_and_exists() {
        use maybms_relational::{ColumnType, Expr, Schema, Value};
        use maybms_worldset::OrSetCell;
        let mut w = crate::wsd::Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_orset(
            "r",
            vec![OrSetCell::weighted(vec![(Value::Int(1), 0.5), (Value::Int(2), 0.5)]).unwrap()],
        )
        .unwrap();
        let q = crate::algebra::Query::table("r").select(Expr::col("a").eq(Expr::lit(1i64)));
        let ans = q.eval(&w).unwrap();
        let s = render(&ans);
        assert!(s.contains('⊥'), "{s}");
        assert!(s.contains('∃'), "{s}");
    }
}
