//! Splitting components into independent factors.
//!
//! Decomposition is what makes WSDs exponentially more succinct than the
//! world-sets they represent: a component whose row distribution is a
//! product of distributions on disjoint column groups can be replaced by
//! one smaller component per group. This module detects such products and
//! performs the split (the inverse of [`crate::wsd::Wsd::merge_components`]).
//!
//! Marginal distributions are computed over the component's **interned
//! column codes** (`u32` keys) rather than cloned cell vectors, so a
//! marginal over k columns of an n-row component costs O(n·k) integer
//! hashing and no `Value` clones.

use std::collections::HashMap;

use crate::component::Component;
use crate::wsd::Wsd;

/// Union-find over dense indices: iterative path-halving `find` (no
/// recursion — stack-safe on arbitrarily wide components) with union by
/// size. Shared infrastructure: factorization groups correlated columns
/// with it, and [`crate::prob`] clusters template tuples by shared
/// components with it.
pub struct Uf {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Uf {
    pub fn new(n: usize) -> Uf {
        Uf { parent: (0..n).collect(), size: vec![1; n] }
    }

    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            // path halving: point x at its grandparent, then step there
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// Marginal distribution of a column group: distinct code combinations with
/// summed probabilities. Code keys are valid because interning is exact per
/// column.
fn marginal(c: &Component, cols: &[usize]) -> HashMap<Vec<u32>, f64> {
    let mut m: HashMap<Vec<u32>, f64> = HashMap::with_capacity(c.num_rows());
    for r in 0..c.num_rows() {
        let key: Vec<u32> = cols.iter().map(|&i| c.code(r, i)).collect();
        *m.entry(key).or_insert(0.0) += c.prob(r);
    }
    m
}

/// Tests whether columns `i` and `j` are (pairwise) independent: the joint
/// distribution must equal the product of the marginals on the *full* cross
/// support.
fn pairwise_independent(c: &Component, i: usize, j: usize, eps: f64) -> bool {
    let mi = marginal(c, &[i]);
    let mj = marginal(c, &[j]);
    let mij = marginal(c, &[i, j]);
    if mij.len() != mi.len() * mj.len() {
        return false; // missing combinations ⇒ correlated
    }
    for (key, &pij) in &mij {
        let pi = mi[&key[..1].to_vec()];
        let pj = mj[&key[1..].to_vec()];
        if (pij - pi * pj).abs() > eps {
            return false;
        }
    }
    true
}

/// Verifies that splitting into `blocks` exactly reconstructs `c`: the
/// product of the block marginals must have the same support size and
/// assign (within `eps`) the same probability to every original row.
/// Pairwise independence alone does not imply mutual independence, so this
/// check is what makes the split sound.
fn verify_split(c: &Component, blocks: &[Vec<usize>], eps: f64) -> bool {
    let marginals: Vec<HashMap<Vec<u32>, f64>> =
        blocks.iter().map(|b| marginal(c, b)).collect();
    let product_size: usize = marginals.iter().map(HashMap::len).product();
    // the deduplicated original support
    let full_cols: Vec<usize> = (0..c.num_fields()).collect();
    let original = marginal(c, &full_cols);
    if product_size != original.len() {
        return false;
    }
    for (codes, &p) in &original {
        let mut prod = 1.0;
        for (b, m) in blocks.iter().zip(&marginals) {
            let key: Vec<u32> = b.iter().map(|&i| codes[i]).collect();
            match m.get(&key) {
                Some(&q) => prod *= q,
                None => return false,
            }
        }
        if (p - prod).abs() > eps {
            return false;
        }
    }
    true
}

/// Factorizes a component into independent parts. Returns the column
/// blocks and the factor components; a single block means "not splittable".
pub fn factorize_component(c: &Component, eps: f64) -> (Vec<Vec<usize>>, Vec<Component>) {
    let n = c.num_fields();
    if n <= 1 || c.num_rows() <= 1 {
        return (vec![(0..n).collect()], vec![c.clone()]);
    }
    let mut uf = Uf::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if !pairwise_independent(c, i, j, eps) {
                uf.union(i, j);
            }
        }
    }
    let mut blocks_map: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let r = uf.find(i);
        blocks_map.entry(r).or_default().push(i);
    }
    let mut blocks: Vec<Vec<usize>> = blocks_map.into_values().collect();
    blocks.sort_by_key(|b| b[0]);
    if blocks.len() == 1 {
        return (blocks, vec![c.clone()]);
    }
    if !verify_split(c, &blocks, eps * 10.0) {
        // conservative fallback: keep the component whole
        return (vec![(0..n).collect()], vec![c.clone()]);
    }
    let comps: Vec<Component> = blocks.iter().map(|b| c.project_columns(b)).collect();
    (blocks, comps)
}

/// Factorizes every live component of a WSD in place, retargeting the field
/// map onto the factor components through the reverse index.
pub fn factorize_all(wsd: &mut Wsd) {
    for idx in wsd.live_components() {
        let comp = wsd.component(idx).expect("live").clone(); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        if comp.num_fields() <= 1 {
            continue;
        }
        let (blocks, factors) = factorize_component(&comp, 1e-9);
        if factors.len() <= 1 {
            continue;
        }
        // add_component re-aliases each factor's canonical fields away from
        // `idx`; whatever remains indexed under `idx` afterwards is an
        // alias and is retargeted through the block remap below.
        let mut new_indices: Vec<usize> = Vec::with_capacity(factors.len());
        for f in factors {
            new_indices.push(wsd.add_component(f));
        }
        // old column -> (factor component, column within it)
        let mut remap: HashMap<usize, (usize, usize)> = HashMap::new();
        for (bi, block) in blocks.iter().enumerate() {
            for (pos, &col) in block.iter().enumerate() {
                remap.insert(col, (new_indices[bi], pos));
            }
        }
        let leftover: Vec<(crate::field::Field, usize)> = wsd
            .fields_of_component(idx)
            .iter()
            .enumerate()
            .flat_map(|(col, fields)| fields.iter().map(move |&f| (f, col)))
            .collect();
        for (f, col) in leftover {
            wsd.alias_field(f, remap[&col]);
        }
        wsd.replace_component(idx, None);
    }
    wsd.compact();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use crate::component::CompRow;
    use crate::field::{Field, Tid};
    use maybms_relational::Value;

    fn v(n: i64) -> Cell {
        Cell::Val(Value::Int(n))
    }

    fn f(t: u64, a: u32) -> Field {
        Field::attr(Tid(t), a)
    }

    /// A product component: columns 0 and 1 independent.
    fn product_component() -> Component {
        let a = Component::singleton(f(1, 0), vec![(v(1), 0.4), (v(2), 0.6)]);
        let b = Component::singleton(f(1, 1), vec![(v(10), 0.5), (v(20), 0.5)]);
        a.product(&b)
    }

    #[test]
    fn splits_true_product() {
        let c = product_component();
        let (blocks, parts) = factorize_component(&c, 1e-9);
        assert_eq!(blocks.len(), 2);
        assert_eq!(parts.len(), 2);
        for p in &parts {
            p.validate().unwrap();
            assert_eq!(p.num_rows(), 2);
        }
    }

    #[test]
    fn keeps_correlated_component_whole() {
        // perfectly correlated: (1,10) w.p. 0.5, (2,20) w.p. 0.5
        let c = Component::new(
            vec![f(1, 0), f(1, 1)],
            vec![
                CompRow::new(vec![v(1), v(10)], 0.5),
                CompRow::new(vec![v(2), v(20)], 0.5),
            ],
        );
        let (blocks, parts) = factorize_component(&c, 1e-9);
        assert_eq!(blocks.len(), 1);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn partial_split() {
        // columns 0,1 correlated; column 2 independent of both
        let corr = Component::new(
            vec![f(1, 0), f(1, 1)],
            vec![
                CompRow::new(vec![v(1), v(10)], 0.3),
                CompRow::new(vec![v(2), v(20)], 0.7),
            ],
        );
        let ind = Component::singleton(f(1, 2), vec![(v(100), 0.5), (v(200), 0.5)]);
        let c = corr.product(&ind);
        let (blocks, parts) = factorize_component(&c, 1e-9);
        assert_eq!(blocks.len(), 2);
        let sizes: Vec<usize> = parts.iter().map(Component::num_fields).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn xor_is_not_split_despite_pairwise_independence() {
        // Three boolean columns where c = a XOR b, uniform on (a,b):
        // pairwise independent but mutually dependent. The verify step must
        // refuse to split.
        let rows = vec![
            CompRow::new(vec![v(0), v(0), v(0)], 0.25),
            CompRow::new(vec![v(0), v(1), v(1)], 0.25),
            CompRow::new(vec![v(1), v(0), v(1)], 0.25),
            CompRow::new(vec![v(1), v(1), v(0)], 0.25),
        ];
        let c = Component::new(vec![f(1, 0), f(1, 1), f(1, 2)], rows);
        let (blocks, _) = factorize_component(&c, 1e-9);
        assert_eq!(blocks.len(), 1, "XOR component must not be split");
    }

    #[test]
    fn union_find_is_stack_safe_on_wide_components() {
        // a long union chain that would overflow a recursive find
        let n = 200_000;
        let mut uf = Uf::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        let root = uf.find(0);
        assert_eq!(uf.find(n - 1), root);
        assert_eq!(uf.size[root], n);
    }

    #[test]
    fn factorize_all_preserves_semantics() {
        use maybms_relational::{ColumnType, Schema};
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
        let t = w.fresh_tid();
        w.add_component(product_component_for(t));
        w.push_template(
            "r",
            crate::wsd::TupleTemplate {
                tid: t,
                cells: vec![crate::wsd::TemplateCell::Open, crate::wsd::TemplateCell::Open],
                exists: crate::wsd::Existence::Always,
            },
        )
        .unwrap();
        let before = w.to_worldset(100).unwrap();
        assert_eq!(w.num_components(), 1);
        factorize_all(&mut w);
        w.validate().unwrap();
        assert_eq!(w.num_components(), 2);
        let after = w.to_worldset(100).unwrap();
        assert!(before.equivalent(&after, 1e-9));
    }

    fn product_component_for(t: Tid) -> Component {
        let a = Component::singleton(Field::attr(t, 0), vec![(v(1), 0.4), (v(2), 0.6)]);
        let b = Component::singleton(Field::attr(t, 1), vec![(v(10), 0.5), (v(20), 0.5)]);
        a.product(&b)
    }
}
