//! The paper's running example, constructed verbatim.
//!
//! Section 2 of the paper illustrates WSDs "using a medical scenario
//! describing diagnoses, tests, and symptoms": a relation `R(diagnosis,
//! test, symptom)` with two patient-record tuples r1 and r2, decomposed
//! into five components. The represented world-set has four worlds; the
//! record (hypothyroidism, TSH, weight gain) + (obesity, BMI, weight gain)
//! has probability 0.6 · 0.7 · 1 · 1 · 1 = 0.42.

use maybms_relational::{ColumnType, Schema, Value};

use crate::cell::Cell;
use crate::component::{CompRow, Component};
use crate::field::Field;
use crate::wsd::{Existence, TemplateCell, TupleTemplate, Wsd};

/// The schema of the medical relation `R`.
pub fn medical_schema() -> Schema {
    Schema::new(vec![
        ("diagnosis", ColumnType::Str),
        ("test", ColumnType::Str),
        ("symptom", ColumnType::Str),
    ])
}

/// Builds the §2 medical WSD exactly as printed in the paper:
///
/// ```text
/// r1.Diagnosis    r1.Test    p      r1.Symptom   p     r2.Diagnosis p
/// pregnancy       ultrasound 0.4  × weight gain  0.7 × obesity      1 ×
/// hypothyroidism  TSH        0.6    fatigue      0.3
///
/// r2.Test p     r2.Symptom  p
/// BMI     1   × weight gain 1
/// ```
pub fn medical_wsd() -> Wsd {
    let mut w = Wsd::new();
    w.add_relation("R", medical_schema()).expect("fresh wsd"); // maybms-lint: allow(no-panic-in-prod) -- demo builder with a statically known schema; failure is a bug in the example itself

    let v = |s: &str| Cell::Val(Value::str(s));

    let r1 = w.fresh_tid();
    // component 1: {r1.Diagnosis, r1.Test}
    w.add_component(Component::new(
        vec![Field::attr(r1, 0), Field::attr(r1, 1)],
        vec![
            CompRow::new(vec![v("pregnancy"), v("ultrasound")], 0.4),
            CompRow::new(vec![v("hypothyroidism"), v("TSH")], 0.6),
        ],
    ));
    // component 2: {r1.Symptom}
    w.add_component(Component::singleton(
        Field::attr(r1, 2),
        vec![(v("weight gain"), 0.7), (v("fatigue"), 0.3)],
    ));
    w.push_template(
        "R",
        TupleTemplate {
            tid: r1,
            cells: vec![TemplateCell::Open, TemplateCell::Open, TemplateCell::Open],
            exists: Existence::Always,
        },
    )
    .expect("schema matches"); // maybms-lint: allow(no-panic-in-prod) -- demo builder with a statically known schema; failure is a bug in the example itself

    let r2 = w.fresh_tid();
    // components 3–5: {r2.Diagnosis}, {r2.Test}, {r2.Symptom}, each certain
    w.add_component(Component::singleton(Field::attr(r2, 0), vec![(v("obesity"), 1.0)]));
    w.add_component(Component::singleton(Field::attr(r2, 1), vec![(v("BMI"), 1.0)]));
    w.add_component(Component::singleton(
        Field::attr(r2, 2),
        vec![(v("weight gain"), 1.0)],
    ));
    w.push_template(
        "R",
        TupleTemplate {
            tid: r2,
            cells: vec![TemplateCell::Open, TemplateCell::Open, TemplateCell::Open],
            exists: Existence::Always,
        },
    )
    .expect("schema matches"); // maybms-lint: allow(no-panic-in-prod) -- demo builder with a statically known schema; failure is a bug in the example itself

    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medical_wsd_is_valid_with_five_components() {
        let w = medical_wsd();
        w.validate().unwrap();
        assert_eq!(w.num_components(), 5);
        // 2 * 2 * 1 * 1 * 1 = 4 worlds, as in the paper
        assert_eq!(w.world_count().to_u64(), Some(4));
    }

    #[test]
    fn world_probabilities_match_paper() {
        let w = medical_wsd();
        let ws = w.to_worldset(10).unwrap();
        ws.validate().unwrap();
        assert_eq!(ws.len(), 4);
        // the record described in the paper: hypothyroidism/TSH with weight
        // gain (plus the certain obesity record) has probability 0.42
        let found = ws.worlds().iter().any(|(world, p)| {
            let r = world.get("R").unwrap();
            let has_hypo = r.rows().iter().any(|t| {
                t[0] == Value::str("hypothyroidism")
                    && t[1] == Value::str("TSH")
                    && t[2] == Value::str("weight gain")
            });
            let has_obesity = r.rows().iter().any(|t| t[0] == Value::str("obesity"));
            has_hypo && has_obesity && (p - 0.42).abs() < 1e-12
        });
        assert!(found, "paper's 0.42 world must be represented");
    }

    #[test]
    fn every_world_contains_the_certain_record() {
        let w = medical_wsd();
        let ws = w.to_worldset(10).unwrap();
        for (world, _) in ws.worlds() {
            let r = world.get("R").unwrap();
            assert!(r.rows().iter().any(|t| {
                t[0] == Value::str("obesity")
                    && t[1] == Value::str("BMI")
                    && t[2] == Value::str("weight gain")
            }));
        }
    }
}
