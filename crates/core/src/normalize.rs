//! WSD normalization.
//!
//! After a query marks fields with ⊥, the decomposition usually contains
//! redundancy. The paper normalizes by (1) propagating ⊥ across the fields
//! a dead tuple has in the same component row, (2) dropping the columns of
//! tuples that exist in no world, and (3) merging rows that have become
//! identical. We additionally (4) inline columns that became constant into
//! the template (the inverse of decomposition) and (5) drop components left
//! without fields.
//!
//! # Incremental (dirty-set) normalization
//!
//! [`normalize`] is **incremental**: it drains the [`crate::wsd::Wsd`]
//! dirty set — the components touched since the last normalize — and runs
//! the passes only over those, re-marking a component *only when a pass
//! actually changes it* (sets a ⊥, drops a column, merges rows, …).
//! Because every change is monotone (⊥ cells only grow; tuples, columns
//! and rows only shrink) the drain loop terminates, and components that
//! were already at fixpoint are never rescanned. All ownership questions
//! ("which tuples reference this column?") are answered by the WSD's
//! persistent reverse field index instead of per-pass template scans.
//!
//! The contract for mutators: any operation that touches a component's
//! rows, adds/merges components, or maps/unmaps a field marks the affected
//! components dirty (the `Wsd` mutation API does this automatically), so a
//! following `normalize` sees exactly the damage. [`normalize_from_scratch`]
//! marks everything dirty first — the full-fixpoint escape hatch used by
//! oracle tests; [`normalize_full`] additionally re-factorizes components
//! into independent parts (see [`crate::factorize`]).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use maybms_obs::Counter;

use crate::cell::Cell;
use crate::exec::WorkerPool;
use crate::field::{FieldKind, Tid};
use crate::wsd::{Existence, TemplateCell, Wsd};

/// Step 1: ⊥-propagation. In each component row, a tuple is dead if any of
/// its columns there is ⊥; the *other* columns of that row referenced only
/// by dead tuples carry irrelevant values and are set to ⊥ (this is what
/// turns the paper's `(⊥, TSH)` row into `(⊥, ⊥)`), enabling row merging.
/// Tuple/column ownership comes from the reverse field index; cells are
/// tested through interned codes, not materialized rows. Components are
/// independent, so the scan phase fans out over the pool; the ⊥ writes
/// are applied serially afterwards.
fn propagate_bottom(wsd: &mut Wsd, comps: &[usize], pool: &WorkerPool) {
    let all_writes: Vec<Vec<(usize, usize)>> =
        pool.map(comps, |_, &ci| bottom_writes_of(wsd, ci));
    for (&ci, writes) in comps.iter().zip(&all_writes) {
        if writes.is_empty() {
            continue;
        }
        let comp = wsd.component_mut_silent(ci).expect("live component"); // maybms-lint: allow(no-panic-in-prod) -- component indices are maintained by the WSD itself; a dangling index means the decomposition is corrupt, so fail-stop
        for &(row, col) in writes {
            comp.set_bottom(row, col);
        }
        wsd.mark_dirty(ci);
    }
}

/// The read-only half of ⊥-propagation for one component: the `(row,
/// col)` cells that must become ⊥.
fn bottom_writes_of(wsd: &Wsd, ci: usize) -> Vec<(usize, usize)> {
    let Some(comp) = wsd.component(ci) else { return Vec::new() };
    let rev = wsd.fields_of_component(ci);
    // tuples with at least one column in this component
    let mut tuple_cols: HashMap<Tid, Vec<usize>> = HashMap::new();
    for (col, fields) in rev.iter().enumerate() {
        for f in fields {
            tuple_cols.entry(f.tid).or_default().push(col);
        }
    }
    if tuple_cols.is_empty() {
        return Vec::new();
    }
    // maybms-lint: allow(determinism) -- tuples_here order feeds only per-tuple dead/owner predicates; `writes` is emitted in (row, col) scan order below
    let tuples_here: Vec<(Tid, Vec<usize>)> = tuple_cols.into_iter().collect();
    let ncols = comp.num_fields();
    // per column: which tuples (as indices into tuples_here) own it
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); ncols];
    for (ti, (_, cols)) in tuples_here.iter().enumerate() {
        for &c in cols {
            owners[c].push(ti);
        }
    }

    let mut writes: Vec<(usize, usize)> = Vec::new();
    let mut dead = vec![false; tuples_here.len()];
    for row in 0..comp.num_rows() {
        let mut any_dead = false;
        for (ti, (_, cols)) in tuples_here.iter().enumerate() {
            dead[ti] = cols.iter().any(|&c| comp.cell(row, c).is_bottom());
            any_dead |= dead[ti];
        }
        if !any_dead {
            continue;
        }
        for (col, os) in owners.iter().enumerate() {
            if comp.cell(row, col).is_bottom() {
                continue;
            }
            if !os.is_empty() && os.iter().all(|&ti| dead[ti]) {
                writes.push((row, col));
            }
        }
    }
    writes
}

/// Step 2: drop tuples that exist in no world — those with an open field or
/// existence column that is ⊥ in *every* row of its component. Only columns
/// of dirty components can have become all-⊥ since the last normalize, so
/// only those are scanned (in parallel; the template edit is serial).
fn drop_dead_tuples(wsd: &mut Wsd, comps: &[usize], pool: &WorkerPool) {
    let per_comp: Vec<Vec<Tid>> = pool.map(comps, |_, &ci| {
        let Some(comp) = wsd.component(ci) else { return Vec::new() };
        let rev = wsd.fields_of_component(ci);
        let mut dead = Vec::new();
        for (col, fields) in rev.iter().enumerate() {
            if fields.is_empty() || col >= comp.num_fields() {
                continue;
            }
            if comp.column_all_bottom(col) {
                dead.extend(fields.iter().map(|f| f.tid));
            }
        }
        dead
    });
    let dead: HashSet<Tid> = per_comp.into_iter().flatten().collect();
    if dead.is_empty() {
        return;
    }
    for tpl in wsd.relations.values_mut() {
        tpl.tuples.retain(|t| !dead.contains(&t.tid));
    }
    wsd.retain_fields(|f| !dead.contains(&f.tid));
}

/// Step 3: inline constant columns. A column whose cells are the same
/// non-⊥ value in every row does not vary across worlds: attribute fields
/// become certain template values, existence fields become `Always`. The
/// constant detection scans fan out; template edits stay serial.
fn inline_constants(wsd: &mut Wsd, comps: &[usize], pool: &WorkerPool) {
    // (field, Some(value) for attrs / None for exists) pairs to inline
    let per_comp: Vec<Vec<(crate::field::Field, Option<maybms_relational::Value>)>> =
        pool.map(comps, |_, &ci| {
            let Some(comp) = wsd.component(ci) else { return Vec::new() };
            let rev = wsd.fields_of_component(ci);
            let mut resolved = Vec::new();
            for (col, fields) in rev.iter().enumerate() {
                if fields.is_empty() || col >= comp.num_fields() {
                    continue;
                }
                if let Some(cell) = comp.column_constant(col) {
                    for &f in fields {
                        match (f.kind, cell) {
                            (FieldKind::Attr(_), Cell::Val(v)) => {
                                resolved.push((f, Some(v.clone())))
                            }
                            (FieldKind::Exists, _) => resolved.push((f, None)),
                            (FieldKind::Attr(_), Cell::Bottom) => {
                                unreachable!("constant is non-⊥") // maybms-lint: allow(no-panic-in-prod) -- constants are never bottom by parser construction
                            }
                        }
                    }
                }
            }
            resolved
        });
    let resolved: Vec<_> = per_comp.into_iter().flatten().collect();
    if resolved.is_empty() {
        return;
    }
    // tid → (relation, tuple index) for exactly the affected tuples
    let affected: HashSet<Tid> = resolved.iter().map(|(f, _)| f.tid).collect();
    let mut where_is: HashMap<Tid, (String, usize)> = HashMap::with_capacity(affected.len());
    for (name, tpl) in &wsd.relations {
        for (i, t) in tpl.tuples.iter().enumerate() {
            if affected.contains(&t.tid) {
                where_is.insert(t.tid, (name.clone(), i));
            }
        }
    }
    for (f, val) in resolved {
        let Some((rel, i)) = where_is.get(&f.tid) else { continue };
        let t = &mut wsd.relations.get_mut(rel).expect("indexed").tuples[*i]; // maybms-lint: allow(no-panic-in-prod) -- rel names were collected from this same relations map above
        match (f.kind, val) {
            (FieldKind::Attr(pos), Some(v)) => {
                let cell = &mut t.cells[pos as usize];
                if matches!(cell, TemplateCell::Open) {
                    *cell = TemplateCell::Certain(v);
                    wsd.unmap_field(f);
                }
            }
            (FieldKind::Exists, None) if t.exists == Existence::Open => {
                t.exists = Existence::Always;
                wsd.unmap_field(f);
            }
            _ => {}
        }
    }
}

/// Step 4: garbage-collect unreferenced columns: project every dirty
/// component onto the columns still referenced by some template field
/// (merging rows and summing probabilities — this is what removes the
/// paper's Symptom component after the projection). Fieldless components
/// are dropped. Projections (the expensive half) run on the pool; slot
/// replacement and field remapping are serial.
fn gc_columns(wsd: &mut Wsd, comps: &[usize], pool: &WorkerPool) {
    // per component: None = untouched, Some((keep, replacement))
    type GcPlan = Option<(Vec<usize>, Option<crate::component::Component>)>;
    let plans: Vec<GcPlan> = pool.map(comps, |_, &ci| {
        let comp = wsd.component(ci)?;
        let rev = wsd.fields_of_component(ci);
        let keep: Vec<usize> = (0..comp.num_fields())
            .filter(|&c| rev.get(c).map(|v| !v.is_empty()).unwrap_or(false))
            .collect();
        if keep.len() == comp.num_fields() {
            return None;
        }
        if keep.is_empty() {
            return Some((keep, None));
        }
        let projected = comp.project_columns(&keep);
        Some((keep, Some(projected)))
    });
    for (&ci, plan) in comps.iter().zip(plans) {
        match plan {
            None => {}
            Some((_, None)) => wsd.replace_component(ci, None),
            Some((keep, Some(projected))) => {
                wsd.replace_component(ci, Some(projected));
                wsd.remap_columns(ci, &keep);
                wsd.mark_dirty(ci);
            }
        }
    }
}

/// Step 5: merge duplicate rows in every dirty component. The components
/// are temporarily taken out of their slots so the dedups (each confined
/// to one component) can run on the pool.
fn dedup_rows(wsd: &mut Wsd, comps: &[usize], pool: &WorkerPool) {
    let mut work: Vec<(usize, crate::component::Component)> = comps
        .iter()
        .filter_map(|&ci| wsd.components[ci].take().map(|c| (ci, c)))
        .collect();
    let changed: Vec<bool> = pool.map_mut(&mut work, |_, (_, c)| c.dedup_rows(1e-12));
    for ((ci, c), ch) in work.into_iter().zip(changed) {
        wsd.components[ci] = Some(c);
        if ch {
            wsd.mark_dirty(ci);
        }
    }
}

/// The incremental normalization pipeline: drains the dirty set to a
/// fixpoint, then compacts component slots. Components untouched since the
/// last normalize are never scanned. Sequential — [`normalize_in`] routes
/// the per-component passes through a worker pool.
pub fn normalize(wsd: &mut Wsd) {
    normalize_in(wsd, WorkerPool::sequential());
}

/// [`normalize`] with the per-component passes fanned out over `pool`.
/// Deterministic: every pass computes its mutations in a read-only
/// parallel scan and applies them serially in component order, so the
/// resulting decomposition is identical at every worker count.
pub fn normalize_in(wsd: &mut Wsd, pool: &WorkerPool) {
    /// Normalization counters, resolved once: fixpoint passes run and
    /// dirty components scanned. Both are driven by the deterministic
    /// drain loop, so totals are identical at every worker count.
    struct NormMetrics {
        passes: Arc<Counter>,
        components: Arc<Counter>,
    }
    fn metrics() -> &'static NormMetrics {
        static M: OnceLock<NormMetrics> = OnceLock::new();
        M.get_or_init(|| NormMetrics {
            passes: maybms_obs::counter("normalize.passes"),
            components: maybms_obs::counter("normalize.components"),
        })
    }
    let mut did_work = false;
    loop {
        let dirty = wsd.take_dirty();
        if dirty.is_empty() {
            break;
        }
        did_work = true;
        metrics().passes.inc();
        metrics().components.add(dirty.len() as u64);
        propagate_bottom(wsd, &dirty, pool);
        drop_dead_tuples(wsd, &dirty, pool);
        inline_constants(wsd, &dirty, pool);
        gc_columns(wsd, &dirty, pool);
        dedup_rows(wsd, &dirty, pool);
    }
    if did_work || wsd.has_tombstones() {
        wsd.compact();
    }
}

/// Full-pass normalization: marks every live component dirty first. The
/// oracle reference for [`normalize`] and the escape hatch for callers
/// that bypassed the `Wsd` mutation API.
pub fn normalize_from_scratch(wsd: &mut Wsd) {
    wsd.mark_all_dirty();
    normalize(wsd);
}

/// [`normalize_from_scratch`] on a worker pool (the E6 scaling bench).
pub fn normalize_from_scratch_in(wsd: &mut Wsd, pool: &WorkerPool) {
    wsd.mark_all_dirty();
    normalize_in(wsd, pool);
}

/// Full normalization plus factorization of every component into
/// independent parts, then normalization again (factor blocks may expose
/// constants).
pub fn normalize_full(wsd: &mut Wsd) {
    normalize_from_scratch(wsd);
    crate::factorize::factorize_all(wsd);
    normalize(wsd);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompRow, Component};
    use crate::field::Field;
    use maybms_relational::{ColumnType, Schema, Value};
    use maybms_worldset::OrSetCell;

    fn v(s: &str) -> Cell {
        Cell::Val(Value::str(s))
    }

    /// Rebuild the paper's post-selection WSD (§2) and normalize it.
    /// Expected: the r2 tuple disappears, its components are dropped, and
    /// (⊥, TSH) becomes (⊥, ⊥) by propagation.
    #[test]
    fn paper_normalization_example() {
        let schema = Schema::new(vec![
            ("diagnosis", ColumnType::Str),
            ("test", ColumnType::Str),
            ("symptom", ColumnType::Str),
        ]);
        let mut w = Wsd::new();
        w.add_relation("R", schema).unwrap();

        // r1: components as in the paper, post-selection on Diagnosis.
        let r1 = w.fresh_tid();
        let c1 = Component::new(
            vec![Field::attr(r1, 0), Field::attr(r1, 1)],
            vec![
                CompRow::new(vec![v("pregnancy"), v("ultrasound")], 0.4),
                CompRow::new(vec![Cell::Bottom, v("TSH")], 0.6),
            ],
        );
        let c2 = Component::singleton(
            Field::attr(r1, 2),
            vec![(v("weight gain"), 0.7), (v("fatigue"), 0.3)],
        );
        w.add_component(c1);
        w.add_component(c2);
        w.push_template(
            "R",
            crate::wsd::TupleTemplate {
                tid: r1,
                cells: vec![TemplateCell::Open, TemplateCell::Open, TemplateCell::Open],
                exists: Existence::Always,
            },
        )
        .unwrap();

        // r2: all fields marked ⊥ by the selection.
        let r2 = w.fresh_tid();
        for pos in 0..3u32 {
            let comp = Component::singleton(Field::attr(r2, pos), vec![(Cell::Bottom, 1.0)]);
            w.add_component(comp);
        }
        w.push_template(
            "R",
            crate::wsd::TupleTemplate {
                tid: r2,
                cells: vec![TemplateCell::Open, TemplateCell::Open, TemplateCell::Open],
                exists: Existence::Always,
            },
        )
        .unwrap();
        w.validate().unwrap();

        let before = w.to_worldset(100).unwrap();
        normalize(&mut w);
        w.validate().unwrap();
        let after = w.to_worldset(100).unwrap();
        assert!(before.equivalent(&after, 1e-9), "normalization must preserve semantics");

        // r2 is gone
        assert_eq!(w.relation("R").unwrap().tuples.len(), 1);
        // only the two r1 components remain
        assert_eq!(w.num_components(), 2);
        // ⊥ propagated onto TSH in the first component
        let stats = w.stats();
        assert_eq!(stats.component_rows, 4);
        let c = w
            .field_loc(Field::attr(r1, 1))
            .and_then(|(ci, _)| w.component(ci))
            .unwrap();
        assert!(c
            .rows()
            .iter()
            .any(|r| r.cells.iter().all(Cell::is_bottom)));
    }

    #[test]
    fn inline_constants_moves_to_template() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        // a single-alternative "or-set" stored as a component on purpose
        let t = w.fresh_tid();
        let comp = Component::singleton(Field::attr(t, 0), vec![(Cell::Val(Value::Int(7)), 1.0)]);
        w.add_component(comp);
        w.push_template(
            "r",
            crate::wsd::TupleTemplate {
                tid: t,
                cells: vec![TemplateCell::Open],
                exists: Existence::Always,
            },
        )
        .unwrap();
        normalize(&mut w);
        assert_eq!(w.num_components(), 0);
        assert_eq!(
            w.relation("r").unwrap().tuples[0].cells[0],
            TemplateCell::Certain(Value::Int(7))
        );
        let ws = w.to_worldset(10).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.worlds()[0].0.get("r").unwrap().len(), 1);
    }

    #[test]
    fn normalization_preserves_semantics_on_orset_wsd() {
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)]),
        )
        .unwrap();
        for i in 0..3 {
            w.push_orset(
                "r",
                vec![
                    OrSetCell::weighted(vec![(Value::Int(i), 0.5), (Value::Int(i + 10), 0.5)])
                        .unwrap(),
                    OrSetCell::certain("x"),
                ],
            )
            .unwrap();
        }
        let before = w.to_worldset(100).unwrap();
        normalize_full(&mut w);
        w.validate().unwrap();
        let after = w.to_worldset(100).unwrap();
        assert!(before.equivalent(&after, 1e-9));
    }

    #[test]
    fn incremental_skips_clean_components() {
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
        for i in 0..4 {
            w.push_orset(
                "r",
                vec![
                    OrSetCell::weighted(vec![(Value::Int(i), 0.5), (Value::Int(i + 10), 0.5)])
                        .unwrap(),
                    OrSetCell::certain(0i64),
                ],
            )
            .unwrap();
        }
        normalize(&mut w);
        assert!(w.dirty_components().is_empty(), "normalize drains the dirty set");
        // a second normalize with no mutations touches nothing and
        // preserves the decomposition
        let stats = w.stats();
        normalize(&mut w);
        assert_eq!(w.stats(), stats);
        // mutating one component makes exactly it dirty
        let live = w.live_components();
        let _ = w.component_mut(live[0]);
        assert_eq!(w.dirty_components(), vec![live[0]]);
        normalize(&mut w);
        assert!(w.dirty_components().is_empty());
    }

    #[test]
    fn incremental_equals_full_pass() {
        // Build, normalize, then damage one component through the tracked
        // API; the incremental result must equal normalize_from_scratch on
        // a copy.
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        for i in 0..3 {
            w.push_orset(
                "r",
                vec![OrSetCell::weighted(vec![
                    (Value::Int(i), 0.5),
                    (Value::Int(i + 10), 0.5),
                ])
                .unwrap()],
            )
            .unwrap();
        }
        normalize(&mut w);
        // kill one alternative via the chase-style mutation API
        let live = w.live_components();
        let c = w.component_mut(live[0]).unwrap();
        c.retain_rows(|r| r.cell(0) != &Cell::Val(Value::Int(0)));
        c.renormalize();

        let mut full = w.clone();
        normalize(&mut w);
        normalize_from_scratch(&mut full);
        w.validate().unwrap();
        full.validate().unwrap();
        let a = w.to_worldset(1000).unwrap();
        let b = full.to_worldset(1000).unwrap();
        assert!(a.equivalent(&b, 1e-9));
        assert_eq!(w.stats(), full.stats());
    }

    #[test]
    fn gc_drops_unreferenced_component() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        // orphan component not referenced by any template
        let orphan = Component::singleton(
            Field::attr(crate::field::Tid(999), 0),
            vec![(Cell::Val(Value::Int(1)), 0.5), (Cell::Val(Value::Int(2)), 0.5)],
        );
        w.add_component(orphan);
        // gc keeps it while the field map still references it — so first
        // drop the mappings, as extract() does.
        w.clear_field_map();
        normalize(&mut w);
        assert_eq!(w.num_components(), 0);
    }
}
