//! WSD normalization.
//!
//! After a query marks fields with ⊥, the decomposition usually contains
//! redundancy. The paper normalizes by (1) propagating ⊥ across the fields
//! a dead tuple has in the same component row, (2) dropping the columns of
//! tuples that exist in no world, and (3) merging rows that have become
//! identical. We additionally (4) inline columns that became constant into
//! the template (the inverse of decomposition) and (5) drop components left
//! without fields. [`normalize`] runs these to a fixpoint;
//! [`normalize_full`] also re-factorizes components into independent parts
//! (see [`crate::factorize`]).

use std::collections::{HashMap, HashSet};

use crate::cell::Cell;
use crate::field::{Field, Tid};
use crate::wsd::{Existence, TemplateCell, Wsd};

/// Which tuples reference each column of each component, derived from the
/// live templates. Aliasing makes this many-to-many.
fn column_owners(wsd: &Wsd) -> HashMap<(usize, usize), HashSet<Tid>> {
    let mut owners: HashMap<(usize, usize), HashSet<Tid>> = HashMap::new();
    for tpl in wsd.relations.values() {
        for t in &tpl.tuples {
            for (i, cell) in t.cells.iter().enumerate() {
                if matches!(cell, TemplateCell::Open) {
                    if let Some(loc) = wsd.field_loc(Field::attr(t.tid, i as u32)) {
                        owners.entry(loc).or_default().insert(t.tid);
                    }
                }
            }
            if t.exists == Existence::Open {
                if let Some(loc) = wsd.field_loc(Field::exists(t.tid)) {
                    owners.entry(loc).or_default().insert(t.tid);
                }
            }
        }
    }
    owners
}

/// The columns (per component) each tuple's open fields map to.
fn tuple_columns(wsd: &Wsd) -> HashMap<Tid, HashMap<usize, Vec<usize>>> {
    let mut map: HashMap<Tid, HashMap<usize, Vec<usize>>> = HashMap::new();
    for tpl in wsd.relations.values() {
        for t in &tpl.tuples {
            let mut locs: Vec<(usize, usize)> = Vec::new();
            for (i, cell) in t.cells.iter().enumerate() {
                if matches!(cell, TemplateCell::Open) {
                    if let Some(loc) = wsd.field_loc(Field::attr(t.tid, i as u32)) {
                        locs.push(loc);
                    }
                }
            }
            if t.exists == Existence::Open {
                if let Some(loc) = wsd.field_loc(Field::exists(t.tid)) {
                    locs.push(loc);
                }
            }
            let entry = map.entry(t.tid).or_default();
            for (c, col) in locs {
                entry.entry(c).or_default().push(col);
            }
        }
    }
    map
}

/// Step 1: ⊥-propagation. In each component row, a tuple is dead if any of
/// its columns there is ⊥; the *other* columns of that row referenced only
/// by dead tuples carry irrelevant values and are set to ⊥ (this is what
/// turns the paper's `(⊥, TSH)` row into `(⊥, ⊥)`), enabling row merging.
pub fn propagate_bottom(wsd: &mut Wsd) {
    let owners = column_owners(wsd);
    let per_tuple = tuple_columns(wsd);

    for comp_idx in wsd.live_components() {
        // tuples with at least one column in this component
        let tuples_here: Vec<(&Tid, &Vec<usize>)> = per_tuple
            .iter()
            .filter_map(|(tid, by_comp)| by_comp.get(&comp_idx).map(|cols| (tid, cols)))
            .collect();
        if tuples_here.is_empty() {
            continue;
        }
        let ncols = wsd.component(comp_idx).map(|c| c.num_fields()).unwrap_or(0);
        // columns owned exclusively by tuples present in this component
        let mut col_owner_sets: Vec<Option<&HashSet<Tid>>> = vec![None; ncols];
        for (col, slot) in col_owner_sets.iter_mut().enumerate() {
            *slot = owners.get(&(comp_idx, col));
        }

        let comp = wsd.component_mut(comp_idx).expect("live component");
        for row in comp.rows_mut() {
            // which tuples are dead in this row
            let mut dead: HashSet<Tid> = HashSet::new();
            for (tid, cols) in &tuples_here {
                if cols.iter().any(|&c| row.cells[c].is_bottom()) {
                    dead.insert(**tid);
                }
            }
            if dead.is_empty() {
                continue;
            }
            for (col, cell) in row.cells.iter_mut().enumerate() {
                if cell.is_bottom() {
                    continue;
                }
                if let Some(os) = col_owner_sets[col] {
                    if !os.is_empty() && os.iter().all(|t| dead.contains(t)) {
                        *cell = Cell::Bottom;
                    }
                }
            }
        }
    }
}

/// Step 2: drop tuples that exist in no world — those with an open field or
/// existence column that is ⊥ in *every* row of its component.
pub fn drop_dead_tuples(wsd: &mut Wsd) {
    let mut dead: HashSet<Tid> = HashSet::new();
    for tpl in wsd.relations.values() {
        for t in &tpl.tuples {
            let mut locs: Vec<(usize, usize)> = Vec::new();
            for (i, cell) in t.cells.iter().enumerate() {
                if matches!(cell, TemplateCell::Open) {
                    if let Some(loc) = wsd.field_loc(Field::attr(t.tid, i as u32)) {
                        locs.push(loc);
                    }
                }
            }
            if t.exists == Existence::Open {
                if let Some(loc) = wsd.field_loc(Field::exists(t.tid)) {
                    locs.push(loc);
                }
            }
            for (c, col) in locs {
                if let Some(comp) = wsd.component(c) {
                    if comp.rows().iter().all(|r| r.cells[col].is_bottom()) {
                        dead.insert(t.tid);
                        break;
                    }
                }
            }
        }
    }
    if dead.is_empty() {
        return;
    }
    for tpl in wsd.relations.values_mut() {
        tpl.tuples.retain(|t| !dead.contains(&t.tid));
    }
    wsd.field_map.retain(|f, _| !dead.contains(&f.tid));
}

/// Step 3: inline constant columns. A column whose cells are the same
/// non-⊥ value in every row does not vary across worlds: attribute fields
/// become certain template values, existence fields become `Always`.
pub fn inline_constants(wsd: &mut Wsd) {
    // find constant columns
    let mut constant: HashMap<(usize, usize), Cell> = HashMap::new();
    for idx in wsd.live_components() {
        let comp = wsd.component(idx).expect("live");
        for col in 0..comp.num_fields() {
            let first = &comp.rows()[0].cells[col];
            if first.is_bottom() {
                continue;
            }
            if comp.rows().iter().all(|r| &r.cells[col] == first) {
                constant.insert((idx, col), first.clone());
            }
        }
    }
    if constant.is_empty() {
        return;
    }
    // rewrite templates
    let mut resolved: Vec<Field> = Vec::new();
    for tpl in wsd.relations.values_mut() {
        for t in &mut tpl.tuples {
            for (i, cell) in t.cells.iter_mut().enumerate() {
                if matches!(cell, TemplateCell::Open) {
                    let f = Field::attr(t.tid, i as u32);
                    if let Some(loc) = wsd.field_map.get(&f) {
                        if let Some(Cell::Val(v)) = constant.get(loc) {
                            *cell = TemplateCell::Certain(v.clone());
                            resolved.push(f);
                        }
                    }
                }
            }
            if t.exists == Existence::Open {
                let f = Field::exists(t.tid);
                if let Some(loc) = wsd.field_map.get(&f) {
                    if constant.contains_key(loc) {
                        t.exists = Existence::Always;
                        resolved.push(f);
                    }
                }
            }
        }
    }
    for f in resolved {
        wsd.field_map.remove(&f);
    }
}

/// Step 4: garbage-collect unreferenced columns: project every component
/// onto the columns still referenced by some template field (merging rows
/// and summing probabilities — this is what removes the paper's Symptom
/// component after the projection). Fieldless components are dropped.
pub fn gc_columns(wsd: &mut Wsd) {
    let mut referenced: HashMap<usize, HashSet<usize>> = HashMap::new();
    for &(c, col) in wsd.field_map.values() {
        referenced.entry(c).or_default().insert(col);
    }
    for idx in wsd.live_components() {
        let keep: Vec<usize> = match referenced.get(&idx) {
            Some(set) => {
                let mut v: Vec<usize> = set.iter().copied().collect();
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        };
        let comp = wsd.component(idx).expect("live");
        if keep.len() == comp.num_fields() {
            continue;
        }
        if keep.is_empty() {
            wsd.components[idx] = None;
            continue;
        }
        let projected = comp.project_columns(&keep);
        // remap columns: old position -> new position
        let remap: HashMap<usize, usize> =
            keep.iter().enumerate().map(|(new, &old)| (old, new)).collect();
        for loc in wsd.field_map.values_mut() {
            if loc.0 == idx {
                loc.1 = remap[&loc.1];
            }
        }
        wsd.components[idx] = Some(projected);
    }
}

/// Step 5: merge duplicate rows in every component.
pub fn dedup_rows(wsd: &mut Wsd) {
    for idx in wsd.live_components() {
        if let Some(c) = wsd.component_mut(idx) {
            c.dedup_rows(1e-12);
        }
    }
}

/// The normalization pipeline, run to a fixpoint, then compacted.
pub fn normalize(wsd: &mut Wsd) {
    loop {
        let before = signature(wsd);
        propagate_bottom(wsd);
        drop_dead_tuples(wsd);
        inline_constants(wsd);
        gc_columns(wsd);
        dedup_rows(wsd);
        if signature(wsd) == before {
            break;
        }
    }
    wsd.compact();
}

/// Normalization plus factorization of every component into independent
/// parts, then normalization again (factor blocks may expose constants).
pub fn normalize_full(wsd: &mut Wsd) {
    normalize(wsd);
    crate::factorize::factorize_all(wsd);
    normalize(wsd);
}

fn signature(wsd: &Wsd) -> (usize, usize, usize) {
    let s = wsd.stats();
    (s.template_tuples, s.components, s.component_cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompRow, Component};
    use maybms_relational::{ColumnType, Schema, Value};
    use maybms_worldset::OrSetCell;

    fn v(s: &str) -> Cell {
        Cell::Val(Value::str(s))
    }

    /// Rebuild the paper's post-selection WSD (§2) and normalize it.
    /// Expected: the r2 tuple disappears, its components are dropped, and
    /// (⊥, TSH) becomes (⊥, ⊥) by propagation.
    #[test]
    fn paper_normalization_example() {
        let schema = Schema::new(vec![
            ("diagnosis", ColumnType::Str),
            ("test", ColumnType::Str),
            ("symptom", ColumnType::Str),
        ]);
        let mut w = Wsd::new();
        w.add_relation("R", schema).unwrap();

        // r1: components as in the paper, post-selection on Diagnosis.
        let r1 = w.fresh_tid();
        let c1 = Component::new(
            vec![Field::attr(r1, 0), Field::attr(r1, 1)],
            vec![
                CompRow::new(vec![v("pregnancy"), v("ultrasound")], 0.4),
                CompRow::new(vec![Cell::Bottom, v("TSH")], 0.6),
            ],
        );
        let c2 = Component::singleton(
            Field::attr(r1, 2),
            vec![(v("weight gain"), 0.7), (v("fatigue"), 0.3)],
        );
        w.add_component(c1);
        w.add_component(c2);
        w.push_template(
            "R",
            crate::wsd::TupleTemplate {
                tid: r1,
                cells: vec![TemplateCell::Open, TemplateCell::Open, TemplateCell::Open],
                exists: Existence::Always,
            },
        )
        .unwrap();

        // r2: all fields marked ⊥ by the selection.
        let r2 = w.fresh_tid();
        for pos in 0..3u32 {
            let comp = Component::singleton(Field::attr(r2, pos), vec![(Cell::Bottom, 1.0)]);
            w.add_component(comp);
        }
        w.push_template(
            "R",
            crate::wsd::TupleTemplate {
                tid: r2,
                cells: vec![TemplateCell::Open, TemplateCell::Open, TemplateCell::Open],
                exists: Existence::Always,
            },
        )
        .unwrap();
        w.validate().unwrap();

        let before = w.to_worldset(100).unwrap();
        normalize(&mut w);
        w.validate().unwrap();
        let after = w.to_worldset(100).unwrap();
        assert!(before.equivalent(&after, 1e-9), "normalization must preserve semantics");

        // r2 is gone
        assert_eq!(w.relation("R").unwrap().tuples.len(), 1);
        // only the two r1 components remain
        assert_eq!(w.num_components(), 2);
        // ⊥ propagated onto TSH in the first component
        let stats = w.stats();
        assert_eq!(stats.component_rows, 4);
        let c = w
            .field_loc(Field::attr(r1, 1))
            .and_then(|(ci, _)| w.component(ci))
            .unwrap();
        assert!(c
            .rows()
            .iter()
            .any(|r| r.cells.iter().all(Cell::is_bottom)));
    }

    #[test]
    fn inline_constants_moves_to_template() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        // a single-alternative "or-set" stored as a component on purpose
        let t = w.fresh_tid();
        let comp = Component::singleton(Field::attr(t, 0), vec![(Cell::Val(Value::Int(7)), 1.0)]);
        w.add_component(comp);
        w.push_template(
            "r",
            crate::wsd::TupleTemplate {
                tid: t,
                cells: vec![TemplateCell::Open],
                exists: Existence::Always,
            },
        )
        .unwrap();
        normalize(&mut w);
        assert_eq!(w.num_components(), 0);
        assert_eq!(
            w.relation("r").unwrap().tuples[0].cells[0],
            TemplateCell::Certain(Value::Int(7))
        );
        let ws = w.to_worldset(10).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.worlds()[0].0.get("r").unwrap().len(), 1);
    }

    #[test]
    fn normalization_preserves_semantics_on_orset_wsd() {
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Str)]),
        )
        .unwrap();
        for i in 0..3 {
            w.push_orset(
                "r",
                vec![
                    OrSetCell::weighted(vec![(Value::Int(i), 0.5), (Value::Int(i + 10), 0.5)])
                        .unwrap(),
                    OrSetCell::certain("x"),
                ],
            )
            .unwrap();
        }
        let before = w.to_worldset(100).unwrap();
        normalize_full(&mut w);
        w.validate().unwrap();
        let after = w.to_worldset(100).unwrap();
        assert!(before.equivalent(&after, 1e-9));
    }

    #[test]
    fn gc_drops_unreferenced_component() {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        // orphan component not referenced by any template
        let orphan = Component::singleton(
            Field::attr(crate::field::Tid(999), 0),
            vec![(Cell::Val(Value::Int(1)), 0.5), (Cell::Val(Value::Int(2)), 0.5)],
        );
        w.add_component(orphan);
        // field_map has the orphan field; remove template reference by
        // simply never pushing a tuple. gc keeps it because field_map still
        // references it — so first drop the mapping, as extract() does.
        w.field_map.clear();
        normalize(&mut w);
        assert_eq!(w.num_components(), 0);
    }
}
