//! The relational algebra over world-set decompositions.
//!
//! "MayBMS rewrites and optimizes user queries into a sequence of
//! relational queries on world-set decompositions." (paper §1)
//!
//! Every operator takes template tuples of the input relation(s) and adds
//! *derived* template tuples for the output relation. Derived tuples do not
//! copy data: their fields **alias** the component columns of their inputs,
//! which preserves all correlations. Where an operator must decide
//! per-world (a selection predicate over uncertain fields, a join
//! condition, tuple equality in a difference), it merges the touched
//! components and appends a fresh existence column in which failing rows
//! are marked ⊥ — selections "must not delete component tuples, but should
//! mark \[fields\] using the special value ⊥" (paper §2). Evaluation ends by
//! extracting the result relation and normalizing.

pub(crate) mod common;
mod difference;
mod dml;
pub(crate) mod join;
pub(crate) mod project;
mod rename;
pub(crate) mod select;
mod union;

pub use difference::difference_op;
pub use dml::{delete_op, update_op, DmlReport};
pub use join::{join_op, join_op_in, join_op_nested, product_op};
pub use project::project_op;
pub use rename::{qualify_op, rename_op};
pub use select::select_op;
pub use union::union_op;

use maybms_relational::{Error, Expr, Result};
use maybms_worldset::eval::WorldQuery;

use crate::normalize;
use crate::wsd::Wsd;

/// A relational-algebra query over the relations of a WSD.
///
/// Mirrors [`maybms_worldset::eval::WorldQuery`] so that oracle tests can
/// run the same query on the decomposition and on the enumerated worlds.
#[derive(Debug, Clone)]
pub enum Query {
    Table(String),
    Select(Box<Query>, Expr),
    Project(Box<Query>, Vec<String>),
    Product(Box<Query>, Box<Query>),
    Join(Box<Query>, Box<Query>, Expr),
    Union(Box<Query>, Box<Query>),
    Difference(Box<Query>, Box<Query>),
    /// Duplicate elimination. Under the paper's set semantics of worlds
    /// this is the identity on decompositions; it exists so plans map 1:1.
    Distinct(Box<Query>),
    Rename(Box<Query>, String, String),
    Qualify(Box<Query>, String),
}

impl Query {
    pub fn table(name: impl Into<String>) -> Query {
        Query::Table(name.into())
    }
    pub fn select(self, pred: Expr) -> Query {
        Query::Select(Box::new(self), pred)
    }
    pub fn project<I, S>(self, cols: I) -> Query
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query::Project(Box::new(self), cols.into_iter().map(Into::into).collect())
    }
    pub fn product(self, rhs: Query) -> Query {
        Query::Product(Box::new(self), Box::new(rhs))
    }
    pub fn join(self, rhs: Query, pred: Expr) -> Query {
        Query::Join(Box::new(self), Box::new(rhs), pred)
    }
    pub fn union(self, rhs: Query) -> Query {
        Query::Union(Box::new(self), Box::new(rhs))
    }
    pub fn difference(self, rhs: Query) -> Query {
        Query::Difference(Box::new(self), Box::new(rhs))
    }
    pub fn distinct(self) -> Query {
        Query::Distinct(Box::new(self))
    }
    pub fn rename(self, from: impl Into<String>, to: impl Into<String>) -> Query {
        Query::Rename(Box::new(self), from.into(), to.into())
    }
    pub fn qualify(self, prefix: impl Into<String>) -> Query {
        Query::Qualify(Box::new(self), prefix.into())
    }

    /// Evaluates the query on a decomposition, producing a decomposition of
    /// the answer world-set whose single relation is named `"result"`.
    pub fn eval(&self, base: &Wsd) -> Result<Wsd> {
        let mut wsd = base.clone();
        let mut counter = 0usize;
        let out = self.eval_into(&mut wsd, &mut counter)?;
        extract(wsd, &out, "result")
    }

    /// Evaluates within `wsd`, adding intermediate relations, and returns
    /// the name of the relation holding this subquery's answer.
    fn eval_into(&self, wsd: &mut Wsd, counter: &mut usize) -> Result<String> {
        let fresh = |wsd: &Wsd, counter: &mut usize| -> String {
            loop {
                let name = format!("__q{}", *counter);
                *counter += 1;
                if wsd.relation(&name).is_err() {
                    return name;
                }
            }
        };
        Ok(match self {
            Query::Table(name) => {
                wsd.relation(name)?; // must exist
                name.clone()
            }
            Query::Select(q, pred) => {
                let input = q.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                select_op(wsd, &input, pred, &out)?;
                out
            }
            Query::Project(q, cols) => {
                let input = q.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                project_op(wsd, &input, &names, &out)?;
                out
            }
            Query::Product(a, b) => {
                let left = a.eval_into(wsd, counter)?;
                let right = b.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                product_op(wsd, &left, &right, &out)?;
                out
            }
            Query::Join(a, b, pred) => {
                let left = a.eval_into(wsd, counter)?;
                let right = b.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                join_op(wsd, &left, &right, pred, &out)?;
                out
            }
            Query::Union(a, b) => {
                let left = a.eval_into(wsd, counter)?;
                let right = b.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                union_op(wsd, &left, &right, &out)?;
                out
            }
            Query::Difference(a, b) => {
                let left = a.eval_into(wsd, counter)?;
                let right = b.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                difference_op(wsd, &left, &right, &out)?;
                out
            }
            Query::Distinct(q) => q.eval_into(wsd, counter)?,
            Query::Rename(q, from, to) => {
                let input = q.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                rename_op(wsd, &input, from, to, &out)?;
                out
            }
            Query::Qualify(q, prefix) => {
                let input = q.eval_into(wsd, counter)?;
                let out = fresh(wsd, counter);
                qualify_op(wsd, &input, prefix, &out)?;
                out
            }
        })
    }

    /// The same query as a [`WorldQuery`], for oracle comparison.
    pub fn to_world_query(&self) -> WorldQuery {
        match self {
            Query::Table(n) => WorldQuery::Table(n.clone()),
            Query::Select(q, p) => WorldQuery::Select(Box::new(q.to_world_query()), p.clone()),
            Query::Project(q, cols) => {
                WorldQuery::Project(Box::new(q.to_world_query()), cols.clone())
            }
            Query::Product(a, b) => WorldQuery::Product(
                Box::new(a.to_world_query()),
                Box::new(b.to_world_query()),
            ),
            Query::Join(a, b, p) => WorldQuery::Join(
                Box::new(a.to_world_query()),
                Box::new(b.to_world_query()),
                p.clone(),
            ),
            Query::Union(a, b) => WorldQuery::Union(
                Box::new(a.to_world_query()),
                Box::new(b.to_world_query()),
            ),
            Query::Difference(a, b) => WorldQuery::Difference(
                Box::new(a.to_world_query()),
                Box::new(b.to_world_query()),
            ),
            Query::Distinct(q) => WorldQuery::Distinct(Box::new(q.to_world_query())),
            Query::Rename(q, f, t) => {
                WorldQuery::Rename(Box::new(q.to_world_query()), f.clone(), t.clone())
            }
            Query::Qualify(q, p) => {
                WorldQuery::Qualify(Box::new(q.to_world_query()), p.clone())
            }
        }
    }
}

/// Keeps only `rel` (renamed to `as_name`), drops everything else, and
/// normalizes. This is the final step of query evaluation.
pub fn extract(wsd: Wsd, rel: &str, as_name: &str) -> Result<Wsd> {
    extract_in(wsd, rel, as_name, crate::exec::WorkerPool::sequential())
}

/// [`extract`] with the normalization passes routed through `pool`.
pub fn extract_in(
    mut wsd: Wsd,
    rel: &str,
    as_name: &str,
    pool: &crate::exec::WorkerPool,
) -> Result<Wsd> {
    wsd.relation(rel)?;
    let keep: Vec<String> = wsd
        .relation_names()
        .filter(|n| *n != rel)
        .map(str::to_string)
        .collect();
    for name in keep {
        wsd.remove_relation(&name)?;
    }
    if rel != as_name {
        wsd.rename_relation(rel, as_name)?;
    }
    let kept_tids: std::collections::HashSet<crate::field::Tid> = wsd
        .relation(as_name)?
        .tuples
        .iter()
        .map(|t| t.tid)
        .collect();
    wsd.retain_fields(|f| kept_tids.contains(&f.tid));
    normalize::normalize_in(&mut wsd, pool);
    Ok(wsd)
}

/// Convenience used by the SQL layer: evaluate and keep the result name.
pub fn eval_to(wsd: &Wsd, q: &Query, as_name: &str) -> Result<Wsd> {
    let mut out = q.eval(wsd)?;
    if as_name != "result" {
        out.rename_relation("result", as_name)
            .map_err(|e| Error::InvalidExpr(format!("renaming result: {e}")))?;
    }
    Ok(out)
}
