//! Product and θ-join on decompositions.
//!
//! A result tuple is created per pair of input tuples; its fields alias
//! both inputs' columns, so all correlations (including self-join
//! correlation) are preserved. The join condition, where not statically
//! decidable, is materialized per pair by merging the touched components
//! and appending an existence column. Pairs whose possible value sets
//! cannot satisfy an equality conjunct are pruned without any merging.
//!
//! # Hash partitioning
//!
//! When the predicate contains an equality conjunct across the two sides,
//! [`join_op`] buckets the right tuples by the possible values of their
//! equality column and probes each left tuple only against the buckets of
//! *its* possible values — O(|L| + |R| + matches) pair generation instead
//! of the O(|L|·|R|) nested loop. Bucketing on `Value` keys is sound
//! because `Value`'s `Eq`/`Hash` agree with SQL equality on non-NULL
//! values (`1 = 1.0` hashes alike) and NULL never joins. Tuples with
//! multiple possible key values (open or-set fields) are inserted into one
//! bucket per value and deduplicated at probe time; residual equality
//! conjuncts still prune via possible-value intersection. Predicates with
//! no cross-side equality conjunct fall back to [`join_op_nested`], which
//! is also kept as the oracle reference for the hash path.

use std::collections::HashMap;

use maybms_relational::{CmpOp, Expr, Result, Value};

use crate::cell::Cell;
use crate::field::Field;
use crate::wsd::{Existence, TupleTemplate, Wsd};

use super::common::{
    add_exists_column, alias_cells, bind_pred, bucket_by_possible_values, certain_values_at,
    dead_in_row, eval_partial, exists_loc, open_fields_at, possible_values_of, snapshot,
    values_intersect, TupleInfo,
};
use crate::exec::WorkerPool;

/// input_l × input_r → out (cartesian product).
pub fn product_op(wsd: &mut Wsd, left: &str, right: &str, out: &str) -> Result<()> {
    join_op(wsd, left, right, &Expr::lit(true), out)
}

/// Pre-computed pruning state for one side of a join.
struct SidePoss {
    /// per tuple, per equality conjunct: the possible values of the
    /// tuple's column of that conjunct.
    per_tuple: Vec<Vec<Vec<Value>>>,
}

fn side_poss(
    wsd: &Wsd,
    rel: &str,
    tuples: &[TupleInfo],
    positions: impl Fn(usize) -> usize + Copy,
    npairs: usize,
) -> Result<SidePoss> {
    let mut per_tuple = Vec::with_capacity(tuples.len());
    for t in tuples {
        let mut per = Vec::with_capacity(npairs);
        for k in 0..npairs {
            per.push(possible_values_of(wsd, rel, t, positions(k))?);
        }
        per_tuple.push(per);
    }
    Ok(SidePoss { per_tuple })
}

/// Inputs every join strategy needs, snapshotted and bound exactly once.
struct JoinPrep {
    lt: Vec<TupleInfo>,
    rt: Vec<TupleInfo>,
    bound: maybms_relational::BoundExpr,
    positions: Vec<usize>,
    larity: usize,
    arity: usize,
    eq_pairs: Vec<(usize, usize)>,
    l_poss: SidePoss,
    r_poss: SidePoss,
}

/// Snapshots both sides, binds the predicate, registers `out`, and
/// precomputes the per-tuple possible values of every equality conjunct.
fn prepare_join(
    wsd: &mut Wsd,
    left: &str,
    right: &str,
    pred: &Expr,
    out: &str,
) -> Result<JoinPrep> {
    let (ls, lt) = snapshot(wsd, left)?;
    let (rs, rt) = snapshot(wsd, right)?;
    let out_schema = ls.concat(&rs);
    let larity = ls.len();
    let eq_pairs = equality_pairs(pred, &out_schema, larity);
    let (bound, positions) = bind_pred(pred, &out_schema)?;
    let arity = out_schema.len();
    wsd.add_relation(out, out_schema)?;
    let l_poss = side_poss(wsd, left, &lt, |k| eq_pairs[k].0, eq_pairs.len())?;
    let r_poss = side_poss(wsd, right, &rt, |k| eq_pairs[k].1 - larity, eq_pairs.len())?;
    Ok(JoinPrep { lt, rt, bound, positions, larity, arity, eq_pairs, l_poss, r_poss })
}

/// The nested-loop pair scan shared by both entry points.
fn nested_scan(wsd: &mut Wsd, p: &JoinPrep, out: &str) -> Result<()> {
    for (li, t) in p.lt.iter().enumerate() {
        for (ri, s) in p.rt.iter().enumerate() {
            // prune on equality conjuncts
            let prunable = (0..p.eq_pairs.len()).any(|k| {
                !values_intersect(&p.l_poss.per_tuple[li][k], &p.r_poss.per_tuple[ri][k])
            });
            if prunable {
                continue;
            }
            emit_pair(wsd, &p.bound, &p.positions, p.larity, out, t, s, p.arity)?;
        }
    }
    Ok(())
}

/// input_l ⋈_pred input_r → out. Hash-partitioned when an equality
/// conjunct spans the two sides; nested loop otherwise. Sequential —
/// see [`join_op_in`] for the pool-parallel probe.
pub fn join_op(wsd: &mut Wsd, left: &str, right: &str, pred: &Expr, out: &str) -> Result<()> {
    join_op_in(wsd, left, right, pred, out, WorkerPool::sequential())
}

/// [`join_op`] with the probe phase fanned out over `pool`.
///
/// The probe splits in two: a read-only phase that, per left tuple,
/// gathers candidate right tuples from its key buckets and prunes them
/// through the residual equality conjuncts (parallel — this is the
/// O(|L|) hot half), and a serial emit phase that materializes the
/// surviving pairs in left-then-right order, so the output is identical
/// to the nested-loop reference at every worker count.
pub fn join_op_in(
    wsd: &mut Wsd,
    left: &str,
    right: &str,
    pred: &Expr,
    out: &str,
    pool: &WorkerPool,
) -> Result<()> {
    let p = prepare_join(wsd, left, right, pred, out)?;
    if p.eq_pairs.is_empty() {
        return nested_scan(wsd, &p, out);
    }
    let JoinPrep { lt, rt, bound, positions, larity, arity, eq_pairs, l_poss, r_poss } = p;

    // Partition the right side on the first equality conjunct: bucket by
    // every possible non-NULL key value (index shared with the chase).
    let buckets: HashMap<Value, Vec<usize>> =
        bucket_by_possible_values(rt.len(), |ri| &r_poss.per_tuple[ri][0]);

    // Parallel probe: per left tuple, candidate right tuples in ascending
    // order, already pruned by the residual equality conjuncts.
    let cands: Vec<Vec<usize>> = pool.map(&lt, |li, _| {
        let mut cand: Vec<usize> = Vec::new();
        for v in &l_poss.per_tuple[li][0] {
            if v.is_null() {
                continue;
            }
            if let Some(rs) = buckets.get(v) {
                cand.extend_from_slice(rs);
            }
        }
        cand.sort_unstable();
        cand.dedup();
        cand.retain(|&ri| {
            (1..eq_pairs.len()).all(|k| {
                values_intersect(&l_poss.per_tuple[li][k], &r_poss.per_tuple[ri][k])
            })
        });
        cand
    });

    // Serial emit, in the exact order of the sequential/nested paths.
    for (li, cand) in cands.iter().enumerate() {
        wsd.reserve_tuples(out, cand.len());
        for &ri in cand {
            emit_pair(wsd, &bound, &positions, larity, out, &lt[li], &rt[ri], arity)?;
        }
    }
    Ok(())
}

/// The reference nested-loop θ-join: every template-tuple pair is
/// considered, pruned only by per-pair possible-value intersection. Kept
/// as the oracle the hash-partitioned path is tested against.
pub fn join_op_nested(
    wsd: &mut Wsd,
    left: &str,
    right: &str,
    pred: &Expr,
    out: &str,
) -> Result<()> {
    let p = prepare_join(wsd, left, right, pred, out)?;
    nested_scan(wsd, &p, out)
}

/// Extracts `l = r` conjuncts referencing one column from each side,
/// returning positions in the concatenated schema (left position, right
/// position ≥ larity).
pub(crate) fn equality_pairs(
    pred: &Expr,
    out_schema: &maybms_relational::Schema,
    larity: usize,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for c in pred.conjuncts() {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                if let (Ok(pa), Ok(pb)) = (out_schema.index_of(ca), out_schema.index_of(cb)) {
                    if pa < larity && pb >= larity {
                        pairs.push((pa, pb));
                    } else if pb < larity && pa >= larity {
                        pairs.push((pb, pa));
                    }
                }
            }
        }
    }
    pairs
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_pair(
    wsd: &mut Wsd,
    bound: &maybms_relational::BoundExpr,
    positions: &[usize],
    larity: usize,
    out: &str,
    t: &TupleInfo,
    s: &TupleInfo,
    arity: usize,
) -> Result<()> {
    // positions referencing the left tuple map to t, the rest (shifted) to s
    let t_positions: Vec<usize> = positions.iter().copied().filter(|&p| p < larity).collect();
    let s_positions: Vec<usize> = positions
        .iter()
        .copied()
        .filter(|&p| p >= larity)
        .map(|p| p - larity)
        .collect();

    let t_open = open_fields_at(wsd, t, &t_positions)?;
    let s_open = open_fields_at(wsd, s, &s_positions)?;
    let mut known = certain_values_at(t, &t_positions);
    for (pos, v) in certain_values_at(s, &s_positions) {
        known.insert(pos + larity, v);
    }

    let new_tid = wsd.fresh_tid();
    let t_exists = exists_loc(wsd, t)?;
    let s_exists = exists_loc(wsd, s)?;

    if t_open.is_empty() && s_open.is_empty() {
        // Condition decidable statically.
        if !eval_partial(bound, arity, &known)? {
            return Ok(());
        }
        let exists = match (t_exists, s_exists) {
            (None, None) => Existence::Always,
            (Some(loc), None) | (None, Some(loc)) => {
                wsd.alias_field(Field::exists(new_tid), loc);
                Existence::Open
            }
            (Some(a), Some(b)) => {
                // conjunction of the two existence flags
                let merged = wsd.merge_components(&[a.0, b.0])?;
                let (ta, tb) = (exists_loc(wsd, t)?.expect("open"), exists_loc(wsd, s)?.expect("open")); // maybms-lint: allow(no-panic-in-prod) -- both join fields were checked open before dispatching to this kernel
                debug_assert_eq!(ta.0, merged);
                let watch = vec![ta.1, tb.1];
                add_exists_column(wsd, merged, new_tid, |row| {
                    if dead_in_row(row, &watch) {
                        Cell::Bottom
                    } else {
                        Cell::Val(Value::Bool(true))
                    }
                })?;
                Existence::Open
            }
        };
        push_pair(wsd, out, new_tid, t, s, exists)?;
        return Ok(());
    }

    // Dynamic: merge every component the condition (or existence) touches.
    let mut comps: Vec<usize> = t_open.iter().chain(s_open.iter()).map(|&(_, (c, _))| c).collect();
    if let Some((c, _)) = t_exists {
        comps.push(c);
    }
    if let Some((c, _)) = s_exists {
        comps.push(c);
    }
    let merged = wsd.merge_components(&comps)?;
    let t_open_now = open_fields_at(wsd, t, &t_positions)?;
    let s_open_now = open_fields_at(wsd, s, &s_positions)?;
    let mut watch: Vec<usize> = t_open_now
        .iter()
        .chain(s_open_now.iter())
        .map(|&(_, (_, col))| col)
        .collect();
    if let Some((c, col)) = exists_loc(wsd, t)? {
        debug_assert_eq!(c, merged);
        watch.push(col);
    }
    if let Some((c, col)) = exists_loc(wsd, s)? {
        debug_assert_eq!(c, merged);
        watch.push(col);
    }

    add_exists_column(wsd, merged, new_tid, |row| {
        if dead_in_row(row, &watch) {
            return Cell::Bottom;
        }
        let mut vals = known.clone();
        for &(pos, (_, col)) in &t_open_now {
            match row.cell(col) {
                Cell::Val(v) => {
                    vals.insert(pos, v.clone());
                }
                Cell::Bottom => return Cell::Bottom,
            }
        }
        for &(pos, (_, col)) in &s_open_now {
            match row.cell(col) {
                Cell::Val(v) => {
                    vals.insert(pos + larity, v.clone());
                }
                Cell::Bottom => return Cell::Bottom,
            }
        }
        match eval_partial(bound, arity, &vals) {
            Ok(true) => Cell::Val(Value::Bool(true)),
            _ => Cell::Bottom,
        }
    })?;
    push_pair(wsd, out, new_tid, t, s, Existence::Open)?;
    Ok(())
}

fn push_pair(
    wsd: &mut Wsd,
    out: &str,
    new_tid: crate::field::Tid,
    t: &TupleInfo,
    s: &TupleInfo,
    exists: Existence,
) -> Result<()> {
    let t_id: Vec<usize> = (0..t.cells.len()).collect();
    let mut cells = alias_cells(wsd, new_tid, t, &t_id)?;
    // right cells continue at position offset
    for (j, cell) in s.cells.iter().enumerate() {
        let new_pos = t.cells.len() + j;
        match cell {
            crate::wsd::TemplateCell::Certain(v) => {
                cells.push(crate::wsd::TemplateCell::Certain(v.clone()))
            }
            crate::wsd::TemplateCell::Open => {
                let loc = wsd
                    .field_loc(Field::attr(s.tid, j as u32))
                    .ok_or_else(|| {
                        maybms_relational::Error::InvalidExpr(format!(
                            "unmapped field {}.#{j}",
                            s.tid
                        ))
                    })?;
                wsd.alias_field(Field::attr(new_tid, new_pos as u32), loc);
                cells.push(crate::wsd::TemplateCell::Open);
            }
        }
    }
    wsd.push_template(out, TupleTemplate { tid: new_tid, cells, exists })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::algebra::Query;
    use crate::wsd::Wsd;
    use maybms_relational::{ColumnType, Expr, Schema, Value};
    use maybms_worldset::eval::eval_in_all_worlds;
    use maybms_worldset::OrSetCell;

    fn two_rel_wsd() -> Wsd {
        let mut w = Wsd::new();
        w.add_relation(
            "patients",
            Schema::new(vec![("name", ColumnType::Str), ("diag", ColumnType::Str)]),
        )
        .unwrap();
        w.add_relation(
            "treats",
            Schema::new(vec![("d", ColumnType::Str), ("drug", ColumnType::Str)]),
        )
        .unwrap();
        w.push_orset(
            "patients",
            vec![
                OrSetCell::certain("ann"),
                OrSetCell::weighted(vec![
                    (Value::str("flu"), 0.3),
                    (Value::str("cold"), 0.7),
                ])
                .unwrap(),
            ],
        )
        .unwrap();
        w.push_certain("patients", vec![Value::str("bob"), Value::str("flu")])
            .unwrap();
        w.push_certain("treats", vec![Value::str("flu"), Value::str("oseltamivir")])
            .unwrap();
        w.push_orset(
            "treats",
            vec![
                OrSetCell::certain("cold"),
                OrSetCell::uniform(vec![Value::str("rest"), Value::str("tea")]).unwrap(),
            ],
        )
        .unwrap();
        w
    }

    fn check_against_oracle(q: &Query, wsd: &Wsd) {
        let lhs = q.eval(wsd).unwrap().to_worldset(100_000).unwrap();
        let rhs =
            eval_in_all_worlds(&wsd.to_worldset(100_000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    /// The hash-partitioned path must produce a world-set equivalent to the
    /// nested-loop reference on the same inputs.
    fn check_hash_equals_nested(wsd: &Wsd, pred: &Expr) {
        let mut hash = wsd.clone();
        super::join_op(&mut hash, "patients", "treats", pred, "out").unwrap();
        let mut nested = wsd.clone();
        super::join_op_nested(&mut nested, "patients", "treats", pred, "out").unwrap();
        let a = crate::algebra::extract(hash, "out", "result").unwrap();
        let b = crate::algebra::extract(nested, "out", "result").unwrap();
        assert!(a
            .to_worldset(100_000)
            .unwrap()
            .equivalent(&b.to_worldset(100_000).unwrap(), 1e-9));
    }

    #[test]
    fn equi_join_matches_oracle() {
        let wsd = two_rel_wsd();
        let q = Query::table("patients").join(
            Query::table("treats"),
            Expr::col("diag").eq(Expr::col("d")),
        );
        check_against_oracle(&q, &wsd);
    }

    #[test]
    fn hash_path_equals_nested_loop() {
        let wsd = two_rel_wsd();
        check_hash_equals_nested(&wsd, &Expr::col("diag").eq(Expr::col("d")));
        check_hash_equals_nested(
            &wsd,
            &Expr::col("diag")
                .eq(Expr::col("d"))
                .and(Expr::col("name").ne(Expr::col("drug"))),
        );
    }

    #[test]
    fn product_matches_oracle() {
        let wsd = two_rel_wsd();
        let q = Query::table("patients").product(Query::table("treats"));
        check_against_oracle(&q, &wsd);
    }

    #[test]
    fn self_join_preserves_correlation() {
        let wsd = two_rel_wsd();
        // joining patients with itself on diag: ann's uncertain diagnosis
        // must agree with itself (no spurious flu-cold combination).
        let q = Query::table("patients").qualify("a").join(
            Query::table("patients").qualify("b"),
            Expr::col("a.diag").eq(Expr::col("b.diag")),
        );
        check_against_oracle(&q, &wsd);
    }

    #[test]
    fn join_after_selection() {
        let wsd = two_rel_wsd();
        let q = Query::table("patients")
            .select(Expr::col("diag").eq(Expr::lit("flu")))
            .join(Query::table("treats"), Expr::col("diag").eq(Expr::col("d")));
        check_against_oracle(&q, &wsd);
    }

    #[test]
    fn non_equi_join_matches_oracle() {
        let wsd = two_rel_wsd();
        let q = Query::table("patients").join(
            Query::table("treats"),
            Expr::col("name").lt(Expr::col("drug")),
        );
        check_against_oracle(&q, &wsd);
    }

    #[test]
    fn join_prunes_disjoint_domains() {
        let wsd = two_rel_wsd();
        let q = Query::table("patients").join(
            Query::table("treats"),
            Expr::col("diag").eq(Expr::col("drug")), // domains disjoint
        );
        let out = q.eval(&wsd).unwrap();
        assert_eq!(out.relation("result").unwrap().tuples.len(), 0);
        check_against_oracle(&q, &wsd);
    }
}
