//! Renaming and qualification on decompositions: schema-only operations;
//! tuples alias their sources entirely.

use maybms_relational::Result;

use crate::field::Field;
use crate::wsd::{Existence, TupleTemplate, Wsd};

use super::common::{alias_cells, exists_loc, snapshot};

fn copy_tuples(wsd: &mut Wsd, tuples: &[super::common::TupleInfo], out: &str) -> Result<()> {
    for t in tuples {
        let new_tid = wsd.fresh_tid();
        let identity: Vec<usize> = (0..t.cells.len()).collect();
        let cells = alias_cells(wsd, new_tid, t, &identity)?;
        let exists = match exists_loc(wsd, t)? {
            None => Existence::Always,
            Some(loc) => {
                wsd.alias_field(Field::exists(new_tid), loc);
                Existence::Open
            }
        };
        wsd.push_template(out, TupleTemplate { tid: new_tid, cells, exists })?;
    }
    Ok(())
}

/// ρ_{from→to}(input) → out.
pub fn rename_op(wsd: &mut Wsd, input: &str, from: &str, to: &str, out: &str) -> Result<()> {
    let (schema, tuples) = snapshot(wsd, input)?;
    let renamed = schema.rename(from, to)?;
    wsd.add_relation(out, renamed)?;
    copy_tuples(wsd, &tuples, out)
}

/// Prefixes every column name with `prefix.` — used before self-joins.
pub fn qualify_op(wsd: &mut Wsd, input: &str, prefix: &str, out: &str) -> Result<()> {
    let (schema, tuples) = snapshot(wsd, input)?;
    wsd.add_relation(out, schema.qualify(prefix))?;
    copy_tuples(wsd, &tuples, out)
}

#[cfg(test)]
mod tests {
    use crate::algebra::Query;
    use crate::examples::medical_wsd;
    use maybms_worldset::eval::eval_in_all_worlds;

    #[test]
    fn rename_changes_schema_only() {
        let wsd = medical_wsd();
        let q = Query::table("R").rename("diagnosis", "dx");
        let out = q.eval(&wsd).unwrap();
        assert!(out.relation("result").unwrap().schema.contains("dx"));
        let lhs = out.to_worldset(1000).unwrap();
        let rhs =
            eval_in_all_worlds(&wsd.to_worldset(1000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn qualify_prefixes_all() {
        let wsd = medical_wsd();
        let q = Query::table("R").qualify("p");
        let out = q.eval(&wsd).unwrap();
        assert_eq!(
            out.relation("result").unwrap().schema.names(),
            vec!["p.diagnosis", "p.test", "p.symptom"]
        );
    }

    #[test]
    fn rename_unknown_column_errors() {
        let wsd = medical_wsd();
        assert!(Query::table("R").rename("zz", "a").eval(&wsd).is_err());
    }
}
