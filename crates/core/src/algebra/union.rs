//! Union on decompositions: the templates are concatenated (schemas must be
//! union-compatible); all fields alias their sources, so correlations
//! between the two sides (e.g. both derived from the same base relation)
//! are preserved.

use maybms_relational::Result;

use crate::field::Field;
use crate::wsd::{Existence, TupleTemplate, Wsd};

use super::common::{alias_cells, exists_loc, snapshot};

/// input_l ∪ input_r → out (set semantics at the world level).
pub fn union_op(wsd: &mut Wsd, left: &str, right: &str, out: &str) -> Result<()> {
    let (ls, lt) = snapshot(wsd, left)?;
    let (rs, rt) = snapshot(wsd, right)?;
    ls.union_compatible(&rs)?;
    wsd.add_relation(out, ls.clone())?;

    for t in lt.iter().chain(rt.iter()) {
        let new_tid = wsd.fresh_tid();
        let identity: Vec<usize> = (0..t.cells.len()).collect();
        let cells = alias_cells(wsd, new_tid, t, &identity)?;
        let exists = match exists_loc(wsd, t)? {
            None => Existence::Always,
            Some(loc) => {
                wsd.alias_field(Field::exists(new_tid), loc);
                Existence::Open
            }
        };
        wsd.push_template(out, TupleTemplate { tid: new_tid, cells, exists })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::algebra::Query;
    use crate::wsd::Wsd;
    use maybms_relational::{ColumnType, Expr, Schema, Value};
    use maybms_worldset::eval::eval_in_all_worlds;
    use maybms_worldset::OrSetCell;

    fn wsd() -> Wsd {
        let mut w = Wsd::new();
        w.add_relation("r", Schema::new(vec![("a", ColumnType::Int)])).unwrap();
        w.push_orset(
            "r",
            vec![OrSetCell::weighted(vec![(Value::Int(1), 0.5), (Value::Int(2), 0.5)]).unwrap()],
        )
        .unwrap();
        w.push_certain("r", vec![Value::Int(3)]).unwrap();
        w
    }

    #[test]
    fn union_of_selections_matches_oracle() {
        let w = wsd();
        let q = Query::table("r")
            .select(Expr::col("a").eq(Expr::lit(1i64)))
            .union(Query::table("r").select(Expr::col("a").ge(Expr::lit(2i64))));
        let lhs = q.eval(&w).unwrap().to_worldset(1000).unwrap();
        let rhs = eval_in_all_worlds(&w.to_worldset(1000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn union_with_self_keeps_correlation() {
        let w = wsd();
        let q = Query::table("r").union(Query::table("r"));
        let lhs = q.eval(&w).unwrap().to_worldset(1000).unwrap();
        let rhs = eval_in_all_worlds(&w.to_worldset(1000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn incompatible_schemas_error() {
        let mut w = wsd();
        w.add_relation("s", Schema::new(vec![("b", ColumnType::Str)])).unwrap();
        let q = Query::table("r").union(Query::table("s"));
        assert!(q.eval(&w).is_err());
    }
}
