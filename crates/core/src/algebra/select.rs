//! Selection on decompositions.
//!
//! For each template tuple, the predicate is either decidable statically
//! (all referenced fields certain) or depends on component choices. In the
//! latter case the components carrying the referenced fields are merged and
//! the result tuple's existence column marks failing rows with ⊥ — the
//! paper's "replace the values different from 'pregnancy' by ⊥", expressed
//! on the hidden existence field so that later projections cannot lose it.

use maybms_relational::{BoundExpr, Expr, Result, Value};

use crate::cell::Cell;
use crate::wsd::{Existence, TupleTemplate, Wsd};

use super::common::{
    add_exists_column, alias_cells, bind_pred, certain_values_at, dead_in_row, emit_passthrough,
    eval_partial, exists_loc, open_fields_at, snapshot, TupleInfo,
};

/// σ_pred(input) → out.
pub fn select_op(wsd: &mut Wsd, input: &str, pred: &Expr, out: &str) -> Result<()> {
    let (schema, tuples) = snapshot(wsd, input)?;
    let (bound, positions) = bind_pred(pred, &schema)?;
    wsd.add_relation(out, schema.clone())?;
    let arity = schema.len();

    for t in &tuples {
        let open = open_fields_at(wsd, t, &positions)?;
        if open.is_empty() {
            // Static decision.
            let known = certain_values_at(t, &positions);
            if !eval_partial(&bound, arity, &known)? {
                continue;
            }
            emit_passthrough(wsd, t, out)?;
        } else {
            select_tuple_dynamic(wsd, t, &bound, &positions, arity, out)?;
        }
    }
    Ok(())
}

/// The per-tuple dynamic path of selection: the predicate references open
/// fields, so the components carrying them (and the tuple's existence
/// field, if open) are merged and a fresh existence column marks failing
/// rows ⊥. Shared with the vectorized filter's slow path.
pub(crate) fn select_tuple_dynamic(
    wsd: &mut Wsd,
    t: &TupleInfo,
    bound: &BoundExpr,
    positions: &[usize],
    arity: usize,
    out: &str,
) -> Result<()> {
    let open = open_fields_at(wsd, t, positions)?;
    let known = certain_values_at(t, positions);
    let new_tid = wsd.fresh_tid();
    let identity: Vec<usize> = (0..arity).collect();

    // Merge the components carrying the open predicate fields (and the
    // tuple's existence field, if open).
    let mut comp_set: Vec<usize> = open.iter().map(|&(_, (c, _))| c).collect();
    if let Some((c, _)) = exists_loc(wsd, t)? {
        comp_set.push(c);
    }
    let merged = wsd.merge_components(&comp_set)?;
    // Re-resolve columns after the merge.
    let open_now = open_fields_at(wsd, t, positions)?;
    let mut watch_cols: Vec<usize> = open_now.iter().map(|&(_, (_, col))| col).collect();
    if let Some((c, col)) = exists_loc(wsd, t)? {
        debug_assert_eq!(c, merged);
        watch_cols.push(col);
    }

    add_exists_column(wsd, merged, new_tid, |row| {
        if dead_in_row(row, &watch_cols) {
            return Cell::Bottom;
        }
        let mut vals = known.clone();
        for &(pos, (_, col)) in &open_now {
            match row.cell(col) {
                Cell::Val(v) => {
                    vals.insert(pos, v.clone());
                }
                Cell::Bottom => return Cell::Bottom,
            }
        }
        match eval_partial(bound, arity, &vals) {
            Ok(true) => Cell::Val(Value::Bool(true)),
            _ => Cell::Bottom,
        }
    })?;

    let cells = alias_cells(wsd, new_tid, t, &identity)?;
    wsd.push_template(
        out,
        TupleTemplate { tid: new_tid, cells, exists: Existence::Open },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    
    use crate::algebra::Query;
    use crate::examples::medical_wsd;
    use maybms_relational::Expr;
    use maybms_worldset::eval::eval_in_all_worlds;

    /// The paper's query: `select Test from R where Diagnosis='pregnancy'`.
    /// Running it on the WSD and enumerating must equal enumerating and
    /// running it per world.
    #[test]
    fn paper_selection_matches_world_semantics() {
        let wsd = medical_wsd();
        let q = Query::table("R")
            .select(Expr::col("diagnosis").eq(Expr::lit("pregnancy")))
            .project(["test"]);

        let on_wsd = q.eval(&wsd).unwrap();
        on_wsd.validate().unwrap();
        let lhs = on_wsd.to_worldset(1000).unwrap();

        let worlds = wsd.to_worldset(1000).unwrap();
        let rhs = eval_in_all_worlds(&worlds, &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn static_selection_drops_certain_tuples() {
        let wsd = medical_wsd();
        // r2 is certain obesity: selecting obesity keeps it in every world
        let q = Query::table("R").select(Expr::col("diagnosis").eq(Expr::lit("obesity")));
        let out = q.eval(&wsd).unwrap();
        let ws = out.to_worldset(1000).unwrap();
        for (w, _) in ws.worlds() {
            assert_eq!(w.get("result").unwrap().canonical().len(), 1);
        }
    }

    #[test]
    fn selection_on_symptom_spans_one_component() {
        let wsd = medical_wsd();
        let q = Query::table("R").select(Expr::col("symptom").eq(Expr::lit("fatigue")));
        let out = q.eval(&wsd).unwrap();
        let lhs = out.to_worldset(1000).unwrap();
        let rhs = eval_in_all_worlds(&wsd.to_worldset(1000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn conjunctive_predicate_spanning_components_merges_them() {
        let wsd = medical_wsd();
        // diagnosis and symptom live in different components for r1
        let q = Query::table("R").select(
            Expr::col("diagnosis")
                .eq(Expr::lit("pregnancy"))
                .and(Expr::col("symptom").eq(Expr::lit("weight gain"))),
        );
        let out = q.eval(&wsd).unwrap();
        out.validate().unwrap();
        let lhs = out.to_worldset(1000).unwrap();
        let rhs = eval_in_all_worlds(&wsd.to_worldset(1000).unwrap(), &q.to_world_query()).unwrap();
        assert!(lhs.equivalent(&rhs, 1e-9));
    }

    #[test]
    fn empty_selection_yields_empty_worlds() {
        let wsd = medical_wsd();
        let q = Query::table("R").select(Expr::col("diagnosis").eq(Expr::lit("nonexistent")));
        let out = q.eval(&wsd).unwrap();
        let ws = out.to_worldset(1000).unwrap();
        for (w, _) in ws.worlds() {
            assert!(w.get("result").unwrap().is_empty());
        }
    }
}
