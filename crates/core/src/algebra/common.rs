//! Shared machinery for the WSD operators.

use std::collections::HashMap;

use maybms_relational::{BoundExpr, Error, Expr, Result, Schema, Tuple, Value};

use crate::cell::Cell;
use crate::component::RowRef;
use crate::field::{Field, Tid};
use crate::wsd::{Existence, TemplateCell, Wsd};

/// A snapshot of one template tuple, taken before mutation begins so the
/// borrow checker stays happy while operators rewrite the WSD.
#[derive(Debug, Clone)]
pub(crate) struct TupleInfo {
    pub tid: Tid,
    pub cells: Vec<TemplateCell>,
    pub exists: Existence,
}

/// Snapshots all tuples of a relation together with its schema.
pub(crate) fn snapshot(wsd: &Wsd, rel: &str) -> Result<(Schema, Vec<TupleInfo>)> {
    let tpl = wsd.relation(rel)?;
    let infos = tpl
        .tuples
        .iter()
        .map(|t| TupleInfo {
            tid: t.tid,
            cells: t.cells.clone(),
            exists: t.exists,
        })
        .collect();
    Ok((tpl.schema.clone(), infos))
}

/// The open fields of a tuple restricted to the given attribute positions,
/// with their current component locations.
pub(crate) fn open_fields_at(
    wsd: &Wsd,
    t: &TupleInfo,
    positions: &[usize],
) -> Result<Vec<(usize, (usize, usize))>> {
    let mut out = Vec::new();
    for &pos in positions {
        if matches!(t.cells[pos], TemplateCell::Open) {
            let loc = wsd
                .field_loc(Field::attr(t.tid, pos as u32))
                .ok_or_else(|| Error::InvalidExpr(format!("unmapped field {}.#{pos}", t.tid)))?;
            out.push((pos, loc));
        }
    }
    Ok(out)
}

/// All open attribute fields of a tuple.
pub(crate) fn all_open_fields(wsd: &Wsd, t: &TupleInfo) -> Result<Vec<(usize, (usize, usize))>> {
    let all: Vec<usize> = (0..t.cells.len()).collect();
    open_fields_at(wsd, t, &all)
}

/// The existence location of a tuple, if its existence is open.
pub(crate) fn exists_loc(wsd: &Wsd, t: &TupleInfo) -> Result<Option<(usize, usize)>> {
    match t.exists {
        Existence::Always => Ok(None),
        Existence::Open => wsd
            .field_loc(Field::exists(t.tid))
            .map(Some)
            .ok_or_else(|| Error::InvalidExpr(format!("unmapped ∃ of {}", t.tid))),
    }
}

/// Binds a predicate against a schema, returning also the positions of the
/// columns it references.
pub(crate) fn bind_pred(pred: &Expr, schema: &Schema) -> Result<(BoundExpr, Vec<usize>)> {
    let bound = pred.bind(schema)?;
    let positions = pred
        .columns()
        .into_iter()
        .map(|c| schema.index_of(c))
        .collect::<Result<Vec<_>>>()?;
    Ok((bound, positions))
}

/// Evaluates a bound predicate against a partially-known tuple: `vals`
/// carries concrete values at the referenced positions (everything else is
/// NULL, which the predicate does not look at).
pub(crate) fn eval_partial(bound: &BoundExpr, arity: usize, vals: &HashMap<usize, Value>) -> Result<bool> {
    let mut full = vec![Value::Null; arity];
    for (&i, v) in vals {
        full[i] = v.clone();
    }
    bound.eval_predicate(&Tuple::new(full))
}

/// Fetches the certain values of a tuple at the given positions.
pub(crate) fn certain_values_at(t: &TupleInfo, positions: &[usize]) -> HashMap<usize, Value> {
    let mut m = HashMap::new();
    for &pos in positions {
        if let TemplateCell::Certain(v) = &t.cells[pos] {
            m.insert(pos, v.clone());
        }
    }
    m
}

/// Builds the derived tuple's cells, aliasing the source tuple's open
/// columns: position `i` of the new tuple takes its value from position
/// `src_positions[i]` of `src`.
pub(crate) fn alias_cells(
    wsd: &mut Wsd,
    new_tid: Tid,
    src: &TupleInfo,
    src_positions: &[usize],
) -> Result<Vec<TemplateCell>> {
    let mut cells = Vec::with_capacity(src_positions.len());
    for (new_pos, &src_pos) in src_positions.iter().enumerate() {
        match &src.cells[src_pos] {
            TemplateCell::Certain(v) => cells.push(TemplateCell::Certain(v.clone())),
            TemplateCell::Open => {
                let loc = wsd
                    .field_loc(Field::attr(src.tid, src_pos as u32))
                    .ok_or_else(|| {
                        Error::InvalidExpr(format!("unmapped field {}.#{src_pos}", src.tid))
                    })?;
                wsd.alias_field(Field::attr(new_tid, new_pos as u32), loc);
                cells.push(TemplateCell::Open);
            }
        }
    }
    Ok(cells)
}

/// Appends a fresh column for `field` computed by `f` to component
/// `comp_idx`, registering it in the field map. The field must not already
/// label a column of that component (components reject duplicate fields).
pub(crate) fn add_field_column<F>(
    wsd: &mut Wsd,
    comp_idx: usize,
    field: Field,
    f: F,
) -> Result<()>
where
    F: FnMut(RowRef<'_>) -> Cell,
{
    let comp = wsd
        .component_mut(comp_idx)
        .ok_or_else(|| Error::InvalidExpr(format!("dead component {comp_idx}")))?;
    let col = comp.num_fields();
    comp.add_column(field, f);
    wsd.alias_field(field, (comp_idx, col));
    Ok(())
}

/// Appends a fresh existence column computed by `f` to component
/// `comp_idx`, registering it as the existence field of `tid`.
pub(crate) fn add_exists_column<F>(wsd: &mut Wsd, comp_idx: usize, tid: Tid, f: F) -> Result<()>
where
    F: FnMut(RowRef<'_>) -> Cell,
{
    add_field_column(wsd, comp_idx, Field::exists(tid), f)
}

/// Re-emits a tuple unchanged into `out`: identity cells (open fields
/// aliased), existence inherited. Shared by selection's static keep path,
/// dedup and the vectorized operators' slow paths.
pub(crate) fn emit_passthrough(wsd: &mut Wsd, t: &TupleInfo, out: &str) -> Result<()> {
    let new_tid = wsd.fresh_tid();
    let all: Vec<usize> = (0..t.cells.len()).collect();
    let cells = alias_cells(wsd, new_tid, t, &all)?;
    let exists = match exists_loc(wsd, t)? {
        None => Existence::Always,
        Some(loc) => {
            wsd.alias_field(Field::exists(new_tid), loc);
            Existence::Open
        }
    };
    wsd.push_template(out, crate::wsd::TupleTemplate { tid: new_tid, cells, exists })
}

/// Whether the tuple is dead in this row of the merged component: some of
/// its columns there (attribute fields at `cols`, or the existence column)
/// holds ⊥.
pub(crate) fn dead_in_row(row: RowRef<'_>, cols: &[usize]) -> bool {
    cols.iter().any(|&c| row.is_bottom(c))
}

/// Possible values of the field of `t` at `pos` (singleton for certain
/// cells), for join/difference pruning. Reads the component column directly
/// through the field map — O(component rows), independent of relation size.
pub(crate) fn possible_values_of(
    wsd: &Wsd,
    _rel: &str,
    t: &TupleInfo,
    pos: usize,
) -> Result<Vec<Value>> {
    match &t.cells[pos] {
        TemplateCell::Certain(v) => Ok(vec![v.clone()]),
        TemplateCell::Open => {
            let (c, col) = wsd
                .field_loc(Field::attr(t.tid, pos as u32))
                .ok_or_else(|| Error::InvalidExpr(format!("unmapped field {}.#{pos}", t.tid)))?;
            let comp = wsd
                .component(c)
                .ok_or_else(|| Error::InvalidExpr(format!("dead component {c}")))?;
            Ok(comp.possible_values_col(col))
        }
    }
}

/// True iff two possible-value sets intersect (SQL equality).
pub(crate) fn values_intersect(a: &[Value], b: &[Value]) -> bool {
    a.iter().any(|x| b.iter().any(|y| x.sql_eq(y) == Some(true)))
}

/// The hash-partitioning bucket index shared by the equi-join and the
/// chase: tuple index `i` lands in one bucket per possible non-NULL
/// value of its key column (`key_values(i)`). Tuples with multiple
/// possible key values appear in several buckets; probers deduplicate.
pub(crate) fn bucket_by_possible_values<'a, I>(
    n: usize,
    key_values: impl Fn(usize) -> I,
) -> HashMap<Value, Vec<usize>>
where
    I: IntoIterator<Item = &'a Value>,
{
    let mut buckets: HashMap<Value, Vec<usize>> = HashMap::with_capacity(n);
    for i in 0..n {
        for v in key_values(i) {
            if !v.is_null() {
                buckets.entry(v.clone()).or_default().push(i);
            }
        }
    }
    buckets
}
