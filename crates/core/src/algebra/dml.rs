//! DML on stored decompositions: `DELETE` and `UPDATE` with world-set
//! semantics.
//!
//! Both operators evaluate their predicate *per possible tuple, per
//! world* (paper §2 semantics) without enumerating worlds:
//!
//! * a tuple whose predicate is **certain** (all referenced fields
//!   inline) is edited or removed in the template directly — it changes
//!   in every world at once;
//! * a tuple whose predicate depends on component choices is replaced by
//!   a derived template tuple whose fields alias the original columns,
//!   with the decision materialized in the components: `DELETE` appends a
//!   fresh existence column that is ⊥ exactly in the rows where the
//!   predicate holds (the tuple keeps existing in the other worlds);
//!   `UPDATE` appends one fresh value column per assigned field holding
//!   the new value where the predicate holds and the old value elsewhere.
//!
//! Crucially — and unlike [`crate::chase`], which *removes worlds* and
//! renormalizes — DML never touches row probabilities: every world
//! survives with its original probability, only its tuples change. The
//! certain/possible corner cases follow from this: a tuple that
//! *certainly* matches a `DELETE` predicate disappears from every world;
//! one that only *possibly* matches survives exactly in the worlds where
//! the predicate is false (its confidence drops accordingly); one that
//! certainly fails the predicate is untouched, bit for bit.
//!
//! Assigned `UPDATE` values are certain scalars; predicates see the
//! pre-update values (standard SQL), which holds by construction because
//! new columns are computed from the old ones before any field is
//! remapped.
//!
//! A predicate that fails to evaluate (arithmetic error) in **any world
//! where the tuple exists** aborts the whole statement, exactly like the
//! enumerate-all-worlds reference — whether the offending field happens
//! to be certain or open. Callers wanting all-or-nothing state (the
//! session does) run these on a scratch clone.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use maybms_relational::{Error, Expr, Result, Value};

use crate::cell::Cell;
use crate::field::{Field, Tid};
use crate::normalize;
use crate::wsd::{Existence, TemplateCell, TupleTemplate, Wsd};

use super::common::{
    add_exists_column, add_field_column, alias_cells, bind_pred, certain_values_at, dead_in_row,
    eval_partial, exists_loc, open_fields_at, snapshot,
};

/// What a DELETE / UPDATE did to the template tuples of the relation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmlReport {
    /// Tuples affected in **every** world (predicate certain): removed
    /// outright by DELETE, edited in place by UPDATE.
    pub certain: usize,
    /// Tuples affected **conditionally** (predicate depends on component
    /// choices): existence or values now vary per world.
    pub conditioned: usize,
}

impl DmlReport {
    pub fn total(&self) -> usize {
        self.certain + self.conditioned
    }
}

/// `DELETE FROM rel WHERE pred` on the decomposition (`pred = None`
/// deletes every tuple). Normalizes afterwards.
pub fn delete_op(wsd: &mut Wsd, rel: &str, pred: Option<&Expr>) -> Result<DmlReport> {
    let (schema, tuples) = snapshot(wsd, rel)?;
    let bound = match pred {
        Some(p) => Some(bind_pred(p, &schema)?),
        None => None,
    };
    let arity = schema.len();
    let mut report = DmlReport::default();
    let mut removed: Vec<Tid> = Vec::new();
    let mut replaced: Vec<(Tid, TupleTemplate)> = Vec::new();

    for t in &tuples {
        let Some((bound, positions)) = &bound else {
            // unconditional DELETE: the tuple is gone from every world
            removed.push(t.tid);
            report.certain += 1;
            continue;
        };
        let open = open_fields_at(wsd, t, positions)?;
        let known = certain_values_at(t, positions);
        if open.is_empty() {
            // the predicate decides identically in every world
            if eval_partial(bound, arity, &known)? {
                removed.push(t.tid);
                report.certain += 1;
            }
            continue;
        }

        // The decision varies per world: merge the components carrying
        // the open predicate fields (and the existence field, if open),
        // then replace the tuple by a derived one whose existence column
        // is ⊥ exactly where the predicate holds.
        let mut comp_set: Vec<usize> = open.iter().map(|&(_, (c, _))| c).collect();
        if let Some((c, _)) = exists_loc(wsd, t)? {
            comp_set.push(c);
        }
        let merged = wsd.merge_components(&comp_set)?;
        let open_now = open_fields_at(wsd, t, positions)?;
        let mut watch: Vec<usize> = open_now.iter().map(|&(_, (_, col))| col).collect();
        if let Some((c, col)) = exists_loc(wsd, t)? {
            debug_assert_eq!(c, merged);
            watch.push(col);
        }
        let new_tid = wsd.fresh_tid();
        // a predicate error in a live world aborts the statement (checked
        // after the scan — the session's scratch clone keeps it atomic)
        let eval_err: RefCell<Option<Error>> = RefCell::new(None);
        add_exists_column(wsd, merged, new_tid, |row| {
            if dead_in_row(row, &watch) {
                return Cell::Bottom; // already absent in these worlds
            }
            let mut vals = known.clone();
            for &(pos, (_, col)) in &open_now {
                match row.cell(col) {
                    Cell::Val(v) => {
                        vals.insert(pos, v.clone());
                    }
                    // watch covers every open predicate column, so the
                    // dead_in_row check above already returned for ⊥ rows
                    Cell::Bottom => unreachable!("⊥ predicate column in a live row"), // maybms-lint: allow(no-panic-in-prod) -- normalization guarantees live rows never carry bottom in a predicate column
                }
            }
            match eval_partial(bound, arity, &vals) {
                Ok(true) => Cell::Bottom,                // deleted in these worlds
                Ok(false) => Cell::Val(Value::Bool(true)), // survives here
                Err(e) => {
                    eval_err.borrow_mut().get_or_insert(e);
                    Cell::Bottom
                }
            }
        })?;
        if let Some(e) = eval_err.into_inner() {
            return Err(e);
        }
        let identity: Vec<usize> = (0..arity).collect();
        let cells = alias_cells(wsd, new_tid, t, &identity)?;
        replaced.push((
            t.tid,
            TupleTemplate { tid: new_tid, cells, exists: Existence::Open },
        ));
        report.conditioned += 1;
    }

    apply_template_edits(wsd, rel, removed, replaced, Vec::new());
    normalize::normalize(wsd);
    Ok(report)
}

/// `UPDATE rel SET col = value, ... WHERE pred` on the decomposition
/// (`pred = None` updates every tuple). Assigned values must type-check
/// against the schema; duplicate assignments are rejected. Normalizes
/// afterwards.
pub fn update_op(
    wsd: &mut Wsd,
    rel: &str,
    set: &[(String, Value)],
    pred: Option<&Expr>,
) -> Result<DmlReport> {
    let (schema, tuples) = snapshot(wsd, rel)?;
    if set.is_empty() {
        return Err(Error::InvalidExpr("UPDATE with an empty SET list".into()));
    }
    let mut assignments: Vec<(usize, Value)> = Vec::with_capacity(set.len());
    for (col, v) in set {
        let pos = schema.index_of(col)?;
        if assignments.iter().any(|&(p, _)| p == pos) {
            return Err(Error::InvalidExpr(format!("duplicate assignment to column {col}")));
        }
        if !v.matches_type(schema.column(pos).ty) {
            return Err(Error::TypeError(format!("value {v} not valid for column {col}")));
        }
        assignments.push((pos, v.clone()));
    }
    let bound = match pred {
        Some(p) => Some(bind_pred(p, &schema)?),
        None => None,
    };
    let arity = schema.len();
    let mut report = DmlReport::default();
    let mut replaced: Vec<(Tid, TupleTemplate)> = Vec::new();
    let mut edited: Vec<(Tid, Vec<(usize, Value)>)> = Vec::new();

    for t in &tuples {
        let (open, known) = match &bound {
            Some((_, positions)) => {
                (open_fields_at(wsd, t, positions)?, certain_values_at(t, positions))
            }
            None => (Vec::new(), Default::default()),
        };
        let statically_decided = open.is_empty();
        if statically_decided {
            if let Some((bound, _)) = &bound {
                if !eval_partial(bound, arity, &known)? {
                    continue; // certainly unmatched: untouched in every world
                }
            }
        }
        let open_assigned: Vec<usize> = assignments
            .iter()
            .map(|&(pos, _)| pos)
            .filter(|&pos| matches!(t.cells[pos], TemplateCell::Open))
            .collect();

        if statically_decided && open_assigned.is_empty() {
            // certain predicate, certain targets: edit the template cells
            edited.push((t.tid, assignments.clone()));
            report.certain += 1;
            continue;
        }

        // Either the predicate or an assigned field varies per world:
        // merge what the new columns must observe and rebuild the tuple.
        let mut comp_set: Vec<usize> = open.iter().map(|&(_, (c, _))| c).collect();
        for &pos in &open_assigned {
            let (c, _) = wsd
                .field_loc(Field::attr(t.tid, pos as u32))
                .ok_or_else(|| Error::InvalidExpr(format!("unmapped field {}.#{pos}", t.tid)))?;
            comp_set.push(c);
        }
        let merged = wsd.merge_components(&comp_set)?;
        let open_now = match &bound {
            Some((_, positions)) => open_fields_at(wsd, t, positions)?,
            None => Vec::new(),
        };
        let mut watch: Vec<usize> = open_now.iter().map(|&(_, (_, col))| col).collect();
        let mut target_col: Vec<Option<usize>> = Vec::with_capacity(assignments.len());
        for &(pos, _) in &assignments {
            if open_assigned.contains(&pos) {
                let (c, col) = wsd
                    .field_loc(Field::attr(t.tid, pos as u32))
                    .ok_or_else(|| Error::InvalidExpr(format!("unmapped field {}.#{pos}", t.tid)))?;
                debug_assert_eq!(c, merged);
                watch.push(col);
                target_col.push(Some(col));
            } else {
                target_col.push(None);
            }
        }

        let new_tid = wsd.fresh_tid();
        // a predicate error in a live world aborts the statement (checked
        // after the scans — the session's scratch clone keeps it atomic)
        let eval_err: Rc<RefCell<Option<Error>>> = Rc::new(RefCell::new(None));
        // One fresh column per assigned field, all computed from the OLD
        // columns (the predicate sees pre-update values).
        for (&(pos, ref new_v), &old_col) in assignments.iter().zip(&target_col) {
            let old_certain = match &t.cells[pos] {
                TemplateCell::Certain(v) => Some(v.clone()),
                TemplateCell::Open => None,
            };
            let known = known.clone();
            let open_now = open_now.clone();
            let watch = watch.clone();
            let bound_ref = bound.as_ref().map(|(b, _)| b.clone());
            let new_v = new_v.clone();
            let eval_err = Rc::clone(&eval_err);
            add_field_column(wsd, merged, Field::attr(new_tid, pos as u32), move |row| {
                if dead_in_row(row, &watch) {
                    // the tuple does not exist in these worlds
                    return Cell::Bottom;
                }
                let matches = match &bound_ref {
                    None => true,
                    Some(b) => {
                        let mut vals = known.clone();
                        for &(p, (_, col)) in &open_now {
                            match row.cell(col) {
                                Cell::Val(v) => {
                                    vals.insert(p, v.clone());
                                }
                                // watch covers every open predicate column,
                                // so dead_in_row already returned for ⊥ rows
                                Cell::Bottom => {
                                    unreachable!("⊥ predicate column in a live row") // maybms-lint: allow(no-panic-in-prod) -- normalization guarantees live rows never carry bottom in a predicate column
                                }
                            }
                        }
                        match eval_partial(b, arity, &vals) {
                            Ok(m) => m,
                            Err(e) => {
                                eval_err.borrow_mut().get_or_insert(e);
                                false
                            }
                        }
                    }
                };
                if matches {
                    Cell::Val(new_v.clone())
                } else {
                    match (&old_certain, old_col) {
                        (Some(v), _) => Cell::Val(v.clone()),
                        (None, Some(col)) => row.cell(col).clone(),
                        (None, None) => unreachable!("open target resolved above"), // maybms-lint: allow(no-panic-in-prod) -- the open target was resolved above; both arms None cannot happen by construction
                    }
                }
            })?;
        }

        // Rebuild the template: assigned fields point at the fresh
        // columns, everything else aliases its old location.
        let mut cells = Vec::with_capacity(arity);
        for pos in 0..arity {
            if assignments.iter().any(|&(p, _)| p == pos) {
                cells.push(TemplateCell::Open); // mapped by add_field_column
            } else {
                match &t.cells[pos] {
                    TemplateCell::Certain(v) => cells.push(TemplateCell::Certain(v.clone())),
                    TemplateCell::Open => {
                        let loc = wsd
                            .field_loc(Field::attr(t.tid, pos as u32))
                            .ok_or_else(|| {
                                Error::InvalidExpr(format!("unmapped field {}.#{pos}", t.tid))
                            })?;
                        wsd.alias_field(Field::attr(new_tid, pos as u32), loc);
                        cells.push(TemplateCell::Open);
                    }
                }
            }
        }
        if let Some(e) = eval_err.borrow_mut().take() {
            return Err(e);
        }
        let exists = match exists_loc(wsd, t)? {
            None => Existence::Always,
            Some(loc) => {
                wsd.alias_field(Field::exists(new_tid), loc);
                Existence::Open
            }
        };
        replaced.push((t.tid, TupleTemplate { tid: new_tid, cells, exists }));
        if statically_decided {
            report.certain += 1;
        } else {
            report.conditioned += 1;
        }
    }

    apply_template_edits(wsd, rel, Vec::new(), replaced, edited);
    normalize::normalize(wsd);
    Ok(report)
}

/// Applies the collected template edits: removes `removed` tuples,
/// swaps each `(old, new)` of `replaced` in place (position preserved),
/// writes the in-place certain-cell `edited` assignments, and drops the
/// field mappings of all removed/replaced tuple identifiers (their
/// now-unreferenced columns are garbage-collected by the next normalize).
fn apply_template_edits(
    wsd: &mut Wsd,
    rel: &str,
    removed: Vec<Tid>,
    replaced: Vec<(Tid, TupleTemplate)>,
    edited: Vec<(Tid, Vec<(usize, Value)>)>,
) {
    let gone: HashSet<Tid> =
        removed.iter().copied().chain(replaced.iter().map(|&(old, _)| old)).collect();
    let tpl = wsd.relations.get_mut(rel).expect("snapshotted above"); // maybms-lint: allow(no-panic-in-prod) -- the relation was snapshotted from this same map earlier in the function
    if !removed.is_empty() {
        let rm: HashSet<Tid> = removed.into_iter().collect();
        tpl.tuples.retain(|t| !rm.contains(&t.tid));
    }
    // one index pass, then O(1) per edit — an unqualified UPDATE touches
    // every tuple, so per-edit scans would be quadratic
    let slot_of: HashMap<Tid, usize> =
        tpl.tuples.iter().enumerate().map(|(i, t)| (t.tid, i)).collect();
    for (old, new) in replaced {
        if let Some(&i) = slot_of.get(&old) {
            tpl.tuples[i] = new;
        }
    }
    for (tid, assignments) in edited {
        if let Some(&i) = slot_of.get(&tid) {
            for (pos, v) in assignments {
                debug_assert!(matches!(tpl.tuples[i].cells[pos], TemplateCell::Certain(_)));
                tpl.tuples[i].cells[pos] = TemplateCell::Certain(v);
            }
        }
    }
    if !gone.is_empty() {
        wsd.retain_fields(|f| !gone.contains(&f.tid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::medical_wsd;
    use maybms_relational::{ColumnType, Schema, Tuple};
    use maybms_worldset::{OrSetCell, WorldSet};

    /// The world-level oracle: applies the DELETE per enumerated world.
    fn delete_in_worlds(wsd: &Wsd, rel: &str, pred: Option<&Expr>) -> WorldSet {
        let ws = wsd.to_worldset(1 << 16).unwrap();
        let mut out = WorldSet::default();
        for (w, p) in ws.worlds() {
            let mut w = w.clone();
            let r = w.get(rel).unwrap().clone();
            let kept: Vec<Tuple> = match pred {
                None => Vec::new(),
                Some(pred) => {
                    let b = pred.bind(&r.schema().clone()).unwrap();
                    r.rows().iter().filter(|t| !b.eval_predicate(t).unwrap()).cloned().collect()
                }
            };
            w.put(
                rel.to_string(),
                maybms_relational::Relation::from_rows_unchecked(r.schema().clone(), kept),
            );
            out.push(w, *p);
        }
        out
    }

    /// The world-level oracle: applies the UPDATE per enumerated world.
    fn update_in_worlds(
        wsd: &Wsd,
        rel: &str,
        set: &[(String, Value)],
        pred: Option<&Expr>,
    ) -> WorldSet {
        let ws = wsd.to_worldset(1 << 16).unwrap();
        let mut out = WorldSet::default();
        for (w, p) in ws.worlds() {
            let mut w = w.clone();
            let r = w.get(rel).unwrap().clone();
            let schema = r.schema().clone();
            let bound = pred.map(|p| p.bind(&schema).unwrap());
            let rows: Vec<Tuple> = r
                .rows()
                .iter()
                .map(|t| {
                    let matches =
                        bound.as_ref().map(|b| b.eval_predicate(t).unwrap()).unwrap_or(true);
                    if !matches {
                        return t.clone();
                    }
                    let mut vals = t.values().to_vec();
                    for (col, v) in set {
                        vals[schema.index_of(col).unwrap()] = v.clone();
                    }
                    Tuple::new(vals)
                })
                .collect();
            w.put(
                rel.to_string(),
                maybms_relational::Relation::from_rows_unchecked(schema, rows),
            );
            out.push(w, *p);
        }
        out
    }

    fn check_delete(wsd: &Wsd, rel: &str, pred: Option<&Expr>) {
        let oracle = delete_in_worlds(wsd, rel, pred);
        let mut got = wsd.clone();
        delete_op(&mut got, rel, pred).unwrap();
        got.validate().unwrap();
        let lhs = got.to_worldset(1 << 16).unwrap();
        assert!(
            lhs.equivalent(&oracle, 1e-9),
            "DELETE diverged from per-world semantics (pred {pred:?})"
        );
    }

    fn check_update(wsd: &Wsd, rel: &str, set: &[(String, Value)], pred: Option<&Expr>) {
        let oracle = update_in_worlds(wsd, rel, set, pred);
        let mut got = wsd.clone();
        update_op(&mut got, rel, set, pred).unwrap();
        got.validate().unwrap();
        let lhs = got.to_worldset(1 << 16).unwrap();
        assert!(
            lhs.equivalent(&oracle, 1e-9),
            "UPDATE diverged from per-world semantics (set {set:?}, pred {pred:?})"
        );
    }

    fn person_wsd() -> Wsd {
        let mut w = Wsd::new();
        w.add_relation(
            "p",
            Schema::new(vec![("ssn", ColumnType::Int), ("name", ColumnType::Str)]),
        )
        .unwrap();
        w.push_orset(
            "p",
            vec![
                OrSetCell::weighted(vec![(Value::Int(1), 0.4), (Value::Int(2), 0.6)]).unwrap(),
                OrSetCell::certain("ann"),
            ],
        )
        .unwrap();
        w.push_certain("p", vec![Value::Int(2), Value::str("bob")]).unwrap();
        w.push_orset(
            "p",
            vec![
                OrSetCell::certain(3i64),
                OrSetCell::uniform(vec![Value::str("cal"), Value::str("cai")]).unwrap(),
            ],
        )
        .unwrap();
        w
    }

    #[test]
    fn delete_certain_tuple_disappears_everywhere() {
        let wsd = person_wsd();
        let pred = Expr::col("name").eq(Expr::lit("bob"));
        check_delete(&wsd, "p", Some(&pred));
        let mut got = wsd.clone();
        let report = delete_op(&mut got, "p", Some(&pred)).unwrap();
        // bob certainly matches; cal's open name routes through the
        // conditioned path (normalize collapses the constant decision)
        assert_eq!(report, DmlReport { certain: 1, conditioned: 1 });
        assert_eq!(got.relation("p").unwrap().tuples.len(), 2);
    }

    #[test]
    fn delete_possible_tuple_conditions_existence() {
        let wsd = person_wsd();
        // ann has ssn=1 with p 0.4: she is deleted in exactly those worlds
        let pred = Expr::col("ssn").eq(Expr::lit(1i64));
        check_delete(&wsd, "p", Some(&pred));
        let mut got = wsd.clone();
        let report = delete_op(&mut got, "p", Some(&pred)).unwrap();
        assert_eq!(report, DmlReport { certain: 0, conditioned: 1 });
        // world probabilities are untouched (no renormalization): ann
        // survives with her ssn certainly 2 at confidence 0.6
        let conf = crate::prob::tuple_confidence(&got, "p").unwrap();
        let ann = conf.iter().find(|(t, _)| t[1] == Value::str("ann")).unwrap();
        assert_eq!(ann.0[0], Value::Int(2));
        assert!((ann.1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn delete_without_where_empties_the_relation() {
        let wsd = person_wsd();
        check_delete(&wsd, "p", None);
        let mut got = wsd.clone();
        let report = delete_op(&mut got, "p", None).unwrap();
        assert_eq!(report.total(), 3);
        assert!(got.relation("p").unwrap().tuples.is_empty());
        // the relation itself survives (empty in every world)
        assert_eq!(got.num_components(), 0);
    }

    #[test]
    fn delete_predicate_spanning_components() {
        let wsd = medical_wsd();
        let pred = Expr::col("diagnosis")
            .eq(Expr::lit("pregnancy"))
            .or(Expr::col("symptom").eq(Expr::lit("fatigue")));
        check_delete(&wsd, "R", Some(&pred));
    }

    #[test]
    fn delete_everything_possible_still_matches_worlds() {
        // deleting on a tautology over an uncertain field removes the
        // tuple in every world even through the conditional path
        let wsd = person_wsd();
        let pred = Expr::col("ssn").ge(Expr::lit(0i64));
        check_delete(&wsd, "p", Some(&pred));
    }

    #[test]
    fn update_certain_tuple_edits_template() {
        let wsd = person_wsd();
        let set = vec![("name".to_string(), Value::str("bobby"))];
        let pred = Expr::col("ssn").eq(Expr::lit(2i64)).and(Expr::col("name").eq(Expr::lit("bob")));
        check_update(&wsd, "p", &set, Some(&pred));
        let mut got = wsd.clone();
        let report = update_op(&mut got, "p", &set, Some(&pred)).unwrap();
        // bob is certainly matched and edited in place; ann and cal carry
        // open predicate fields, so they route through the conditioned path
        assert_eq!(report, DmlReport { certain: 1, conditioned: 2 });
    }

    #[test]
    fn update_possible_match_keeps_old_value_elsewhere() {
        let wsd = person_wsd();
        // ann's ssn is uncertain: where it is 1 her name changes
        let set = vec![("name".to_string(), Value::str("anna"))];
        let pred = Expr::col("ssn").eq(Expr::lit(1i64));
        check_update(&wsd, "p", &set, Some(&pred));
    }

    #[test]
    fn update_open_target_with_certain_predicate() {
        let wsd = person_wsd();
        // overwrite the uncertain ssn of ann with a certain value
        let set = vec![("ssn".to_string(), Value::Int(9))];
        let pred = Expr::col("name").eq(Expr::lit("ann"));
        check_update(&wsd, "p", &set, Some(&pred));
        let mut got = wsd.clone();
        update_op(&mut got, "p", &set, Some(&pred)).unwrap();
        // the or-set collapsed: ann's ssn is certain now
        let conf = crate::prob::tuple_confidence(&got, "p").unwrap();
        let ann = conf.iter().find(|(t, _)| t[1] == Value::str("ann")).unwrap();
        assert_eq!(ann.0[0], Value::Int(9));
        assert!((ann.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn update_open_target_depending_on_itself() {
        let wsd = person_wsd();
        // predicate and target are the same uncertain column
        let set = vec![("ssn".to_string(), Value::Int(7))];
        let pred = Expr::col("ssn").eq(Expr::lit(1i64));
        check_update(&wsd, "p", &set, Some(&pred));
    }

    #[test]
    fn update_without_where_and_multiple_columns() {
        let wsd = person_wsd();
        let set = vec![
            ("ssn".to_string(), Value::Int(0)),
            ("name".to_string(), Value::str("anon")),
        ];
        check_update(&wsd, "p", &set, None);
    }

    #[test]
    fn update_on_conditionally_deleted_tuples_preserves_absence() {
        // DELETE makes existence conditional, then UPDATE must not
        // resurrect the tuple in the worlds it was deleted from
        let mut wsd = person_wsd();
        let del = Expr::col("ssn").eq(Expr::lit(1i64));
        delete_op(&mut wsd, "p", Some(&del)).unwrap();
        wsd.validate().unwrap();
        let set = vec![("name".to_string(), Value::str("zz"))];
        check_update(&wsd, "p", &set, None);
        let pred = Expr::col("ssn").eq(Expr::lit(2i64));
        check_update(&wsd, "p", &set, Some(&pred));
        check_delete(&wsd, "p", Some(&pred));
    }

    #[test]
    fn update_rejects_bad_assignments() {
        let mut wsd = person_wsd();
        assert!(update_op(
            &mut wsd,
            "p",
            &[("ssn".to_string(), Value::str("not an int"))],
            None
        )
        .is_err());
        assert!(update_op(&mut wsd, "p", &[("nope".to_string(), Value::Int(1))], None).is_err());
        assert!(update_op(
            &mut wsd,
            "p",
            &[
                ("ssn".to_string(), Value::Int(1)),
                ("ssn".to_string(), Value::Int(2))
            ],
            None
        )
        .is_err());
        assert!(update_op(&mut wsd, "p", &[], None).is_err());
        assert!(delete_op(&mut wsd, "missing", None).is_err());
    }

    /// A predicate that errors in some world aborts the statement whether
    /// the offending field is certain or open — matching the all-worlds
    /// reference, which would hit the same error while enumerating.
    #[test]
    fn predicate_errors_abort_even_on_open_fields() {
        let mut w = Wsd::new();
        w.add_relation(
            "r",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        )
        .unwrap();
        w.push_orset(
            "r",
            vec![
                OrSetCell::weighted(vec![(Value::Int(0), 0.5), (Value::Int(2), 0.5)]).unwrap(),
                OrSetCell::certain(0i64),
            ],
        )
        .unwrap();
        // 10 / a errors in the a = 0 worlds
        let pred = Expr::Bin(
            maybms_relational::BinOp::Div,
            Box::new(Expr::lit(10i64)),
            Box::new(Expr::col("a")),
        )
        .eq(Expr::lit(5i64));
        assert!(delete_op(&mut w.clone(), "r", Some(&pred)).is_err());
        assert!(update_op(
            &mut w.clone(),
            "r",
            &[("b".to_string(), Value::Int(1))],
            Some(&pred)
        )
        .is_err());
        // a predicate erroring only in worlds where the tuple is absent
        // must NOT abort: delete the a = 0 alternative first …
        let gone = Expr::col("a").eq(Expr::lit(0i64));
        let mut alive = w.clone();
        delete_op(&mut alive, "r", Some(&gone)).unwrap();
        // … then the division is safe in every surviving world
        delete_op(&mut alive.clone(), "r", Some(&pred)).unwrap();
        update_op(&mut alive, "r", &[("b".to_string(), Value::Int(1))], Some(&pred)).unwrap();
    }

    #[test]
    fn delete_on_medical_example_prob_drops() {
        let mut wsd = medical_wsd();
        // r1 is in pregnancy-worlds with p=0.4; deleting pregnancy rows
        // leaves it possible only as hypothyroidism (p=0.6)
        let pred = Expr::col("diagnosis").eq(Expr::lit("pregnancy"));
        check_delete(&wsd, "R", Some(&pred));
        delete_op(&mut wsd, "R", Some(&pred)).unwrap();
        let conf = crate::prob::tuple_confidence(&wsd, "R").unwrap();
        assert!(conf.iter().all(|(t, _)| t[0] != Value::str("pregnancy")));
    }
}
